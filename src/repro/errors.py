"""Shared exception hierarchy for the Flowcheck reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single type at API boundaries.  Frontend-specific
errors (the FlowLang compiler, the trace builder, policy checking) refine
it with enough structure for programmatic handling.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Raised for structurally invalid flow-graph operations."""


class TraceError(ReproError):
    """Raised when trace events arrive in an impossible order.

    Examples: leaving an enclosure region that was never entered, or
    emitting events after the trace has been finished.
    """


class RegionError(TraceError):
    """Raised for enclosure-region soundness violations.

    The paper's dynamic check (Section 2.2): a write inside an enclosure
    region to a location that the region did not declare as an output.
    """


class PolicyViolation(ReproError):
    """Raised by the checkers of Section 6 when a flow policy is exceeded.

    Attributes:
        measured: bits observed to flow (or ``None`` when the violation is
            structural, e.g. lockstep output divergence).
        allowed: the policy bound in bits.
        location: human-readable description of where the leak was seen.
    """

    def __init__(self, message, measured=None, allowed=None, location=None):
        super().__init__(message)
        self.measured = measured
        self.allowed = allowed
        self.location = location


class LangError(ReproError):
    """Base class for FlowLang frontend errors (lex/parse/type/compile)."""

    def __init__(self, message, line=None, column=None):
        if line is not None:
            message = "line %d:%d: %s" % (line, column or 0, message)
        super().__init__(message)
        self.line = line
        self.column = column


class LexError(LangError):
    """Raised on malformed FlowLang source text."""


class ParseError(LangError):
    """Raised on FlowLang syntax errors."""


class TypeCheckError(LangError):
    """Raised on FlowLang semantic (typing/scoping) errors."""


class CompileError(LangError):
    """Raised when a checked AST cannot be lowered to bytecode."""


class VMError(ReproError):
    """Raised for runtime faults in the FlowLang virtual machine."""

    def __init__(self, message, location=None):
        if location is not None:
            message = "%s: %s" % (location, message)
        super().__init__(message)
        self.location = location
