"""Shared exception hierarchy for the Flowcheck reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single type at API boundaries.  Frontend-specific
errors (the FlowLang compiler, the trace builder, policy checking) refine
it with enough structure for programmatic handling.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Raised for structurally invalid flow-graph operations."""


class TraceError(ReproError):
    """Raised when trace events arrive in an impossible order.

    Examples: leaving an enclosure region that was never entered, or
    emitting events after the trace has been finished.
    """


class RegionError(TraceError):
    """Raised for enclosure-region soundness violations.

    The paper's dynamic check (Section 2.2): a write inside an enclosure
    region to a location that the region did not declare as an output.
    """


class PolicyViolation(ReproError):
    """Raised by the checkers of Section 6 when a flow policy is exceeded.

    Attributes:
        measured: bits observed to flow (or ``None`` when the violation is
            structural, e.g. lockstep output divergence).
        allowed: the policy bound in bits.
        location: human-readable description of where the leak was seen.
    """

    def __init__(self, message, measured=None, allowed=None, location=None):
        super().__init__(message)
        self.measured = measured
        self.allowed = allowed
        self.location = location


class LangError(ReproError):
    """Base class for FlowLang frontend errors (lex/parse/type/compile)."""

    def __init__(self, message, line=None, column=None):
        if line is not None:
            message = "line %d:%d: %s" % (line, column or 0, message)
        super().__init__(message)
        self.line = line
        self.column = column


class LexError(LangError):
    """Raised on malformed FlowLang source text."""


class ParseError(LangError):
    """Raised on FlowLang syntax errors."""


class TypeCheckError(LangError):
    """Raised on FlowLang semantic (typing/scoping) errors."""


class CompileError(LangError):
    """Raised when a checked AST cannot be lowered to bytecode."""


class VMError(ReproError):
    """Raised for runtime faults in the FlowLang virtual machine."""

    def __init__(self, message, location=None):
        if location is not None:
            message = "%s: %s" % (location, message)
        super().__init__(message)
        self.location = location


class VMTimeout(VMError):
    """Raised when a run exceeds its ``deadline_seconds`` wall budget.

    The deadline is enforced in the VM step loop alongside ``max_steps``,
    so a diverging or merely slow program is cut off deterministically
    close to the budget.  The batch layer classifies this as a
    *non-transient* job failure: re-running the same program against the
    same deadline would time out again.
    """

    def __init__(self, message, deadline_seconds=None, steps=None):
        super().__init__(message)
        self.deadline_seconds = deadline_seconds
        self.steps = steps


class StoreError(ReproError):
    """Raised for shard-store failures (:mod:`repro.store`).

    Covers structural problems with a store directory — a missing or
    malformed manifest, a manifest entry whose blob is gone, a blob
    whose content no longer matches its digest.  Corrupt *graph
    payloads* inside a blob still surface as :class:`GraphError`, per
    the loader-hardening contract.
    """


class ServeError(ReproError):
    """Raised for measurement-service failures (:mod:`repro.serve`).

    Covers state-directory problems (an unusable queue journal, a
    duplicate job id) and invalid service operations (acknowledging an
    already-terminal job).  Malformed *requests* are answered with HTTP
    4xx statuses, not exceptions — the daemon must outlive bad input.
    """


class BatchError(ReproError):
    """Base class for batch fan-out failures (:mod:`repro.batch`)."""


class JobError(BatchError):
    """One batch job failed; wraps the worker-side exception.

    Raised in the parent under ``on_error="raise"`` when the original
    worker exception could not be transported (it did not pickle);
    otherwise the original exception is re-raised directly.

    Attributes:
        index: the failing payload's position in the batch.
        failure: the structured :class:`repro.batch.engine.JobFailure`
            record, when available.
    """

    def __init__(self, message, index=None, failure=None):
        super().__init__(message)
        self.index = index
        self.failure = failure


class JobTimeout(JobError):
    """A batch job exceeded its per-job wall-clock ``timeout``.

    Classified as *transient* by the batch engine: the job is retried
    (with backoff, after the pool is resurrected) until its retry budget
    is exhausted, at which point it is quarantined and this error is
    recorded — or raised, under ``on_error="raise"``.
    """

    def __init__(self, message, index=None, failure=None, seconds=None):
        super().__init__(message, index=index, failure=failure)
        self.seconds = seconds
