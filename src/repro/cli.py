"""Command-line interface: ``python -m repro <command> ...``.

The tool workflow from the paper, on FlowLang programs:

* ``measure`` — run once under full instrumentation, print the flow
  bound and minimum cut, optionally save the cut as a JSON policy or
  the graph as DOT;
* ``check``  — §6.2 tainting-based check of a run against a policy;
* ``lockstep`` — §6.3 two-copy output-comparison check;
* ``static`` — the §10.2 all-static bound, given per-loop trip counts;
* ``disasm`` — show the compiled bytecode;
* ``batch`` — measure one program over many secrets across worker
  processes (§3.2 combined bound; ``--jobs N``; ``--store DIR`` appends
  each run to a content-addressed shard corpus and bounds the whole
  corpus);
* ``combine`` — recombine an existing shard store into one corpus
  bound by tree reduction, with the incremental-Kraft anytime trail;
* ``obs`` — inspect a ``--telemetry-dir`` directory while (or after) a
  run writes it: ``obs tail`` renders the latest snapshot as the
  metrics table, ``obs check`` lints the directory (OpenMetrics rules,
  counter monotonicity, event schema);
* ``serve`` — run the fault-tolerant measurement service: an HTTP/JSON
  frontend over a crash-safe persistent job queue with admission
  control and graceful drain (see ``docs/service.md``).

Secret/public inputs come from ``--secret``/``--public`` (text),
``--secret-hex`` (hex bytes), or ``--secret-file``.

Signals: every command exits 130 on SIGINT and 143 on SIGTERM after
tearing down worker pools and flushing any ``--telemetry-dir`` /
``--trace`` sinks (no raw traceback); ``serve`` instead treats both
signals as the graceful-drain request and exits 0 after a clean drain.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading

from . import obs
from .core.policy import CutPolicy
from .errors import PolicyViolation, ReproError
from .lang import check as lang_check
from .lang import compile_source
from .lang import lockstep as lang_lockstep
from .lang import measure as lang_measure


def _read_program(path):
    with open(path) as handle:
        return handle.read()


def _input_bytes(args, prefix):
    text = getattr(args, prefix, None)
    hex_text = getattr(args, prefix + "_hex", None)
    path = getattr(args, prefix + "_file", None)
    chosen = [v for v in (text, hex_text, path) if v is not None]
    if len(chosen) > 1:
        raise SystemExit("choose one of --%s / --%s-hex / --%s-file"
                         % (prefix, prefix, prefix))
    if text is not None:
        return text.encode()
    if hex_text is not None:
        return bytes.fromhex(hex_text)
    if path is not None:
        with open(path, "rb") as handle:
            return handle.read()
    return b""


def _add_input_flags(parser, prefix, help_noun):
    parser.add_argument("--%s" % prefix, help="%s as literal text"
                        % help_noun)
    parser.add_argument("--%s-hex" % prefix, dest="%s_hex" % prefix,
                        help="%s as hex bytes" % help_noun)
    parser.add_argument("--%s-file" % prefix, dest="%s_file" % prefix,
                        help="%s read from a file" % help_noun)


def _add_backend_flag(parser):
    parser.add_argument("--backend", default=None,
                        choices=["auto", "reference", "fast", "native"],
                        help="execution backend: bit-identical results, "
                             "different speed (default: auto, or the "
                             "REPRO_BACKEND environment variable; "
                             "'native' needs the compiled repro._native "
                             "extension; see docs/backends.md)")


def _add_budget_flags(parser):
    parser.add_argument("--max-steps", dest="max_steps", type=int,
                        default=None, metavar="N",
                        help="abort a run after N VM steps")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="abort a run past this wall-clock budget, "
                             "enforced in the VM step loop (VMTimeout)")


def _add_metrics_flags(parser):
    parser.add_argument("--metrics", nargs="?", const="table",
                        choices=["table", "json"], metavar="FORMAT",
                        help="record pipeline metrics and print them "
                             "(table or json; see docs/observability.md)")
    parser.add_argument("--metrics-file", metavar="FILE",
                        help="write metrics there instead of stderr")
    parser.add_argument("--trace", metavar="FILE",
                        help="record hierarchical spans and write them "
                             "there: Chrome trace-event JSON (open in "
                             "Perfetto), or JSONL when FILE ends in "
                             ".jsonl (see docs/observability.md)")


def _add_telemetry_flags(parser):
    parser.add_argument("--telemetry-dir", dest="telemetry_dir",
                        metavar="DIR",
                        help="continuously export metrics, resource "
                             "samples, and structured events to DIR "
                             "(telemetry-v1 layout: JSONL time series + "
                             "OpenMetrics text; watch it live with "
                             "'repro obs tail DIR'; see "
                             "docs/observability.md)")
    parser.add_argument("--telemetry-interval", dest="telemetry_interval",
                        type=float, default=1.0, metavar="SECONDS",
                        help="seconds between telemetry flushes "
                             "(default 1.0)")


def _emit_metrics(args):
    """Render and deliver the metrics snapshot; returns success."""
    snapshot = obs.get_metrics().snapshot()
    if args.metrics == "json":
        text = obs.to_json(snapshot)
    else:
        text = obs.to_table(snapshot)
    if args.metrics_file:
        try:
            with open(args.metrics_file, "w") as handle:
                handle.write(text + "\n")
        except OSError as error:
            print("error: cannot write metrics file: %s" % error,
                  file=sys.stderr)
            return False
    else:
        print(text, file=sys.stderr)
    return True


def _emit_trace(args, tracer):
    """Write the recorded spans to ``--trace FILE``; returns success."""
    spans = tracer.snapshot()
    try:
        if args.trace.endswith(".jsonl"):
            obs.write_jsonl(spans, args.trace)
        else:
            obs.write_chrome_trace(spans, args.trace,
                                   parent_pid=tracer.pid)
    except OSError as error:
        print("error: cannot write trace file: %s" % error,
              file=sys.stderr)
        return False
    return True


def cmd_measure(args):
    if args.online and args.collapse == "none":
        print("error: --online collapses during tracing; "
              "--collapse none is not available", file=sys.stderr)
        return 2
    source = _read_program(args.program)
    result = lang_measure(source, secret_input=_input_bytes(args, "secret"),
                          public_input=_input_bytes(args, "public"),
                          collapse=args.collapse, filename=args.program,
                          online=args.online, max_steps=args.max_steps,
                          deadline_seconds=args.deadline,
                          backend=args.backend)
    if args.json:
        cut = CutPolicy.from_report(result.report)
        print(json.dumps({
            "bits": result.bits,
            "outputs": [o for o in result.outputs],
            "cut": cut.to_dict(),
            "warnings": result.report.warnings,
        }, indent=2))
    else:
        print(result.report.describe())
        if result.output_bytes:
            print("program output: %r" % bytes(result.output_bytes))
    if args.save_policy:
        policy = CutPolicy.from_report(result.report)
        with open(args.save_policy, "w") as handle:
            json.dump(policy.to_dict(), handle, indent=2)
        print("policy written to %s" % args.save_policy)
    if args.dot:
        from .graph.dot import write_dot
        write_dot(args.dot, result.report.graph, result.report.mincut,
                  title="%s: %d bits" % (args.program, result.bits))
        print("graph written to %s" % args.dot)
    return 0


def _load_policy(path):
    with open(path) as handle:
        return CutPolicy.from_dict(json.load(handle))


def cmd_check(args):
    source = _read_program(args.program)
    result = lang_check(source, _load_policy(args.policy),
                        secret_input=_input_bytes(args, "secret"),
                        public_input=_input_bytes(args, "public"),
                        filename=args.program)
    print(repr(result))
    try:
        result.enforce()
    except PolicyViolation as violation:
        print("VIOLATION: %s" % violation)
        return 1
    print("PASS: %d bits revealed within the %d-bit budget"
          % (result.revealed_bits, result.policy.max_bits))
    return 0


def cmd_lockstep(args):
    source = _read_program(args.program)
    result = lang_lockstep(source, _load_policy(args.policy),
                           real_secret=_input_bytes(args, "secret"),
                           dummy_secret=_input_bytes(args, "dummy"),
                           public_input=_input_bytes(args, "public"),
                           filename=args.program)
    print(repr(result))
    try:
        result.enforce()
    except PolicyViolation as violation:
        print("VIOLATION: %s" % violation)
        return 1
    print("PASS: outputs agree; %d bits forwarded at the cut"
          % result.bits_forwarded)
    return 0


def cmd_static(args):
    from .infer.staticflow import StaticFlowAnalysis
    from .lang.checker import check_program
    from .lang.parser import parse
    program = check_program(parse(_read_program(args.program),
                                  args.program))
    analysis = StaticFlowAnalysis(program, function=args.function)
    bounds = {}
    for item in args.bound or []:
        line, _, count = item.partition("=")
        bounds[int(line)] = int(count)
    if args.formula:
        print(analysis.formula())
    print("loops at lines: %s" % analysis.loop_lines)
    print("static bound: %d bits (default loop bound %d)"
          % (analysis.bound(bounds, args.default_bound),
             args.default_bound))
    return 0


def cmd_disasm(args):
    compiled = compile_source(_read_program(args.program), args.program)
    print(compiled.disassemble())
    return 0


def _batch_secrets(args):
    """All --secret/--secret-hex/--secret-file values, in flag-group order."""
    secrets = [text.encode() for text in args.secret or []]
    secrets.extend(bytes.fromhex(hex_text)
                   for hex_text in args.secret_hex or [])
    for path in args.secret_file or []:
        with open(path, "rb") as handle:
            secrets.append(handle.read())
    return secrets


def cmd_batch(args):
    secrets = _batch_secrets(args)
    if not secrets:
        print("error: batch needs at least one --secret / --secret-hex / "
              "--secret-file", file=sys.stderr)
        return 2
    from .batch import measure_program_runs
    source = _read_program(args.program)
    result = measure_program_runs(
        source, secrets, public_input=_input_bytes(args, "public"),
        collapse=args.collapse, jobs=args.jobs, filename=args.program,
        max_steps=args.max_steps, deadline_seconds=args.deadline,
        timeout=args.timeout, retries=args.retries,
        on_error=args.on_error, warm_start=not args.no_warm_start,
        backend=args.backend, store=args.store)
    report = result.report
    corpus = None
    if args.store:
        from .store import ShardStore
        corpus = ShardStore(args.store, create=False).stats()
    if args.json:
        cut = CutPolicy.from_report(report)
        payload = {
            "runs": result.runs,
            "attempted": result.attempted,
            "jobs": result.jobs,
            "partial": result.partial,
            "combined_bits": result.bits,
            "per_run_bits": result.per_run_bits,
            "per_run_kraft_sum": float(result.kraft_sum),
            "per_run_sound": result.per_run_sound,
            "failures": [failure.to_dict(traceback=False)
                         for failure in result.failures],
            "cut": cut.to_dict(),
            "warnings": report.warnings,
        }
        if corpus is not None:
            payload["store"] = corpus
        print(json.dumps(payload, indent=2))
    else:
        print("%d runs across %d job slot(s)" % (result.runs, result.jobs))
        if corpus is not None:
            print("store corpus: %d runs, %d distinct shards; the "
                  "combined bound covers the whole corpus"
                  % (corpus["runs"], corpus["distinct"]))
        if result.partial:
            print("PARTIAL: %d of %d runs failed and are excluded from "
                  "the bound:" % (len(result.failures), result.attempted))
            for failure in result.failures:
                print("  run %d: %s: %s" % (failure.index,
                                            failure.error_type,
                                            failure.error))
        print("per-run bounds: %s bits (Kraft sum %.4f, %s)"
              % (result.per_run_bits, float(result.kraft_sum),
                 "sound alone" if result.per_run_sound
                 else "NOT jointly sound — combined bound required"))
        print(report.describe())
    # Exit 1 on a partial result: scripting must notice that the bound
    # does not cover every requested run.
    return 1 if result.partial else 0


def cmd_combine(args):
    from .batch.runs import combine_store_jobs
    from .store import ShardStore
    store = ShardStore(args.store, create=False)
    if len(store) == 0:
        print("error: store %s has an empty corpus (no manifest entries)"
              % args.store, file=sys.stderr)
        return 2
    result = combine_store_jobs(
        store, context_sensitive=(args.collapse == "context"),
        jobs=args.jobs, fanin=args.fanin, timeout=args.timeout,
        retries=args.retries, on_error=args.on_error,
        warm_start=not args.no_warm_start)
    report = result.report
    if args.json:
        cut = CutPolicy.from_report(report)
        print(json.dumps({
            "runs": result.runs,
            "attempted": result.attempted,
            "distinct": result.distinct,
            "partial": result.partial,
            "combined_bits": result.bits,
            "anytime_bits": result.anytime,
            "tree_levels": result.levels,
            "store": store.stats(),
            "failures": [failure.to_dict(traceback=False)
                         for failure in result.failures],
            "cut": cut.to_dict(),
            "warnings": report.warnings,
        }, indent=2))
    else:
        print("corpus: %d runs, %d distinct shards"
              % (result.attempted, result.distinct))
        print("anytime upper bound: %s bits"
              % " >= ".join(str(b) for b in result.anytime))
        if result.partial:
            print("PARTIAL: %d of %d runs failed and are excluded from "
                  "the bound:" % (result.attempted - result.runs,
                                  result.attempted))
            for failure in result.failures:
                print("  shard %d: %s: %s" % (failure.index,
                                              failure.error_type,
                                              failure.error))
        print(report.describe())
    return 1 if result.partial else 0


def cmd_obs_tail(args):
    try:
        doc = obs.read_latest(args.dir)
    except (OSError, ValueError) as error:
        print("error: cannot read telemetry snapshot: %s" % error,
              file=sys.stderr)
        return 2
    print("telemetry snapshot seq %s (%s)"
          % (doc.get("seq"), doc.get("format")))
    samples = doc.get("resources") or {}
    for worker in sorted(samples, key=lambda w: (w != "parent", w)):
        record = samples[worker]
        print("  %-8s rss %.1f MiB, cpu %.2fs, %d fds, live graph "
              "%d nodes / %d edges"
              % (worker, record.get("rss_bytes", 0) / (1024.0 * 1024.0),
                 record.get("cpu_seconds", 0),
                 record.get("open_fds", 0),
                 record.get("graph_nodes_live", 0),
                 record.get("graph_edges_live", 0)))
    print(obs.to_table(doc.get("metrics", {})))
    return 0


def cmd_obs_check(args):
    problems = obs.check_dir(args.dir)
    if problems:
        for problem in problems:
            print("FAIL: %s" % problem, file=sys.stderr)
        print("%s: %d problem(s)" % (args.dir, len(problems)),
              file=sys.stderr)
        return 1
    print("ok: %s passes the telemetry-v1 checks" % args.dir)
    return 0


def cmd_serve(args):
    from .serve import MeasurementDaemon, ServeConfig
    config = ServeConfig(
        args.state_dir, host=args.host, port=args.port, jobs=args.jobs,
        queue_depth=args.queue_depth, tenant_inflight=args.max_inflight,
        shed_runs=args.shed_runs, timeout=args.timeout,
        retries=args.retries, telemetry=not args.no_telemetry,
        telemetry_interval=args.telemetry_interval)
    return MeasurementDaemon(config).run()


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quantitative information flow as network flow "
                    "capacity (PLDI 2008 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("measure", help="measure one execution's flow")
    p.add_argument("program", help="FlowLang source file")
    _add_input_flags(p, "secret", "secret input")
    _add_input_flags(p, "public", "public input")
    p.add_argument("--collapse", default="context",
                   choices=["none", "context", "location"])
    p.add_argument("--online", action="store_true",
                   help="collapse the graph while tracing (constant-size "
                        "live graph; not valid with --collapse none)")
    _add_backend_flag(p)
    _add_budget_flags(p)
    p.add_argument("--json", action="store_true")
    p.add_argument("--save-policy", metavar="FILE")
    p.add_argument("--dot", metavar="FILE",
                   help="write the (collapsed) graph + cut as Graphviz")
    _add_metrics_flags(p)
    _add_telemetry_flags(p)
    p.set_defaults(func=cmd_measure)

    p = sub.add_parser("check", help="taint-check a run against a policy")
    p.add_argument("program")
    p.add_argument("--policy", required=True)
    _add_input_flags(p, "secret", "secret input")
    _add_input_flags(p, "public", "public input")
    _add_metrics_flags(p)
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("lockstep",
                       help="output-comparison check (two copies)")
    p.add_argument("program")
    p.add_argument("--policy", required=True)
    _add_input_flags(p, "secret", "real secret input")
    _add_input_flags(p, "dummy", "dummy secret input")
    _add_input_flags(p, "public", "public input")
    _add_metrics_flags(p)
    p.set_defaults(func=cmd_lockstep)

    p = sub.add_parser("static", help="all-static bound (§10.2 subset)")
    p.add_argument("program")
    p.add_argument("--function", default="main")
    p.add_argument("--bound", action="append", metavar="LINE=N",
                   help="loop trip-count bound (repeatable)")
    p.add_argument("--default-bound", type=int, default=1)
    p.add_argument("--formula", action="store_true",
                   help="print the symbolic edge list")
    _add_metrics_flags(p)
    p.set_defaults(func=cmd_static)

    p = sub.add_parser("disasm", help="show compiled bytecode")
    p.add_argument("program")
    _add_metrics_flags(p)
    p.set_defaults(func=cmd_disasm)

    p = sub.add_parser("batch",
                       help="measure many runs in parallel (§3.2 "
                            "combined bound)")
    p.add_argument("program", help="FlowLang source file")
    p.add_argument("--secret", action="append", metavar="TEXT",
                   help="one run's secret input as literal text "
                        "(repeatable)")
    p.add_argument("--secret-hex", dest="secret_hex", action="append",
                   metavar="HEX",
                   help="one run's secret input as hex bytes (repeatable)")
    p.add_argument("--secret-file", dest="secret_file", action="append",
                   metavar="FILE",
                   help="one run's secret input from a file (repeatable)")
    _add_input_flags(p, "public", "public input (shared by all runs)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes (default 1: in-process, "
                        "bit-identical results either way)")
    p.add_argument("--collapse", default="context",
                   choices=["context", "location"])
    _add_backend_flag(p)
    p.add_argument("--no-warm-start", dest="no_warm_start",
                   action="store_true",
                   help="combine the runs' graphs in one shot instead of "
                        "streaming them through warm-started incremental "
                        "re-solves (same bound either way; see "
                        "docs/backends.md)")
    _add_budget_flags(p)
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-job wall-clock timeout; a hung job's worker "
                        "is terminated and the pool resurrected")
    p.add_argument("--retries", type=int, default=0, metavar="N",
                   help="retry budget for transient job failures (broken "
                        "pool, timeout, transport); exhausted payloads "
                        "are quarantined")
    p.add_argument("--on-error", dest="on_error", default="raise",
                   choices=["raise", "collect"],
                   help="raise: first failure aborts the batch (default); "
                        "collect: finish the surviving runs and report a "
                        "partial bound (exit status 1)")
    p.add_argument("--store", metavar="DIR",
                   help="append each run's collapsed shard to a "
                        "content-addressed store (created if missing) "
                        "and bound the store's whole corpus by tree "
                        "reduction instead of the parent-side fold")
    p.add_argument("--json", action="store_true")
    _add_metrics_flags(p)
    _add_telemetry_flags(p)
    p.set_defaults(func=cmd_batch)

    p = sub.add_parser("combine",
                       help="combine a shard-store corpus into one "
                            "bound (tree reduction + anytime Kraft "
                            "trail)")
    p.add_argument("--store", required=True, metavar="DIR",
                   help="shard store directory (see repro batch --store)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes for the reduction levels "
                        "(default 1: in-process, bit-identical results "
                        "either way)")
    p.add_argument("--fanin", type=int, default=None, metavar="K",
                   help="shards merged per reduction node (default: "
                        "corpus size / jobs, i.e. one level plus the "
                        "root fold)")
    p.add_argument("--collapse", default="context",
                   choices=["context", "location"])
    p.add_argument("--no-warm-start", dest="no_warm_start",
                   action="store_true",
                   help="solve the root fold's intermediates cold "
                        "instead of warm-starting from the previous "
                        "residual (same bound either way)")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-merge-job wall-clock timeout")
    p.add_argument("--retries", type=int, default=0, metavar="N",
                   help="retry budget for transient merge-job failures")
    p.add_argument("--on-error", dest="on_error", default="raise",
                   choices=["raise", "collect"],
                   help="raise: first failure aborts (default); collect: "
                        "drop failed subtrees from the graph and the "
                        "Kraft account, report a partial bound (exit "
                        "status 1)")
    p.add_argument("--json", action="store_true")
    _add_metrics_flags(p)
    _add_telemetry_flags(p)
    p.set_defaults(func=cmd_combine)

    p = sub.add_parser("obs",
                       help="inspect a --telemetry-dir directory")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    pt = obs_sub.add_parser("tail",
                            help="render the latest telemetry snapshot "
                                 "as the metrics table")
    pt.add_argument("dir", help="telemetry directory "
                                "(a run's --telemetry-dir)")
    pt.set_defaults(func=cmd_obs_tail)
    pc = obs_sub.add_parser("check",
                            help="lint a telemetry directory: OpenMetrics "
                                 "rules, counter monotonicity, event "
                                 "schema")
    pc.add_argument("dir", help="telemetry directory "
                                "(a run's --telemetry-dir)")
    pc.set_defaults(func=cmd_obs_check)

    p = sub.add_parser("serve",
                       help="run the measurement service: HTTP/JSON "
                            "frontend, crash-safe job queue, admission "
                            "control (see docs/service.md)")
    p.add_argument("--dir", dest="state_dir", required=True,
                   metavar="DIR",
                   help="service state directory: queue journal, "
                        "per-job checkpoints, endpoint.json, telemetry "
                        "(created if missing; survives restarts)")
    p.add_argument("--host", default="127.0.0.1", metavar="ADDR",
                   help="listen address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8675, metavar="N",
                   help="listen port (default 8675; 0 picks an "
                        "ephemeral port, recorded in DIR/endpoint.json)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes per measurement job "
                        "(default 1: in-process, bit-identical results "
                        "either way)")
    p.add_argument("--queue-depth", dest="queue_depth", type=int,
                   default=16, metavar="N",
                   help="maximum accepted-but-not-running jobs; beyond "
                        "it submissions get 429 + Retry-After")
    p.add_argument("--max-inflight", dest="max_inflight", type=int,
                   default=4, metavar="N",
                   help="per-tenant cap on live (queued + running) "
                        "jobs (429 tenant_cap beyond it)")
    p.add_argument("--shed-runs", dest="shed_runs", type=int,
                   default=64, metavar="N",
                   help="with the queue hot, shed submissions asking "
                        "for more than N runs (429 load_shed)")
    p.add_argument("--timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="per-run wall-clock timeout inside a job; a "
                        "hung worker is terminated and the run "
                        "recorded as failed (the job completes "
                        "partial)")
    p.add_argument("--retries", type=int, default=0, metavar="N",
                   help="retry budget for transient run failures")
    p.add_argument("--no-telemetry", dest="no_telemetry",
                   action="store_true",
                   help="do not write the DIR/telemetry directory")
    p.add_argument("--telemetry-interval", dest="telemetry_interval",
                   type=float, default=1.0, metavar="SECONDS",
                   help="seconds between telemetry flushes "
                        "(default 1.0)")
    p.set_defaults(func=cmd_serve)
    return parser


class _Signalled(BaseException):
    """SIGTERM, re-raised in the main thread so ``finally`` blocks run.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so
    worker pools are torn down by the engine's interrupt path rather
    than swallowed by broad ``except Exception`` handlers.
    """

    def __init__(self, signum):
        super().__init__(signum)
        self.signum = signum


def _install_signal_exits():
    """Make SIGTERM raise, so the CLI flushes its sinks and exits 143
    instead of dying mid-write (SIGINT already raises
    ``KeyboardInterrupt``).  ``serve`` overrides both with its
    graceful-drain handlers."""
    if threading.current_thread() is not threading.main_thread():
        return

    def _raise(signum, frame):
        raise _Signalled(signum)

    signal.signal(signal.SIGTERM, _raise)


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    _install_signal_exits()
    record_metrics = getattr(args, "metrics", None) is not None
    trace_file = getattr(args, "trace", None)
    telemetry_dir = getattr(args, "telemetry_dir", None)
    # --telemetry-dir implies a live registry, a live event log, and a
    # live tracer (so exported events carry span ids) even when the
    # corresponding print-at-exit flags are absent.
    if record_metrics or telemetry_dir:
        obs.enable()
    tracer = None
    if trace_file or telemetry_dir:
        tracer = obs.enable_tracing()
    if telemetry_dir:
        obs.enable_events()
    exporter = None
    status = 0
    try:
        if telemetry_dir:
            try:
                exporter = obs.TelemetryExporter(
                    telemetry_dir,
                    interval=getattr(args, "telemetry_interval", 1.0))
            except OSError as error:
                print("error: cannot write telemetry directory: %s"
                      % error, file=sys.stderr)
                return 2
            obs.set_exporter(exporter)
            exporter.start()
        span = obs.get_tracer().span("cli.command", command=args.command)
        with span:
            status = args.func(args)
            span.set(status=status)
    except ReproError as error:
        print("error: %s" % error, file=sys.stderr)
        status = 2
    except KeyboardInterrupt:
        # Pools are already torn down (the engine's BaseException
        # path); flush the sinks below and exit with the conventional
        # 128 + SIGINT code.
        print("interrupted (SIGINT): flushing sinks and exiting 130",
              file=sys.stderr)
        status = 130
    except _Signalled:
        print("terminated (SIGTERM): flushing sinks and exiting 143",
              file=sys.stderr)
        status = 143
    finally:
        emitted = True
        if exporter is not None:
            obs.set_exporter(None)
            flush_error = exporter.stop()
            if flush_error is not None:
                print("error: cannot write telemetry directory: %s"
                      % flush_error, file=sys.stderr)
                emitted = False
        if telemetry_dir:
            obs.disable_events()
        if record_metrics:
            emitted = _emit_metrics(args) and emitted
        if record_metrics or telemetry_dir:
            obs.disable()
        if tracer is not None:
            obs.disable_tracing()
            if trace_file:
                emitted = _emit_trace(args, tracer) and emitted
    if not emitted and status == 0:
        status = 2
    return status


if __name__ == "__main__":
    sys.exit(main())
