"""§8.2 case study: SSH-style host authentication.

Measures how much of the host's RSA private key an authentication
exchange reveals; the paper's answer -- exactly the 128 bits of the MD5
digest -- reproduces here with :func:`run_authentication`.
"""

from .md5 import md5_bytes, md5_hexdigest
from .rsa import E, KEY_BITS, P, Q, decrypt_tracked, encrypt, make_keypair, modexp
from .protocol import Server, client_authenticate, run_authentication

__all__ = [
    "md5_bytes", "md5_hexdigest",
    "E", "KEY_BITS", "P", "Q", "decrypt_tracked", "encrypt",
    "make_keypair", "modexp",
    "Server", "client_authenticate", "run_authentication",
]
