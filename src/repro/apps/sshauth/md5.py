"""MD5 over tracked values (the §8.2 bottleneck computation).

A complete MD5 implementation (RFC 1321) that runs identically on plain
ints and on tracked :class:`~repro.pytrace.values.SecretInt` bytes: all
operations are 32-bit adds, rotates, and bitwise logic, which the
transfer functions of Section 2.3 handle precisely.  When the input is
secret, the 128-bit digest is secret -- and becomes the minimum cut of
the host-authentication flow, exactly as the paper reports.

Tested against :mod:`hashlib` on plain inputs.
"""

from __future__ import annotations

_S = [7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
      5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20,
      4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
      6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21]

_K = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee,
    0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa,
    0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
    0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05,
    0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039,
    0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391]

_MASK = 0xFFFFFFFF


def _rotl(x, s):
    return ((x << s) & _MASK) | (x >> (32 - s))


def md5_bytes(data):
    """MD5 digest of ``data`` (a sequence of plain or tracked bytes).

    Returns a list of 16 byte values, tracked iff the input was.
    """
    message = list(data)
    length_bits = (len(message) * 8) & ((1 << 64) - 1)
    message.append(0x80)
    while len(message) % 64 != 56:
        message.append(0x00)
    for shift in range(0, 64, 8):
        message.append((length_bits >> shift) & 0xFF)

    a0, b0, c0, d0 = 0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476

    for block_start in range(0, len(message), 64):
        block = message[block_start:block_start + 64]
        words = []
        for i in range(0, 64, 4):
            word = (block[i]
                    | (block[i + 1] << 8)
                    | (block[i + 2] << 16)
                    | (block[i + 3] << 24))
            words.append(word)
        a, b, c, d = a0, b0, c0, d0
        for i in range(64):
            if i < 16:
                f = (b & c) | ((~b & _MASK) & d)
                g = i
            elif i < 32:
                f = (d & b) | ((~d & _MASK) & c)
                g = (5 * i + 1) % 16
            elif i < 48:
                f = b ^ c ^ d
                g = (3 * i + 5) % 16
            else:
                f = c ^ (b | (~d & _MASK))
                g = (7 * i) % 16
            f = (f + a + _K[i] + words[g]) & _MASK
            a = d
            d = c
            c = b
            b = (b + _rotl(f, _S[i])) & _MASK
        a0 = (a0 + a) & _MASK
        b0 = (b0 + b) & _MASK
        c0 = (c0 + c) & _MASK
        d0 = (d0 + d) & _MASK

    digest = []
    for word in (a0, b0, c0, d0):
        for shift in (0, 8, 16, 24):
            digest.append((word >> shift) & 0xFF)
    return digest


def md5_hexdigest(data):
    """Hex digest over plain bytes (convenience for tests)."""
    return "".join("%02x" % b for b in md5_bytes(data))
