"""Toy RSA for the host-authentication case study (§8.2).

A textbook RSA keypair over fixed 256-bit primes (512-bit modulus) and
square-and-multiply modular exponentiation that runs over tracked
values.  With a secret private exponent, every bit inspected by the
exponentiation loop is a 1-bit implicit flow -- the paper's tool sees
the same storm of branches inside OpenSSH's bignum code, which is why
the RSA computation sits inside an enclosure region.

This is *not* cryptographically serious (fixed primes, no padding); it
exists to reproduce the information-flow structure of the protocol.
"""

from __future__ import annotations

from ...pytrace.values import SecretInt, concrete_of

# Fixed demonstration primes: 2^255 - 19 (the Curve25519 prime) and
# 2^256 - 189 (the largest prime below 2^256); product = 511-bit modulus.
P = 2 ** 255 - 19
Q = 2 ** 256 - 189

#: Public exponent.
E = 65537

KEY_BITS = 512


def make_keypair():
    """Return ``(n, e, d)`` for the fixed demonstration primes."""
    n = P * Q
    phi = (P - 1) * (Q - 1)
    d = pow(E, -1, phi)
    return n, E, d


def encrypt(message, n=None, e=E):
    """Public-key operation on a plain message (challenge generation)."""
    if n is None:
        n = P * Q
    return pow(message, e, n)


def modexp(base, exponent, modulus, bits=KEY_BITS):
    """``base ** exponent mod modulus`` by square-and-multiply.

    ``exponent`` may be tracked: the per-bit test ``(exponent >> i) & 1``
    branches on a secret, recording one implicit flow per key bit.
    ``base`` and ``modulus`` are public ints here (the challenge and the
    public modulus).
    """
    result = 1
    power = base % modulus
    for i in range(bits):
        bit = (exponent >> i) & 1
        if bit:
            result = (result * power) % modulus
        power = (power * power) % modulus
    return result


def decrypt_tracked(cipher, private_exponent, modulus, bits=KEY_BITS):
    """Private-key operation with a tracked exponent.

    Note the asymmetry: the *result* is numerically correct but, as
    computed here, its data provenance flows only through the implicit
    branches (``result`` accumulates public multiplications selected by
    secret bits) -- exactly the situation enclosure regions exist for.
    Callers must wrap this in a region whose output is the result.
    """
    return modexp(cipher, private_exponent, modulus, bits)
