"""The §8.2 host-authentication exchange.

Model of OpenSSH's RSA host authentication: the server encrypts a
random challenge with the client host's public key; the client decrypts
it with the *private* key (the secret), derives a session key, and
returns ``MD5(session_key || session_id)``.  The private key must be
used but never leaked: the acceptable disclosure is exactly the 128-bit
digest, and the paper's tool measures exactly 128 bits with the cut at
the MD5 output.
"""

from __future__ import annotations

from ...pytrace import Session
from .md5 import md5_bytes
from .rsa import KEY_BITS, decrypt_tracked, encrypt, make_keypair


class Server:
    """The remote sshd: issues challenges and verifies responses."""

    def __init__(self, public_n, public_e, session_id):
        self.n = public_n
        self.e = public_e
        self.session_id = session_id
        self._challenge = None

    def issue_challenge(self, rng_value):
        """Encrypt a challenge under the client host's public key."""
        self._challenge = rng_value % self.n
        return encrypt(self._challenge, self.n, self.e)

    def expected_response(self):
        key_bytes = [(self._challenge >> (8 * i)) & 0xFF for i in range(16)]
        return bytes(md5_bytes(key_bytes + list(self.session_id)))


def client_authenticate(session, private_d, modulus, encrypted_challenge,
                        session_id):
    """The client side, with the private key marked secret.

    Returns the response digest bytes that were sent (tracked).  The
    RSA decryption runs inside an enclosure region (its information
    content is the decrypted challenge); the digest of the derived
    session key is the only public output.
    """
    d = session.secret_int(private_d, width=KEY_BITS, name="private_key")
    with session.enclose("rsa-decrypt") as region:
        decrypted = decrypt_tracked(encrypted_challenge, d, modulus)
    decrypted = region.wrap(decrypted, width=KEY_BITS, name="decrypted")
    # Derive the 128-bit session key from the low bytes of the challenge.
    key_bytes = [(decrypted >> (8 * i)) & 0xFF for i in range(16)]
    digest = md5_bytes(key_bytes + list(session_id))
    session.output_bytes(digest, name="auth-response")
    return digest


def run_authentication(rng_value=0x1F2E3D4C5B6A7988,
                       session_id=b"session-id-0123",
                       collapse="location"):
    """Full exchange; returns ``(report, succeeded)``.

    ``succeeded`` confirms the protocol ran correctly (the tracked
    digest equals the server's expectation); ``report.bits`` is the
    measured leak about the private key.
    """
    n, e, d = make_keypair()
    server = Server(n, e, session_id)
    cipher = server.issue_challenge(rng_value)
    session = Session()
    digest = client_authenticate(session, d, n, cipher, session_id)
    sent = bytes(b.concrete() if hasattr(b, "concrete") else b
                 for b in digest)
    succeeded = sent == server.expected_response()
    report = session.measure(collapse=collapse)
    return report, succeeded
