"""§8.5 case study: display-server information flow."""

from .font import HEIGHTS, WIDTHS, text_width
from .server import (BoundingBox, DisplayServer, measure_draw_text,
                     measure_paste)

__all__ = ["HEIGHTS", "WIDTHS", "text_width", "BoundingBox",
           "DisplayServer", "measure_draw_text", "measure_paste"]
