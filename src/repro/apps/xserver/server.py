"""§8.5 case study: the display server.

Models the X server's mediating role for the two request families the
paper analyzed:

* **Text drawing** (``draw_text``): client-provided text is secret.
  Drawing changes framebuffer pixels (not a public output), but as a
  side effect the server computes a *bounding box* for later redraws --
  and the box's dimensions constrain the sum of the glyph widths, the
  same way a redaction rectangle's width leaks the text behind it.  The
  width/height computation is enclosed; its outputs measure 21 bits
  (16-bit width + 5-bit height) regardless of the string.
* **Cut and paste** (``store_selection`` / ``paste_selection``): the
  bytes are uninterpreted by the server -- pure data flows, no implicit
  flows, 8 bits per pasted byte.

:func:`rogue_scan` simulates the paper's injected-code attack (an
exploited server walking memory for credit-card-like digit strings and
exfiltrating them); the tainting-based checker flags it as a flow the
text/paste policy never sanctioned.
"""

from __future__ import annotations

from ...pytrace import Session, concrete_of
from .font import HEIGHT_MASK, HEIGHTS, WIDTHS


class BoundingBox:
    """The redraw bounding box computed as a side effect of drawing."""

    __slots__ = ("x", "y", "width", "height")

    def __init__(self, x, y, width, height):
        self.x = x
        self.y = y
        self.width = width
        self.height = height


class DisplayServer:
    """A single-display server mediating between clients."""

    def __init__(self, session, width=1024, height=768):
        self.session = session
        self.width = width
        self.height = height
        # The framebuffer is *not* a public output (§8.5): clients
        # cannot read it back through this server.
        self.framebuffer = {}
        self.selections = {}
        self.damage = []

    # ------------------------------------------------------------------
    # Text drawing

    def draw_text(self, x, y, text_bytes, client="app"):
        """Draw secret text; returns the (tracked) bounding box.

        ``text_bytes`` may be tracked.  Pixel writes go only to the
        framebuffer; the information that escapes into later protocol
        traffic is the bounding box.
        """
        session = self.session
        with session.enclose("text-metrics") as region:
            total_width = 0
            max_height = 0
            pen_x = x
            for ch in text_bytes:
                glyph_width = WIDTHS[ch]    # indexed flow per character
                glyph_height = HEIGHTS[ch]
                self._draw_glyph(pen_x, y, glyph_width, glyph_height)
                pen_x += glyph_width
                total_width += glyph_width
                if glyph_height > max_height:
                    max_height = glyph_height
        box = BoundingBox(
            x, y,
            region.wrap(total_width, width=16, name="bbox-width"),
            region.wrap(max_height & HEIGHT_MASK, width=5,
                        name="bbox-height"),
        )
        self.damage.append(box)
        return box

    def _draw_glyph(self, x, y, glyph_width, glyph_height):
        # A block glyph: which pixels change is public geometry once the
        # (charged) metrics are known; pixel values are constant ink.
        for dx in range(glyph_width):
            self.framebuffer[(x + dx, y)] = 1

    def report_damage(self, box):
        """Send a redraw/damage notification: the bbox goes on the wire."""
        self.session.output(box.width, box.height, name="damage-event")

    # ------------------------------------------------------------------
    # Cut and paste

    def store_selection(self, name, data_bytes):
        """A client publishes a selection; bytes are uninterpreted."""
        self.selections[name] = list(data_bytes)

    def paste_selection(self, name, client="other-app"):
        """Another client requests the selection: bytes go on the wire."""
        data = self.selections.get(name, [])
        self.session.output_bytes(data, name="paste")
        return bytes(concrete_of(b) & 0xFF for b in data)

    # ------------------------------------------------------------------
    # The simulated exploit (§8.5's integer-overflow attack payload)

    def rogue_scan(self):
        """Injected code: walk stored selections for digit runs, leak them.

        Emulates the paper's simulated exploitation: code supplied via a
        network request scans memory for strings of digits that resemble
        credit-card numbers and writes them out.  Every leaked byte is a
        tainted output the cut policy never sanctioned.
        """
        leaked = []
        for data in self.selections.values():
            run = []
            for byte in data:
                if (byte >= ord("0")) and (byte <= ord("9")):
                    run.append(byte)
                else:
                    run = []
                if len(run) >= 12:  # looks like a card number
                    leaked.extend(run)
                    run = []
        if leaked:
            self.session.output_bytes(leaked, name="exfiltrate")
        return leaked


def measure_draw_text(text=b"Hello, world!", collapse="none"):
    """Measure the §8.5 text-drawing policy; returns (report, bbox)."""
    session = Session()
    server = DisplayServer(session)
    secret = session.secret_bytes(text, name="text-request")
    box = server.draw_text(10, 20, secret)
    server.report_damage(box)
    report = session.measure(collapse=collapse)
    return report, box


def measure_paste(data=b"the secret clipboard", collapse="none"):
    """Measure the cut-and-paste path: pure data flow, 8 bits/byte."""
    session = Session()
    server = DisplayServer(session)
    secret = session.secret_bytes(data, name="selection")
    server.store_selection("PRIMARY", secret)
    pasted = server.paste_selection("PRIMARY")
    report = session.measure(collapse=collapse)
    return report, pasted
