"""A proportional font for the §8.5 text-drawing case study.

Public per-character metrics (advance width and height), with the
property that made the paper's redaction observation interesting:
different characters have different widths, so the *sum* of widths (a
bounding box) constrains which characters were drawn.
"""

from __future__ import annotations

#: Advance width per code point (public).  Synthetic but shaped like a
#: real proportional font: narrow 'i'/'l', wide 'm'/'w', etc.
_BASE_WIDTHS = {
    " ": 4, "!": 3, ",": 3, ".": 3, "'": 2, ":": 3, ";": 3, "-": 4,
    "i": 3, "j": 3, "l": 3, "f": 4, "t": 4, "r": 5,
    "a": 7, "b": 7, "c": 6, "d": 7, "e": 7, "g": 7, "h": 7, "k": 6,
    "n": 7, "o": 7, "p": 7, "q": 7, "s": 6, "u": 7, "v": 6, "x": 6,
    "y": 6, "z": 6,
    "m": 11, "w": 10,
    "A": 9, "B": 8, "C": 9, "D": 9, "E": 8, "F": 7, "G": 9, "H": 9,
    "I": 3, "J": 5, "K": 8, "L": 7, "M": 11, "N": 9, "O": 10, "P": 8,
    "Q": 10, "R": 8, "S": 8, "T": 8, "U": 9, "V": 9, "W": 13, "X": 8,
    "Y": 8, "Z": 8,
    "0": 7, "1": 7, "2": 7, "3": 7, "4": 7, "5": 7, "6": 7, "7": 7,
    "8": 7, "9": 7,
}

#: Glyph height above baseline per code point (public); descenders and
#: capitals differ, so the bounding-box height carries a little
#: information too.
_TALL = set("bdfhklt" + "ABCDEFGHIJKLMNOPQRSTUVWXYZ" + "0123456789")
_DESCENDERS = set("gjpqy")


def _height(ch):
    if ch in _TALL:
        return 14
    if ch in _DESCENDERS:
        return 12
    return 10


#: 256-entry lookup tables, indexable by (possibly tracked) byte value.
WIDTHS = [6] * 256
HEIGHTS = [10] * 256
for _ch, _w in _BASE_WIDTHS.items():
    WIDTHS[ord(_ch)] = _w
for _code in range(256):
    _c = chr(_code)
    HEIGHTS[_code] = _height(_c)

#: Maximum glyph height fits in 4 bits; the audit masks to 5 for slack.
HEIGHT_MASK = 0x1F


def text_width(text):
    """Public helper: pixel width of a plain string."""
    return sum(WIDTHS[ord(c)] for c in text)
