"""Bit-level I/O for the block-sorting compressor.

The writer accepts plain ints; the compressor's bit stream is public
data (its secrecy is accounted for by the enclosing region), so no
tracked arithmetic is needed here.  The reader mirrors it for the
decompressor.
"""

from __future__ import annotations


class BitWriter:
    """Accumulates bits (MSB-first) and packs them into bytes."""

    def __init__(self):
        self._bits = []

    def write_bit(self, bit):
        self._bits.append(1 if bit else 0)

    def write_bits(self, value, count):
        """Write ``count`` bits of ``value``, most-significant first."""
        for shift in range(count - 1, -1, -1):
            self._bits.append((value >> shift) & 1)

    def __len__(self):
        """Number of bits written so far."""
        return len(self._bits)

    def to_bytes(self):
        """Pack into bytes, zero-padding the final partial byte."""
        out = []
        bits = self._bits
        for start in range(0, len(bits), 8):
            chunk = bits[start:start + 8]
            byte = 0
            for bit in chunk:
                byte = (byte << 1) | bit
            byte <<= 8 - len(chunk)
            out.append(byte)
        return bytes(out)


class BitReader:
    """Reads bits (MSB-first) from a byte string."""

    def __init__(self, data):
        self._data = data
        self._pos = 0  # bit position

    @property
    def bits_remaining(self):
        return len(self._data) * 8 - self._pos

    def read_bit(self):
        if self._pos >= len(self._data) * 8:
            raise EOFError("bit stream exhausted")
        byte = self._data[self._pos >> 3]
        bit = (byte >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_bits(self, count):
        value = 0
        for _ in range(count):
            value = (value << 1) | self.read_bit()
        return value
