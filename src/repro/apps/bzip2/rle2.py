"""Zero-run encoding of MTF output (bzip2's "RLE2" stage).

After move-to-front, well-behaved blocks are dominated by zeros (runs
of repeated context).  bzip2 encodes each zero run in a bijective
base-2 numeral over two dedicated symbols, RUNA and RUNB, shifting the
remaining MTF indices up by one.  This implementation follows that
scheme exactly:

* run length n >= 1 is written as the digits of n+1 in binary, least
  significant first, dropping the leading 1 -- digit 0 -> RUNA,
  digit 1 -> RUNB (so 1 -> A, 2 -> B, 3 -> AA, 4 -> BA, 5 -> AB, ...);
* a non-zero MTF index i becomes symbol i + 1.

The alphabet grows to 257 symbols (RUNA=0, RUNB=1, indices 2..256).
"""

from __future__ import annotations

RUNA = 0
RUNB = 1

#: Symbol alphabet size after shifting (256 indices + RUNA/RUNB - the
#: zero index, which is never emitted directly).
ALPHABET = 257


def _emit_run(length, out):
    """Bijective base-2 digits of the run length (least significant
    first): repeatedly take (length-1) % 2 as the digit, halve."""
    while length > 0:
        length -= 1
        out.append(RUNB if (length & 1) else RUNA)
        length >>= 1


def rle2_encode(indices):
    """Encode MTF indices (0..255) to run symbols (0..256)."""
    out = []
    run = 0
    for index in indices:
        if index == 0:
            run += 1
            continue
        if run:
            _emit_run(run, out)
            run = 0
        out.append(index + 1)
    if run:
        _emit_run(run, out)
    return out


def rle2_decode(symbols):
    """Inverse of :func:`rle2_encode`."""
    out = []
    run_value = 0
    run_place = 1
    for symbol in symbols:
        if symbol in (RUNA, RUNB):
            run_value += run_place * (1 if symbol == RUNA else 2)
            run_place <<= 1
            continue
        if run_place > 1:
            out.extend([0] * run_value)
            run_value = 0
            run_place = 1
        if not (2 <= symbol < ALPHABET):
            raise ValueError("bad RLE2 symbol %r" % (symbol,))
        out.append(symbol - 1)
    if run_place > 1:
        out.extend([0] * run_value)
    return out
