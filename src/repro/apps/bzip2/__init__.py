"""Block-sorting compressor: the Section 5.3 / Figure 3 workload.

A from-scratch bzip2 analog (RLE -> BWT -> MTF -> Huffman) whose
compression path can run over tracked secret bytes; see
:mod:`.compressor` and :func:`.audit.measure_compression_flow`.
"""

from .bitio import BitReader, BitWriter
from .bwt import bwt_forward, bwt_inverse, rotation_sort
from .compressor import (DEFAULT_BLOCK_SIZE, MAGIC, compress,
                         compressed_size, decompress)
from .huffman import Decoder, canonical_codes, code_lengths, encode
from .mtf import mtf_decode, mtf_encode
from .rle import rle_decode, rle_encode
from .rle2 import ALPHABET, RUNA, RUNB, rle2_decode, rle2_encode
from .audit import measure_compression_flow

__all__ = [
    "BitReader", "BitWriter",
    "bwt_forward", "bwt_inverse", "rotation_sort",
    "DEFAULT_BLOCK_SIZE", "MAGIC", "compress", "compressed_size",
    "decompress",
    "Decoder", "canonical_codes", "code_lengths", "encode",
    "mtf_decode", "mtf_encode",
    "rle_decode", "rle_encode",
    "ALPHABET", "RUNA", "RUNB", "rle2_decode", "rle2_encode",
    "measure_compression_flow",
]
