"""Initial run-length encoding (bzip2's first stage).

Runs of four or more equal bytes are emitted as four literals followed
by a count byte (0..251 extra repeats), protecting the block sorter
from degenerate inputs.  Comparing adjacent tracked bytes produces the
usual 1-bit implicit flows, charged to the enclosing region.
"""

from __future__ import annotations

#: Maximum extra repeats encoded in the count byte.
MAX_EXTRA = 251


def rle_encode(data):
    """Encode ``data`` (tracked or plain bytes); output mirrors input kind.

    The emitted literals are the original values (tracked bytes keep
    their provenance); count bytes are plain ints.
    """
    out = []
    i = 0
    n = len(data)
    while i < n:
        run = 1
        while (i + run < n and run < 4 + MAX_EXTRA
               and data[i + run] == data[i]):
            run += 1
        if run >= 4:
            out.extend(data[i:i + 4])
            out.append(run - 4)
            i += run
        else:
            out.extend(data[i:i + run])
            i += run
    return out


def rle_decode(data):
    """Inverse of :func:`rle_encode` over plain ints."""
    out = []
    i = 0
    n = len(data)
    while i < n:
        byte = data[i]
        out.append(byte)
        run = 1
        j = i + 1
        while j < n and run < 4 and data[j] == byte:
            out.append(byte)
            run += 1
            j += 1
        if run == 4:
            if j >= n:
                raise ValueError("truncated RLE stream")
            out.extend([byte] * data[j])
            j += 1
        i = j
    return out
