"""Canonical Huffman coding for the compressor's entropy stage.

By the time symbols reach this stage they are plain MTF indices (their
dependence on the secret block was charged at the earlier indexed
accesses), so the coder is ordinary public arithmetic: build optimal
code lengths from frequencies, derive the canonical code, and serialize
lengths compactly for the decompressor.
"""

from __future__ import annotations

import heapq

from .bitio import BitReader, BitWriter

#: Lengths are stored in 4 bits (1..15); the tree is shallow for the
#: 256-symbol alphabets these blocks produce.
MAX_LENGTH = 15


def code_lengths(frequencies):
    """Optimal prefix-code lengths (Huffman) for ``frequencies``.

    Returns a list parallel to ``frequencies``; unused symbols get 0.
    Single-symbol alphabets get length 1.  Lengths above
    :data:`MAX_LENGTH` are flattened by the standard repeated-halving
    fallback (rare at these block sizes).
    """
    heap = [(freq, sym) for sym, freq in enumerate(frequencies) if freq]
    lengths = [0] * len(frequencies)
    if not heap:
        return lengths
    if len(heap) == 1:
        lengths[heap[0][1]] = 1
        return lengths
    counter = len(frequencies)
    trees = [(freq, counter + i, (sym,)) for i, (freq, sym)
             in enumerate(heap)]
    heapq.heapify(trees)
    counter += len(trees)
    while len(trees) > 1:
        f1, _, s1 = heapq.heappop(trees)
        f2, _, s2 = heapq.heappop(trees)
        for sym in s1 + s2:
            lengths[sym] += 1
        heapq.heappush(trees, (f1 + f2, counter, s1 + s2))
        counter += 1
    while max(lengths) > MAX_LENGTH:
        # Flatten: halve all frequencies (rounding up) and retry.
        frequencies = [(f + 1) // 2 if f else 0 for f in frequencies]
        return code_lengths(frequencies)
    return lengths


def canonical_codes(lengths):
    """Canonical code values from lengths: list of (code, length) or None."""
    symbols = sorted((length, sym) for sym, length in enumerate(lengths)
                     if length)
    codes = [None] * len(lengths)
    code = 0
    previous_length = 0
    for length, sym in symbols:
        code <<= (length - previous_length)
        codes[sym] = (code, length)
        code += 1
        previous_length = length
    return codes


def write_lengths(writer, lengths):
    """Serialize the code-length table: 256 x 4 bits, run-compressed.

    Format: repeated (4-bit length, 8-bit run count) pairs covering all
    256 symbols in order.
    """
    sym = 0
    while sym < len(lengths):
        run = 1
        while (sym + run < len(lengths) and run < 255
               and lengths[sym + run] == lengths[sym]):
            run += 1
        writer.write_bits(lengths[sym], 4)
        writer.write_bits(run, 8)
        sym += run


def read_lengths(reader, count=256):
    """Inverse of :func:`write_lengths`."""
    lengths = []
    while len(lengths) < count:
        length = reader.read_bits(4)
        run = reader.read_bits(8)
        lengths.extend([length] * run)
    if len(lengths) != count:
        raise ValueError("corrupt length table")
    return lengths


def encode(symbols, lengths, writer):
    """Append the Huffman encoding of ``symbols`` to ``writer``."""
    codes = canonical_codes(lengths)
    for sym in symbols:
        entry = codes[sym]
        if entry is None:
            raise ValueError("symbol %d has no code" % sym)
        writer.write_bits(entry[0], entry[1])


class Decoder:
    """Canonical Huffman decoder (table-walking, bit at a time)."""

    def __init__(self, lengths):
        self._first_code = {}
        self._first_index = {}
        self._symbols = [sym for _, sym in
                         sorted((length, sym)
                                for sym, length in enumerate(lengths)
                                if length)]
        code = 0
        index = 0
        previous_length = 0
        for length, sym in sorted((length, sym)
                                  for sym, length in enumerate(lengths)
                                  if length):
            code <<= (length - previous_length)
            if length not in self._first_code:
                self._first_code[length] = code
                self._first_index[length] = index
            code += 1
            index += 1
            previous_length = length

    def decode_one(self, reader):
        code = 0
        length = 0
        while True:
            code = (code << 1) | reader.read_bit()
            length += 1
            if length > MAX_LENGTH:
                raise ValueError("corrupt Huffman stream")
            first = self._first_code.get(length)
            if first is None:
                continue
            # Number of codes of this length:
            index = self._first_index[length]
            offset = code - first
            next_first = None
            count = len(self._symbols) - index
            # Bound by the next populated length's start.
            for other_length in sorted(self._first_code):
                if other_length > length:
                    count = self._first_index[other_length] - index
                    break
            if 0 <= offset < count:
                return self._symbols[index + offset]

    def decode(self, reader, count):
        return [self.decode_one(reader) for _ in range(count)]
