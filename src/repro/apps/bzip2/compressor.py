"""The block-sorting compressor (the paper's Section 5.3 workload).

Pipeline per block, mirroring bzip2's architecture: initial RLE ->
Burrows-Wheeler transform -> move-to-front -> zero-run (RLE2/RUNA-RUNB)
coding -> canonical Huffman.
Compression can run over *tracked* secret bytes inside an enclosure
region: the stage-by-stage indexed accesses and comparisons charge the
region, and every output byte leaves the region as a full-width secret.
The measured max-flow then tracks min(input size, compressed size) --
the Figure 3 curve.

Stream format (all integers big-endian via the bit writer)::

    "BZR1"                                   magic (public, fixed)
    repeat per block:
        1 bit   more-blocks flag (1)
        24 bits post-RLE block length
        24 bits primary index (BWT row of the original rotation)
        24 bits RLE2 symbol count
        length table (run-encoded 4-bit lengths, 257 symbols)
        Huffman-coded RLE2 symbols
    1 bit more-blocks flag (0), padded to a byte boundary
"""

from __future__ import annotations

from contextlib import contextmanager

from .bitio import BitReader, BitWriter
from .bwt import bwt_forward, bwt_inverse
from .huffman import Decoder, code_lengths, encode, read_lengths, write_lengths
from .mtf import mtf_decode, mtf_encode
from .rle import rle_decode, rle_encode
from .rle2 import ALPHABET, rle2_decode, rle2_encode

MAGIC = b"BZR1"
DEFAULT_BLOCK_SIZE = 4096


@contextmanager
def _maybe_region(session, name):
    if session is None:
        yield None
    else:
        with session.enclose(name) as region:
            yield region


def compress(data, session=None, block_size=DEFAULT_BLOCK_SIZE):
    """Compress ``data`` (tracked bytes when ``session`` is given).

    Returns the compressed bytes: plain ``bytes`` without a session, or
    a list of tracked bytes (region outputs) with one -- ready for
    ``session.output_bytes``.
    """
    writer = BitWriter()
    with _maybe_region(session, "compress") as region:
        for start in range(0, len(data), block_size):
            block = data[start:start + block_size]
            _compress_block(block, writer)
        writer.write_bit(0)
        payload = writer.to_bytes()
    if session is None:
        return MAGIC + payload
    wrapped = region.wrap_all(list(payload), width=8, name="compressed")
    return list(MAGIC) + wrapped


def _compress_block(block, writer):
    rle = rle_encode(block)
    last, primary = bwt_forward(rle)
    symbols = rle2_encode(mtf_encode(last))
    frequencies = [0] * ALPHABET
    for symbol in symbols:
        frequencies[symbol] += 1
    lengths = code_lengths(frequencies)
    writer.write_bit(1)
    writer.write_bits(len(rle), 24)
    writer.write_bits(primary, 24)
    writer.write_bits(len(symbols), 24)
    write_lengths(writer, lengths)
    encode(symbols, lengths, writer)


def decompress(data):
    """Decompress plain bytes produced by :func:`compress`."""
    if bytes(data[:4]) != MAGIC:
        raise ValueError("bad magic")
    reader = BitReader(bytes(data[4:]))
    out = []
    while reader.read_bit():
        n = reader.read_bits(24)
        primary = reader.read_bits(24)
        symbol_count = reader.read_bits(24)
        lengths = read_lengths(reader, count=ALPHABET)
        decoder = Decoder(lengths)
        symbols = decoder.decode(reader, symbol_count)
        indices = rle2_decode(symbols)
        if len(indices) != n:
            raise ValueError("corrupt block: RLE2 length mismatch")
        last = mtf_decode(indices)
        rle = bwt_inverse(last, primary)
        out.extend(rle_decode(rle))
    return bytes(out)


def compressed_size(data, block_size=DEFAULT_BLOCK_SIZE):
    """Size in bytes of the compressed form (public helper for benches)."""
    return len(compress(list(data), block_size=block_size))
