"""Burrows-Wheeler transform (the "block sorting" in block-sorting
compression).

Forward transform sorts all cyclic rotations of the block and emits the
last column plus the index of the original rotation.  The suffix ranks
are seeded by a *counting sort on byte values*: when the input bytes are
tracked secrets, each bucket access indexes an array with a secret --
an 8-bit implicit flow per byte, charged to the enclosing region
(Section 2.2's pointer rule).  After that seeding, ranks are public
integers already accounted for, and the prefix-doubling rounds run at
native speed.

The inverse transform reconstructs the block from the last column;
together they give the round-trip property the tests check.
"""

from __future__ import annotations

from ...pytrace.values import SecretInt


def _initial_ranks(data):
    """Counting-sort ranks of single bytes.

    ``data`` may mix plain ints and tracked bytes; indexing the count
    table with a tracked byte records the implicit flow that makes the
    later public processing sound.
    """
    counts = [0] * 256
    for byte in data:
        counts[byte] += 1  # tracked byte -> __index__ -> implicit flow
    rank_of_byte = [0] * 256
    total = 0
    for value in range(256):
        rank_of_byte[value] = total
        if counts[value]:
            total += 1
    return [rank_of_byte[byte] for byte in data]


def rotation_sort(data):
    """Sort the cyclic rotations of ``data``; return the rotation order.

    Prefix doubling over cyclic indices: after round k, ``rank[i]`` is
    the rank of rotation i by its first 2^k characters.  All arithmetic
    after the initial counting sort is on public ranks.
    """
    n = len(data)
    if n == 0:
        return []
    rank = _initial_ranks(data)
    order = sorted(range(n), key=lambda i: rank[i])
    k = 1
    while k < n:
        def key(i):
            return (rank[i], rank[(i + k) % n])

        order.sort(key=key)
        new_rank = [0] * n
        for pos in range(1, n):
            prev, cur = order[pos - 1], order[pos]
            new_rank[cur] = new_rank[prev] + (1 if key(cur) != key(prev)
                                              else 0)
        rank = new_rank
        if rank[order[-1]] == n - 1:
            break
        k *= 2
    return order


def bwt_forward(data):
    """Forward BWT: returns ``(last_column, primary_index)``.

    ``last_column`` elements are the *original* data values (tracked
    bytes keep their provenance -- copies create no nodes), so direct
    data flows from input to transform output are preserved.
    """
    n = len(data)
    if n == 0:
        return [], 0
    order = rotation_sort(data)
    last = [data[(i - 1) % n] for i in order]
    primary = order.index(0)
    return last, primary


def bwt_inverse(last, primary):
    """Inverse BWT over plain ints (the decompression side)."""
    n = len(last)
    if n == 0:
        return []
    counts = [0] * 256
    for byte in last:
        counts[byte] += 1
    firsts = [0] * 256
    total = 0
    for value in range(256):
        firsts[value] = total
        total += counts[value]
    # Transform vector: next[i] = position in 'last' of the rotation
    # that follows rotation i in sorted order.
    seen = [0] * 256
    nxt = [0] * n
    for i, byte in enumerate(last):
        nxt[firsts[byte] + seen[byte]] = i
        seen[byte] += 1
    out = []
    pos = nxt[primary]
    for _ in range(n):
        out.append(last[pos])
        pos = nxt[pos]
    return out
