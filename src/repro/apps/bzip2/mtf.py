"""Move-to-front coding (the stage between BWT and entropy coding).

Encoding maintains the symbol ordering both as a list (``order``) and
its inverse (``position``).  Looking up a tracked byte's position
indexes an array with a secret -- the 8-bit implicit flow that accounts
for everything the resulting *public* index reveals; from there on all
bookkeeping runs on plain ints (``order[index]`` recovers the concrete
symbol without touching the tracked value again).
"""

from __future__ import annotations


def mtf_encode(data):
    """Encode a byte sequence (tracked or plain) to plain MTF indices."""
    order = list(range(256))
    position = list(range(256))
    out = []
    for byte in data:
        index = position[byte]  # tracked byte -> implicit flow
        out.append(index)
        if index:
            symbol = order[index]
            # Shift everything before `index` up by one slot.
            for j in range(index, 0, -1):
                moved = order[j - 1]
                order[j] = moved
                position[moved] = j
            order[0] = symbol
            position[symbol] = 0
    return out


def mtf_decode(indices):
    """Decode plain MTF indices back to the byte sequence."""
    order = list(range(256))
    out = []
    for index in indices:
        symbol = order[index]
        out.append(symbol)
        if index:
            del order[index]
            order.insert(0, symbol)
    return out
