"""Figure 3 measurement: flow through the compressor vs. input size.

Marks an input as entirely secret, compresses it under tracking, writes
the compressed stream to the public output, and measures the max-flow
bound.  The paper's expectation: for compressible inputs the bound
matches the compressed-output size (minus the fixed header); for
incompressible (tiny) inputs it matches the input size.
"""

from __future__ import annotations

from ... import obs
from ...pytrace import Session
from .compressor import DEFAULT_BLOCK_SIZE, MAGIC, compress, compressed_size


class CompressionFlowResult:
    """One Figure 3 data point."""

    def __init__(self, input_bytes, output_bytes, flow_bits, report):
        self.input_bytes = input_bytes
        self.output_bytes = output_bytes
        self.flow_bits = flow_bits
        self.report = report

    @property
    def input_bits(self):
        return 8 * self.input_bytes

    @property
    def payload_output_bits(self):
        """Output bits excluding the fixed (public) magic header."""
        return 8 * (self.output_bytes - len(MAGIC))

    def __repr__(self):
        return ("CompressionFlowResult(in=%dB, out=%dB, flow=%d bits)"
                % (self.input_bytes, self.output_bytes, self.flow_bits))


def measure_compression_flow(data, block_size=DEFAULT_BLOCK_SIZE,
                             collapse="location", online=False,
                             backend=None):
    """Compress secret ``data``; measure the information flow.

    With ``online=True`` the trace graph is collapsed by ``collapse``
    *while* the compressor runs (Section 5.2 online), so the live graph
    stays proportional to code coverage instead of trace length; the
    resulting report is equivalent to the post-hoc collapse.
    ``backend`` selects the shadow-propagation backend
    (``"reference"``/``"fast"``/``None`` for auto; see
    ``docs/backends.md``) -- results are bit-identical either way.

    Returns a :class:`CompressionFlowResult`.
    """
    session = Session(online_collapse=collapse if online else None,
                      backend=backend)
    with obs.get_metrics().phase("trace"):
        secret = session.secret_bytes(bytes(data))
        out = compress(secret, session=session, block_size=block_size)
        session.output_bytes(out)
    report = session.measure(collapse=collapse)
    return CompressionFlowResult(len(data), len(out), report.bits, report)
