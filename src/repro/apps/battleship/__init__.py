"""§8.1 case study: KBattleship, buggy and patched."""

from .game import (BOARD_SIZE, FLEET_LENGTHS, Board, Ship, ShotOutcome,
                   evaluate_shot, render_board, respond_buggy,
                   respond_patched)
from .audit import DEFAULT_PLACEMENT, GameAudit, play_and_measure

__all__ = [
    "BOARD_SIZE", "FLEET_LENGTHS", "Board", "Ship", "ShotOutcome",
    "evaluate_shot", "render_board", "respond_buggy", "respond_patched",
    "DEFAULT_PLACEMENT", "GameAudit", "play_and_measure",
]
