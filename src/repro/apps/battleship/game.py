"""§8.1 case study: the Battleship game with the shipTypeAt bug.

A networked Battleship where the local player's ship placement is the
secret.  The server answers the opponent's shots; two reply
implementations are provided:

* :func:`respond_patched` -- the fixed protocol: a hit/miss bit, plus a
  fatal/non-fatal bit when hit (the paper: "a miss reveals one bit; a
  non-fatal hit reveals two bits");
* :func:`respond_buggy` -- KBattleship 3.3.2's bug: the reply carries
  the return value of ``shipTypeAt``, i.e. the *length* of the ship at
  the shot location, revealing extra information about adjacent cells.
"""

from __future__ import annotations

from ...pytrace import concrete_of

BOARD_SIZE = 10
#: Classic fleet: one ship of each length.
FLEET_LENGTHS = (4, 3, 2, 1)


class Ship:
    """One ship with tracked position/orientation and plain hit count."""

    def __init__(self, session, length, row, col, horizontal, index):
        self.length = length
        self.row = session.secret_int(row, width=4,
                                      name="ship%d.row" % index)
        self.col = session.secret_int(col, width=4,
                                      name="ship%d.col" % index)
        self.horizontal = session.secret_int(1 if horizontal else 0,
                                             width=1,
                                             name="ship%d.dir" % index)
        self.hits = 0

    def covers(self, x, y):
        """Whether this ship occupies board cell (x, y).

        All comparisons branch on secrets; callers run this inside an
        enclosure region.
        """
        if self.horizontal:
            return (y == self.row) and (self.col <= x) \
                and (x < self.col + self.length)
        return (x == self.col) and (self.row <= y) \
            and (y < self.row + self.length)


class Board:
    """The local player's secret fleet."""

    def __init__(self, session, placements):
        """``placements``: list of (row, col, horizontal) per fleet ship."""
        if len(placements) != len(FLEET_LENGTHS):
            raise ValueError("need %d placements" % len(FLEET_LENGTHS))
        self.session = session
        self.ships = [Ship(session, length, row, col, horizontal, i)
                      for i, (length, (row, col, horizontal))
                      in enumerate(zip(FLEET_LENGTHS, placements))]

    def remaining(self):
        """Ships not yet sunk (plain bookkeeping)."""
        return sum(1 for s in self.ships if s.hits < s.length)


class ShotOutcome:
    """Tracked reply values computed for one shot."""

    __slots__ = ("hit", "fatal", "ship_type")

    def __init__(self, hit, fatal, ship_type):
        self.hit = hit
        self.fatal = fatal
        self.ship_type = ship_type


def evaluate_shot(board, x, y):
    """Resolve a shot inside an enclosure region; returns a ShotOutcome.

    The concrete game-state updates (hit counters) are plain; their
    secrecy is captured by the region's implicit flows, and the reply
    values leave the region as tracked outputs.
    """
    session = board.session
    with session.enclose("shot") as region:
        hit = 0
        fatal = 0
        ship_type = 0
        for ship in board.ships:
            if ship.covers(x, y):
                hit = 1
                ship_type = ship.length
                ship.hits += 1
                if ship.hits >= ship.length:
                    fatal = 1
    return ShotOutcome(
        region.wrap(hit, width=1, name="hit"),
        region.wrap(fatal, width=1, name="fatal"),
        region.wrap(ship_type, width=3, name="ship_type"),
    )


def respond_patched(board, x, y):
    """The fixed network reply: hit bit, plus fatal bit on hits.

    Returns the concrete reply tuple for the opponent's client.
    """
    session = board.session
    outcome = evaluate_shot(board, x, y)
    session.output(outcome.hit, name="reply-hit")
    # Branching on the (tracked) hit bit here is sound *and* free: the
    # value's 1-bit node capacity already bounds the io edge and this
    # implicit flow together to one bit.
    if outcome.hit:
        session.output(outcome.fatal, name="reply-fatal")
        return (1, concrete_of(outcome.fatal))
    return (0, None)


def respond_buggy(board, x, y):
    """KBattleship 3.3.2: the reply carries shipTypeAt's return value."""
    session = board.session
    outcome = evaluate_shot(board, x, y)
    session.output(outcome.ship_type, name="reply-type")
    return (concrete_of(outcome.ship_type),)


def render_board(board):
    """The local GUI view of the player's own board.

    The display legitimately shows the player their own ships; the
    paper excludes the GUI from the analysis by declassifying the data
    handed to the drawing routines -- reproduced here.
    """
    session = board.session
    grid = [["." for _ in range(BOARD_SIZE)] for _ in range(BOARD_SIZE)]
    for ship in board.ships:
        row = session.declassify(ship.row)
        col = session.declassify(ship.col)
        horizontal = session.declassify(ship.horizontal)
        for offset in range(ship.length):
            y = row if horizontal else row + offset
            x = col + offset if horizontal else col
            if 0 <= x < BOARD_SIZE and 0 <= y < BOARD_SIZE:
                grid[y][x] = str(ship.length)
    return "\n".join("".join(line) for line in grid)
