"""Measurement harness for the battleship policy (§8.1).

Plays a scripted sequence of opponent shots against a board and
measures how much information about the ship layout reached the
network.  Expected per the paper: 1 bit per miss, 2 bits per non-fatal
hit; the shipTypeAt bug leaks more.
"""

from __future__ import annotations

from ...pytrace import Session
from .game import Board, render_board, respond_buggy, respond_patched

#: A legal default placement: (row, col, horizontal) for lengths 4,3,2,1.
DEFAULT_PLACEMENT = [(0, 0, True), (2, 3, False), (5, 5, True), (9, 9, True)]


class GameAudit:
    """Result of measuring one scripted game."""

    def __init__(self, report, replies, misses, hits, fatal_hits):
        self.report = report
        self.replies = replies
        self.misses = misses
        self.hits = hits
        self.fatal_hits = fatal_hits

    @property
    def bits(self):
        return self.report.bits

    @property
    def expected_patched_bits(self):
        """The paper's accounting: 1/miss + 2/hit (fatal or not)."""
        return self.misses + 2 * self.hits

    def __repr__(self):
        return ("GameAudit(bits=%d, misses=%d, hits=%d, fatal=%d)"
                % (self.bits, self.misses, self.hits, self.fatal_hits))


def play_and_measure(shots, placements=None, buggy=False,
                     collapse="none", show_gui=False):
    """Play ``shots`` (list of (x, y)) and measure the network leak."""
    session = Session()
    board = Board(session, placements or DEFAULT_PLACEMENT)
    if show_gui:
        # The GUI shows the player their own board; the paper excludes
        # it from the policy by declassification.
        render_board(board)
    respond = respond_buggy if buggy else respond_patched
    replies = []
    misses = hits = fatal = 0
    for x, y in shots:
        reply = respond(board, x, y)
        replies.append(reply)
        if buggy:
            if reply[0]:
                hits += 1
            else:
                misses += 1
        else:
            if reply[0]:
                hits += 1
                if reply[1]:
                    fatal += 1
            else:
                misses += 1
    report = session.measure(collapse=collapse, exit_observable=False)
    return GameAudit(report, replies, misses, hits, fatal)
