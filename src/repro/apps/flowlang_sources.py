"""FlowLang sources with hand-written enclosure annotations (Figure 6).

The Section 8.6 experiment scores the pilot static inference against
the hand annotations used in the case studies.  These FlowLang programs
mirror the annotation *shapes* that occurred there:

* direct scalar outputs (the common case the pilot finds);
* array outputs written at non-constant indices (*missed/expansion*);
* outputs written inside called functions (*missed/interprocedural*);
* unsized array outputs carrying an explicit ``[.. n]`` bound
  (*need length*).

Every program type-checks and runs; the Figure 6 benchmark feeds their
ASTs to :func:`repro.infer.classify_annotations`.
"""

from __future__ import annotations

from .countpunct import FLOWLANG_SOURCE as COUNTPUNCT_SOURCE

#: A bzip2-flavoured program: heavy array use, helper functions, and a
#: dynamically-sized output buffer.  Annotation shapes: one direct
#: scalar (found), dynamic-index arrays (expansion), an output buffer
#: with an explicit length (need length + expansion), and a global
#: counter bumped in a callee (interprocedural).
CHECKSUM_SOURCE = '''
var blocks_done: u32 = 0;

fn note_block() {
    blocks_done = blocks_done + 1;
}

fn build_table(data: u8[], n: u32, table: u8[]) {
    var i: u32 = 0;
    while (i < n) {
        table[u32(data[i])] = 1;
        i = i + 1;
    }
}

fn checksum_block(data: u8[], n: u32, out: u8[], out_len: u32): u32 {
    var table: u8[256];
    var total: u32 = 0;
    enclose (table[..], total, blocks_done) {
        var i: u32 = 0;
        while (i < n) {
            if (data[i] > 127) {
                total = total + 1;
            }
            i = i + 1;
        }
        build_table(data, n, table);
        note_block();
    }
    enclose (out[.. out_len], total) {
        var j: u32 = 0;
        while (j < out_len) {
            out[j] = u8(total % 251);
            total = total / 251;
            j = j + 1;
        }
    }
    return total;
}

fn main() {
    var buf: u8[64];
    var out: u8[8];
    var n: u32 = read_secret(buf, 64);
    var rest: u32 = checksum_block(buf, n, out, 8);
    output_bytes(out, 8);
    output(rest & 0xFF);
}
'''

#: An xserver-flavoured program: a metrics region whose width total is
#: accumulated by a helper (interprocedural) while the height max is
#: updated directly (found).
METRICS_SOURCE = '''
var width_total: u32 = 0;

fn add_width(w: u32) {
    width_total = width_total + w;
}

fn glyph_width(ch: u8): u32 {
    if (ch == 'i') { return 3; }
    if (ch == 'm') { return 11; }
    return 7;
}

fn measure_text(text: u8[], n: u32): u32 {
    var height_max: u32 = 0;
    width_total = 0;
    enclose (width_total, height_max) {
        var i: u32 = 0;
        while (i < n) {
            add_width(glyph_width(text[i]));
            if (text[i] > 'Z') {
                if (height_max < 10) { height_max = 10; }
            } else {
                if (height_max < 14) { height_max = 14; }
            }
            i = i + 1;
        }
    }
    output(width_total & 0xFFFF);
    output(height_max & 0x1F);
    return width_total;
}

fn main() {
    var text: u8[32];
    var n: u32 = read_secret(text, 32);
    var w: u32 = measure_text(text, n);
}
'''

#: A scheduler-flavoured program: literal-index grid writes (found) and
#: two directly-assigned scalars (found), plus one whole-array output
#: written through a loop index (expansion).
GRID_SOURCE = '''
fn mark_slots(start: u8, end: u8) {
    var flags: u8[4];
    var first: u8 = 0;
    var last: u8 = 0;
    enclose (first, last) {
        first = start / 8;
        last = end / 8;
        if (first > 3) { first = 3; }
        if (last > 3) { last = 3; }
    }
    enclose (flags[..]) {
        flags[0] = 0;
        flags[1] = 0;
        flags[2] = 0;
        flags[3] = 0;
        var s: u8 = first;
        while (s < last) {
            flags[u32(s)] = 1;
            s = s + 1;
        }
    }
    output_bytes(flags, 4);
}

fn main() {
    var start: u8 = secret_u8();
    var end: u8 = secret_u8();
    mark_slots(start, end);
}
'''

#: All the sources the Figure 6 experiment scores, by program name.
FIGURE6_PROGRAMS = {
    "count_punct": COUNTPUNCT_SOURCE,
    "checksum": CHECKSUM_SOURCE,
    "metrics": METRICS_SOURCE,
    "grid": GRID_SOURCE,
}
