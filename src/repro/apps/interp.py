"""Tracking through an interpreter (Section 10.3, demonstrated).

The paper's future-work idea: instead of hand-instrumenting a scripting
language's interpreter, analyze the *interpreter binary* with the same
tool, so the interpreter drops out of the trusted computing base.

Here a small stack-machine interpreter is written in FlowLang and run
on the instrumented VM.  Its bytecode *program* is public input; its
*data* is secret input.  Because interpreter dispatch branches only on
public opcodes, the interpretation machinery itself adds no implicit
flows -- the measured leak of an interpreted program is the leak of the
program it interprets, with the interpreter untrusted, exactly the
§10.3 goal.

The interpreted language ("TinyStack"):

====== ====================== =========================
opcode meaning                stack effect
====== ====================== =========================
0      halt                   --
1 k    push constant k        ( -- k)
2      read secret byte       ( -- s)
3      output top of stack    (a -- )
4      add                    (a b -- a+b)
5      and                    (a b -- a&b)
6      xor                    (a b -- a^b)
7      dup                    (a -- a a)
8 t    jump-if-zero to t      (a -- )   *branches on data!*
9      sub                    (a b -- a-b)
====== ====================== =========================
"""

from __future__ import annotations

from ..lang import measure

#: The FlowLang interpreter.  The TinyStack program arrives as public
#: input; TinyStack's `read` instruction pulls secret bytes.
INTERPRETER_SOURCE = '''
fn main() {
    var code: u8[256];
    var n: u32 = read_public(code, 256);
    var stack: u8[64];
    var sp: u32 = 0;
    var pc: u32 = 0;
    var running: bool = true;
    while (running) {
        var op: u8 = code[pc];
        pc = pc + 1;
        if (op == 0) {
            running = false;
        } else if (op == 1) {
            stack[sp] = code[pc];
            pc = pc + 1;
            sp = sp + 1;
        } else if (op == 2) {
            stack[sp] = secret_u8();
            sp = sp + 1;
        } else if (op == 3) {
            sp = sp - 1;
            output(stack[sp]);
        } else if (op == 4) {
            sp = sp - 1;
            stack[sp - 1] = stack[sp - 1] + stack[sp];
        } else if (op == 5) {
            sp = sp - 1;
            stack[sp - 1] = stack[sp - 1] & stack[sp];
        } else if (op == 6) {
            sp = sp - 1;
            stack[sp - 1] = stack[sp - 1] ^ stack[sp];
        } else if (op == 7) {
            stack[sp] = stack[sp - 1];
            sp = sp + 1;
        } else if (op == 8) {
            sp = sp - 1;
            if (stack[sp] == 0) {
                pc = u32(code[pc]);
            } else {
                pc = pc + 1;
            }
        } else if (op == 9) {
            sp = sp - 1;
            stack[sp - 1] = stack[sp - 1] - stack[sp];
        } else {
            running = false;
        }
    }
}
'''

HALT, PUSH, READ, OUT, ADD, AND, XOR, DUP, JZ, SUB = range(10)


def assemble(*instructions):
    """Flatten an instruction sequence into TinyStack bytecode."""
    code = []
    for instr in instructions:
        if isinstance(instr, (list, tuple)):
            code.extend(instr)
        else:
            code.append(instr)
    return bytes(code)


def run_tinystack(program, secret_input, **kwargs):
    """Interpret a TinyStack program under full flow measurement.

    Returns the FlowLang :class:`~repro.lang.runner.RunResult`: the
    measured bits are what the *interpreted* program reveals about the
    secret bytes it read.
    """
    return measure(INTERPRETER_SOURCE, secret_input=secret_input,
                   public_input=program, **kwargs)


#: Ready-made interpreted programs for tests/examples.
PROGRAMS = {
    # read a secret byte and print it outright: 8 bits
    "leak_byte": assemble(READ, OUT, HALT),
    # print only the low nibble: 4 bits
    "mask_low": assemble(READ, (PUSH, 0x0F), AND, OUT, HALT),
    # xor with a constant: still all 8 bits
    "xor_mask": assemble(READ, (PUSH, 0x5A), XOR, OUT, HALT),
    # read a secret, print constant 1 if it was zero, else 7: 1 bit
    "one_bit": assemble(READ, (JZ, 7), (PUSH, 7), OUT, HALT,
                        (PUSH, 1), OUT, HALT),
    # read two secrets, print their sum: 8 bits (one byte out)
    "sum": assemble(READ, READ, ADD, OUT, HALT),
    # read a secret but never output anything: 0 bits
    "ignore": assemble(READ, HALT),
}
