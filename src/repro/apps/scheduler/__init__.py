"""§8.4 case study: appointment scheduling free/busy grid."""

from .calendar import (NUM_SLOTS, SLOT_MINUTES, WINDOW_END, WINDOW_START,
                       Appointment, busy_grid, load_calendar,
                       measure_meeting_request, quantize_appointment,
                       render_grid)

__all__ = [
    "NUM_SLOTS", "SLOT_MINUTES", "WINDOW_END", "WINDOW_START",
    "Appointment", "busy_grid", "load_calendar",
    "measure_meeting_request", "quantize_appointment", "render_grid",
]
