"""§8.4 case study: the groupware appointment grid.

A meeting-request feature: given a target user's (secret) appointment
list and a proposal window, display an 18-square half-hour free/busy
grid for a 9:00-18:00 working day.  Appointment boundaries must not be
revealed beyond the half-hour granularity.

The information structure mirrors the paper's (post-fix) OpenGroupware
code: per appointment, the intersection computation quantizes the start
and end to half-hour slot numbers -- two small tracked values plus the
window-clamping branches -- and everything downstream (the 18 busy
bits) derives from them.  The tool therefore finds two sound cuts: one
at the quantized slot values (more precise for few appointments), one
at the 18-square display (more precise for many), the paper's §8.4
observation.
"""

from __future__ import annotations

from ...pytrace import Session, concrete_of

#: Working-day window: 9:00 to 18:00, in minutes since midnight.
WINDOW_START = 9 * 60
WINDOW_END = 18 * 60
SLOT_MINUTES = 30
NUM_SLOTS = (WINDOW_END - WINDOW_START) // SLOT_MINUTES  # 18

#: Slot numbers fit in 5 bits (0..18 after clamping).
SLOT_MASK = 0x1F


class Appointment:
    """One calendar entry with tracked start/end times (minutes)."""

    def __init__(self, session, start_minute, end_minute, index):
        self.start = session.secret_int(start_minute, width=16,
                                        name="appt%d.start" % index)
        self.end = session.secret_int(end_minute, width=16,
                                      name="appt%d.end" % index)


def load_calendar(session, appointments):
    """Mark a list of (start_minute, end_minute) pairs as secret."""
    return [Appointment(session, s, e, i)
            for i, (s, e) in enumerate(appointments)]


def quantize_appointment(session, appointment):
    """Quantize one appointment to clamped slot numbers.

    Returns tracked ``(first_slot, end_slot)``; this is the paper's
    fixed intersection computation, working at the display's half-hour
    granularity.  The enclosure region absorbs the clamping branches;
    the two 5-bit outputs are the precise cut for a single appointment.
    """
    with session.enclose("quantize") as region:
        # The session's arithmetic is unsigned: clamp *before* the
        # subtraction can underflow for appointments outside the window.
        if appointment.start < WINDOW_START:
            start_clamped = WINDOW_START
        else:
            start_clamped = appointment.start
        if appointment.end < WINDOW_START:
            end_clamped = WINDOW_START
        else:
            end_clamped = appointment.end
        first = ((start_clamped - WINDOW_START) // SLOT_MINUTES) & SLOT_MASK
        end = ((end_clamped - WINDOW_START + SLOT_MINUTES - 1)
               // SLOT_MINUTES) & SLOT_MASK
        if appointment.start > WINDOW_END:
            first = NUM_SLOTS
        if appointment.end > WINDOW_END:
            end = NUM_SLOTS
    first = region.wrap(first, width=5, name="first_slot")
    end = region.wrap(end, width=5, name="end_slot")
    return first, end


def busy_grid(session, calendar):
    """The 18-square free/busy grid (tracked 1-bit flags)."""
    grid = [0] * NUM_SLOTS
    for appointment in calendar:
        first, end = quantize_appointment(session, appointment)
        with session.enclose("mark") as region:
            for slot in range(NUM_SLOTS):
                occupied = (first <= slot) and (slot < end)
                if occupied:
                    grid[slot] = 1
        grid = region.wrap_all(grid, width=1, name="grid")
    return grid


def render_grid(session, grid):
    """Send the grid to the requesting user: one output per square."""
    for slot, flag in enumerate(grid):
        session.output(flag, name="square")
    return "".join("#" if concrete_of(f) else "." for f in grid)


def measure_meeting_request(appointments, collapse="none"):
    """Full flow: secret calendar -> grid display; returns the report.

    ``appointments``: list of (start_minute, end_minute).
    """
    session = Session()
    calendar = load_calendar(session, appointments)
    grid = busy_grid(session, calendar)
    rendered = render_grid(session, grid)
    report = session.measure(collapse=collapse)
    return report, rendered
