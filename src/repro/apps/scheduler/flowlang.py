"""The §8.4 scheduler in FlowLang: cross-frontend validation.

The same meeting-request computation as :mod:`.calendar`, but written
in FlowLang and executed on the instrumented VM.  The two frontends
share nothing except the measurement core, so agreement on the measured
bounds (10 bits for one appointment, 18 at the display crossover) is a
strong end-to-end check.

Secret input wire format: per appointment, start and end minutes as
little-endian u16 (``secret_u16()`` reads).  The appointment count is
public input (one byte).
"""

from __future__ import annotations

from ...lang import measure as lang_measure

FLOWLANG_SOURCE = '''
/* 9:00-18:00 working day, 18 half-hour slots. */

fn quantize(t: u16, round_up: u16): u8 {
    var slot: u8 = 0;
    enclose (slot) {
        var clamped: u16 = t;
        if (clamped < 540) { clamped = 540; }
        slot = u8(((clamped - 540) + round_up) / 30) & 0x1F;
        if (t > 1080) { slot = 18; }
    }
    return slot;
}

fn main() {
    /* bool squares: one bit of capacity each, like the real display. */
    var grid: bool[18];
    var count: u32 = u32(input_u8());
    var a: u32 = 0;
    while (a < count) {
        var start: u16 = secret_u16();
        var end: u16 = secret_u16();
        var first: u8 = quantize(start, 0);
        var last: u8 = quantize(end, 29);
        enclose (grid[..]) {
            var s: u8 = 0;
            while (s < 18) {
                if (first <= s && s < last) {
                    grid[u32(s)] = true;
                }
                s = s + 1;
            }
        }
        a = a + 1;
    }
    var out: u32 = 0;
    while (out < 18) {
        output(grid[out]);
        out = out + 1;
    }
}
'''


def encode_appointments(appointments):
    """Little-endian u16 pairs for the secret input stream."""
    data = bytearray()
    for start, end in appointments:
        data += int(start).to_bytes(2, "little")
        data += int(end).to_bytes(2, "little")
    return bytes(data)


def measure_flowlang_scheduler(appointments, collapse="none"):
    """Run the FlowLang scheduler; returns ``(report, grid_string)``."""
    result = lang_measure(
        FLOWLANG_SOURCE,
        secret_input=encode_appointments(appointments),
        public_input=bytes([len(appointments)]),
        collapse=collapse)
    grid = "".join("#" if b else "." for b in result.output_bytes)
    return result.report, grid
