"""The running example of Figure 2 / Section 2.4: count_punct.

Prints all the "."s or "?"s, whichever is more common.  Provided in
both frontends -- as FlowLang source (analyzed by the instrumented VM)
and as Python against the pytrace frontend -- with measurement helpers
reproducing the paper's numbers: 9 bits revealed for an input with 8
dots, a min cut of {1-bit comparison, 8-bit count}, a 64-bit tainting
bound, and much larger flows without the enclosure annotations.
"""

from __future__ import annotations

from ..lang import measure as lang_measure
from ..pytrace import Session

#: The Figure 2 program, transliterated to FlowLang.
FLOWLANG_SOURCE = '''
/* Print all the "."s or "?"s, whichever is more common. */

fn count_punct(buf: u8[], n: u32) {
    var num_dot: u8 = 0;
    var num_qm: u8 = 0;
    var common: u8 = 0;
    var num: u8 = 0;
    enclose (num_dot, num_qm) {
        var i: u32 = 0;
        while (i < n) {
            if (buf[i] == '.') {
                num_dot = num_dot + 1;
            } else if (buf[i] == '?') {
                num_qm = num_qm + 1;
            }
            i = i + 1;
        }
    }
    enclose (common, num) {
        if (num_dot > num_qm) {
            /* "."s were more common. */
            common = '.';
            num = num_dot;
        } else {
            /* "?"s were more common. */
            common = '?';
            num = num_qm;
        }
    }
    /* print "num" copies of "common". */
    while (num != 0) {
        print_char(common);
        num = num - 1;
    }
}

fn main() {
    var buf: u8[4096];
    var n: u32 = read_secret(buf, 4096);
    count_punct(buf, n);
}
'''

#: An input with the paper's proportions: 8 dots, 4 question marks
#: (running the tool on the program's own source has the same ratio).
PAPER_INPUT = b"........????"


def count_punct_python(session, text):
    """The same program against the Python frontend."""
    data = session.secret_bytes(text, name="buf")
    with session.enclose("scan") as scan:
        num_dot = 0
        num_qm = 0
        for byte in data:
            if byte == ord("."):
                num_dot = (num_dot + 1) & 0xFF
            elif byte == ord("?"):
                num_qm = (num_qm + 1) & 0xFF
    num_dot = scan.wrap(num_dot, width=8, name="num_dot")
    num_qm = scan.wrap(num_qm, width=8, name="num_qm")
    with session.enclose("pick") as pick:
        if num_dot > num_qm:
            common, num = ord("."), num_dot
        else:
            common, num = ord("?"), num_qm
    common = pick.wrap(common, width=8, name="common")
    num = pick.wrap(num, width=8, name="num")
    while num != 0:
        session.output(common, name="print")
        num = (num - 1) & 0xFF


def measure_flowlang(text=PAPER_INPUT, **kwargs):
    """Measure the FlowLang version on ``text``; returns a RunResult."""
    return lang_measure(FLOWLANG_SOURCE, secret_input=text, **kwargs)


def measure_python(text=PAPER_INPUT, collapse="context"):
    """Measure the Python version on ``text``; returns a FlowReport."""
    session = Session()
    count_punct_python(session, text)
    return session.measure(collapse=collapse)
