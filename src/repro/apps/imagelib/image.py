"""Raster images over (optionally tracked) pixel data (§8.3).

A minimal RGB raster with 8-bit channels, PPM serialization, and a
synthetic "portrait" generator so the case study needs no image files.
When loaded as secret, every channel byte is a tracked value; geometry
(width/height) stays public, mirroring the analysis granularity we can
afford (the paper additionally marked the header secret, adding a small
constant number of bits to its totals).
"""

from __future__ import annotations

import math

from ...pytrace import concrete_of


class Raster:
    """An RGB image: ``pixels[y][x]`` is an (r, g, b) tuple."""

    def __init__(self, width, height, pixels=None):
        self.width = width
        self.height = height
        if pixels is None:
            pixels = [[(0, 0, 0) for _ in range(width)]
                      for _ in range(height)]
        self.pixels = pixels

    @property
    def channel_count(self):
        return self.width * self.height * 3

    @property
    def data_bits(self):
        """Total pixel-data bits (8 per channel)."""
        return 8 * self.channel_count

    def get(self, x, y):
        return self.pixels[y][x]

    def set(self, x, y, rgb):
        self.pixels[y][x] = rgb

    def map_channels(self, fn):
        """A new raster with ``fn`` applied to every channel value."""
        out = Raster(self.width, self.height)
        for y in range(self.height):
            for x in range(self.width):
                r, g, b = self.pixels[y][x]
                out.pixels[y][x] = (fn(r), fn(g), fn(b))
        return out

    def concrete(self):
        """A plain-int copy (drops tracking; for display/tests)."""
        return self.map_channels(concrete_of)

    def to_ppm(self):
        """Serialize to binary PPM (P6); header public, data as given.

        Returns ``(header_bytes, data_values)`` -- the data is a flat
        list of channel values that may be tracked.
        """
        header = ("P6\n%d %d\n255\n" % (self.width, self.height)).encode()
        data = []
        for y in range(self.height):
            for x in range(self.width):
                data.extend(self.pixels[y][x])
        return header, data


def synthetic_portrait(size=25):
    """A deterministic test 'photo': gradient background + face blob.

    Structured (compressible, recognizable) content so that transform
    comparisons are meaningful.
    """
    image = Raster(size, size)
    cx = cy = (size - 1) / 2.0
    for y in range(size):
        for x in range(size):
            r = (x * 255) // max(size - 1, 1)
            g = (y * 255) // max(size - 1, 1)
            b = ((x + y) * 255) // max(2 * (size - 1), 1)
            distance = math.hypot(x - cx, y - cy)
            if distance < size * 0.3:
                r, g, b = 224, 172, 105  # the "face"
                if distance > size * 0.25:
                    r, g, b = 96, 64, 32  # outline
            image.pixels[y][x] = (r, g, b)
    return image


def load_secret(session, image):
    """A tracked copy of ``image``: every channel byte becomes secret."""
    out = Raster(image.width, image.height)
    for y in range(image.height):
        row_values = []
        for x in range(image.width):
            row_values.extend(image.pixels[y][x])
        tracked = session.secret_bytes(bytes(row_values),
                                       name="row%d" % y)
        for x in range(image.width):
            out.pixels[y][x] = tuple(tracked[3 * x:3 * x + 3])
    return out
