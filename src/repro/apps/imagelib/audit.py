"""Figure 5 measurements: how much of the original image survives?

Each transform is measured end-to-end: load the image as secret,
transform, serialize to PPM, output.  The paper's expectation (scaled
to our raster size): pixelate and blur reveal roughly the intermediate
form's bits, while swirl's bound equals the full image size.
"""

from __future__ import annotations

from ...pytrace import Session
from .image import Raster, load_secret, synthetic_portrait
from .transforms import blur, pixelate, swirl


class TransformAudit:
    """Measured information revealed by one transform."""

    def __init__(self, name, report, input_bits, intermediate_bits):
        self.name = name
        self.report = report
        self.input_bits = input_bits
        self.intermediate_bits = intermediate_bits

    @property
    def bits(self):
        return self.report.bits

    def __repr__(self):
        return "TransformAudit(%s: %d of %d input bits)" % (
            self.name, self.bits, self.input_bits)


def measure_transform(name, image=None, grid=5, degrees=720.0,
                      collapse="none"):
    """Measure one of ``pixelate``/``blur``/``swirl``/``identity``.

    Measured uncollapsed by default: these graphs are small, and
    location-collapsing merges the per-value node capacities that form
    the pixelate/blur bottleneck (the precision loss Section 5.2 warns
    about), inflating the bound while remaining sound.
    """
    base = image if image is not None else synthetic_portrait()
    session = Session()
    secret = load_secret(session, base)
    if name == "pixelate":
        result = pixelate(secret, grid)
    elif name == "blur":
        result = blur(secret, grid)
    elif name == "swirl":
        result = swirl(secret, degrees)
    elif name == "identity":
        result = secret
    else:
        raise ValueError("unknown transform %r" % name)
    header, data = result.to_ppm()
    session.output_bytes(list(header), name="ppm-header")
    session.output_bytes(data, name="ppm-data")
    report = session.measure(collapse=collapse)
    intermediate_bits = 8 * grid * grid * 3 if name in ("pixelate", "blur") \
        else None
    return TransformAudit(name, report, base.data_bits, intermediate_bits)


def measure_all(image=None, grid=5, degrees=720.0):
    """Measure the three Figure 5 transforms; returns a dict by name."""
    return {name: measure_transform(name, image=image, grid=grid,
                                    degrees=degrees)
            for name in ("pixelate", "blur", "swirl")}
