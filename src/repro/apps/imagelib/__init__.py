"""§8.3 case study: image transformations (Figure 5)."""

from .image import Raster, load_secret, synthetic_portrait
from .transforms import (bilinear_resize, blur, box_resize, pixelate,
                         sample_resize, swirl)
from .audit import TransformAudit, measure_all, measure_transform

__all__ = [
    "Raster", "load_secret", "synthetic_portrait",
    "bilinear_resize", "blur", "box_resize", "pixelate", "sample_resize",
    "swirl",
    "TransformAudit", "measure_all", "measure_transform",
]
