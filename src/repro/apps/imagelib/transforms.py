"""The Figure 5 transforms: pixelate, blur, swirl.

* ``pixelate(image, n)``: shrink to an n x n intermediate by sampling,
  then enlarge back -- information is bottlenecked at the intermediate
  form (ImageMagick's ``-sample 5x5 -sample 125x125``);
* ``blur(image, n)``: shrink by *box averaging* then enlarge with
  bilinear interpolation (``-resize 5x5 -resize 125x125``) -- the same
  bottleneck, slightly different arithmetic;
* ``swirl(image, degrees)``: rotate pixels around the center by an
  angle falling off with radius, sampling bilinearly -- a continuous,
  near-invertible transformation with *no* bottleneck: the flow bound
  equals the image size.

All arithmetic runs over possibly-tracked channel values; geometry and
trigonometry use public floats (coordinates are public).
"""

from __future__ import annotations

import math

from .image import Raster


def sample_resize(image, new_width, new_height):
    """Nearest-neighbor resize (ImageMagick ``-sample``)."""
    out = Raster(new_width, new_height)
    for y in range(new_height):
        src_y = (y * image.height) // new_height
        for x in range(new_width):
            src_x = (x * image.width) // new_width
            out.pixels[y][x] = image.pixels[src_y][src_x]
    return out


def box_resize(image, new_width, new_height):
    """Box-filter downscale (averages whole source blocks)."""
    out = Raster(new_width, new_height)
    for y in range(new_height):
        y0 = (y * image.height) // new_height
        y1 = max(((y + 1) * image.height) // new_height, y0 + 1)
        for x in range(new_width):
            x0 = (x * image.width) // new_width
            x1 = max(((x + 1) * image.width) // new_width, x0 + 1)
            count = (y1 - y0) * (x1 - x0)
            sums = [0, 0, 0]
            for sy in range(y0, y1):
                for sx in range(x0, x1):
                    pixel = image.pixels[sy][sx]
                    for c in range(3):
                        # Plain 0 + tracked byte adopts a width that
                        # grows with the operands; the final division
                        # and mask keep the result an 8-bit channel.
                        sums[c] = sums[c] + pixel[c]
            out.pixels[y][x] = tuple((sums[c] // count) & 0xFF
                                     for c in range(3))
    return out


def bilinear_resize(image, new_width, new_height):
    """Bilinear upscale with 8-bit fixed-point weights."""
    out = Raster(new_width, new_height)
    for y in range(new_height):
        fy = y * (image.height - 1) / max(new_height - 1, 1)
        y0 = int(fy)
        y1 = min(y0 + 1, image.height - 1)
        wy = int((fy - y0) * 256)
        for x in range(new_width):
            fx = x * (image.width - 1) / max(new_width - 1, 1)
            x0 = int(fx)
            x1 = min(x0 + 1, image.width - 1)
            wx = int((fx - x0) * 256)
            out.pixels[y][x] = _bilinear_sample(
                image, x0, y0, x1, y1, wx, wy)
    return out


def _bilinear_sample(image, x0, y0, x1, y1, wx, wy):
    p00 = image.pixels[y0][x0]
    p10 = image.pixels[y0][x1]
    p01 = image.pixels[y1][x0]
    p11 = image.pixels[y1][x1]
    result = []
    for c in range(3):
        top = (p00[c] * (256 - wx) + p10[c] * wx) >> 8
        bottom = (p01[c] * (256 - wx) + p11[c] * wx) >> 8
        value = ((top * (256 - wy) + bottom * wy) >> 8) & 0xFF
        result.append(value)
    return tuple(result)


def pixelate(image, grid=5):
    """Figure 5 left: sample down to ``grid`` x ``grid``, sample back up."""
    small = sample_resize(image, grid, grid)
    return sample_resize(small, image.width, image.height)


def blur(image, grid=5):
    """Figure 5 middle: box-average down, bilinear back up."""
    small = box_resize(image, grid, grid)
    return bilinear_resize(small, image.width, image.height)


def swirl(image, degrees=720.0):
    """Figure 5 right: twist around the center, bilinear sampling.

    Inverse mapping: each output pixel samples the input at its
    position rotated by ``degrees * (1 - r/R)^2`` (ImageMagick's
    falloff), interpolating between the four neighbors.
    """
    out = Raster(image.width, image.height)
    cx = (image.width - 1) / 2.0
    cy = (image.height - 1) / 2.0
    radius = max(cx, cy) * math.sqrt(2.0)
    total = math.radians(degrees)
    for y in range(image.height):
        for x in range(image.width):
            dx = x - cx
            dy = y - cy
            r = math.hypot(dx, dy)
            if r >= radius:
                out.pixels[y][x] = image.pixels[y][x]
                continue
            factor = (1.0 - r / radius) ** 2
            angle = total * factor
            cos_a, sin_a = math.cos(angle), math.sin(angle)
            sx = cx + dx * cos_a - dy * sin_a
            sy = cy + dx * sin_a + dy * cos_a
            sx = min(max(sx, 0.0), image.width - 1.001)
            sy = min(max(sy, 0.0), image.height - 1.001)
            x0, y0 = int(sx), int(sy)
            x1 = min(x0 + 1, image.width - 1)
            y1 = min(y0 + 1, image.height - 1)
            wx = int((sx - x0) * 256)
            wy = int((sy - y0) * 256)
            out.pixels[y][x] = _bilinear_sample(
                image, x0, y0, x1, y1, wx, wy)
    return out
