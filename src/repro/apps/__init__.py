"""Case-study applications (Section 8) and the bzip2 workload (§5.3).

Each subpackage re-implements, against this library's tracked-value
frontend, the program analyzed in the corresponding case study of the
paper, together with an ``audit`` module that runs the paper's security
policy and returns the measured flows:

* :mod:`.countpunct`  -- the running example of Figure 2 / §2.4;
* :mod:`.battleship`  -- §8.1 KBattleship (with the shipTypeAt bug);
* :mod:`.sshauth`     -- §8.2 OpenSSH host authentication (toy RSA + MD5);
* :mod:`.imagelib`    -- §8.3 ImageMagick transforms (pixelate/blur/swirl);
* :mod:`.scheduler`   -- §8.4 OpenGroupware appointment grid;
* :mod:`.xserver`     -- §8.5 X server text drawing and cut-and-paste;
* :mod:`.bzip2`       -- §5.3 block-sorting compressor (Figure 3);
* :mod:`.pi`          -- the π-digits-in-English workload generator.
"""
