"""The Figure 3 workload: digits of pi written out in English words.

The paper compresses "the digits of pi, written out in English words,
as in 'three point one four one five nine'" -- a highly compressible
input whose size is easy to scale.  The digits come from a spigot
algorithm (Rabinowitz & Wagon, 1995), so the workload is reproducible
without any data files.
"""

from __future__ import annotations

_DIGIT_WORDS = ["zero", "one", "two", "three", "four", "five", "six",
                "seven", "eight", "nine"]


def pi_digits(count):
    """First ``count`` decimal digits of pi (3, 1, 4, 1, 5, ...).

    Implements the Rabinowitz-Wagon streaming spigot with the standard
    Gibbons formulation (exact integer arithmetic, no precision loss).
    """
    if count <= 0:
        return []
    digits = []
    q, r, t, k, n, l = 1, 0, 1, 1, 3, 3
    while len(digits) < count:
        if 4 * q + r - t < n * t:
            digits.append(n)
            q, r, t, k, n, l = (
                10 * q, 10 * (r - n * t), t, k,
                (10 * (3 * q + r)) // t - 10 * n, l)
        else:
            q, r, t, k, n, l = (
                q * k, (2 * q + r) * l, t * l, k + 1,
                (q * (7 * k + 2) + r * l) // (t * l), l + 2)
    return digits


def pi_in_english(num_digits):
    """Pi spelled out in words: ``b"three point one four one five ..."``.

    The first digit is followed by "point", mirroring the paper's
    example text.
    """
    digits = pi_digits(num_digits)
    words = []
    for i, digit in enumerate(digits):
        words.append(_DIGIT_WORDS[digit])
        if i == 0:
            words.append("point")
    return " ".join(words).encode("ascii")


def workload_of_size(num_bytes):
    """An English-pi byte string of exactly ``num_bytes`` bytes.

    Generates enough digits and truncates; about 4.4 characters per
    digit, so the digit count is padded generously.
    """
    if num_bytes <= 0:
        return b""
    digits = max(2, num_bytes // 3)
    text = pi_in_english(digits)
    while len(text) < num_bytes:
        digits *= 2
        text = pi_in_english(digits)
    return text[:num_bytes]
