"""Content-addressed shard store for corpus-scale combining.

The §3.2 multi-run combine turns per-run flow graphs into one
Kraft-sound corpus bound.  At millions of runs the interesting fact is
that most runs of the same program at the same coverage *collapse
identically* — so the corpus is tiny once content-addressed.  A
:class:`ShardStore` keeps each distinct collapsed ``flowgraph-v1``
shard exactly once on disk, keyed by its canonical digest
(:func:`~repro.graph.serialize.graph_digest`: SHA-256 over the
canonical text form, independent of the on-disk framing), and records
every put in an append-only manifest so the corpus is just an ordered
list of digests with multiplicities.

Layout under the store root::

    manifest            one digest per line, in put order (append-only)
    objects/<digest>.fgb    the shard, compact binary framing
    objects/<digest>.json   shard metadata (sizes, structural cut
                            capacities, dedup safety) for the
                            incremental Kraft accounting

Blob and metadata writes are atomic (unique temp file + ``os.replace``)
and idempotent, so pool workers may write intermediate merge results
into ``objects/`` concurrently; the *manifest* has a single writer —
the parent process that owns the corpus.  Manifest appends flush whole
lines, and manifest *rewrites* (recovery) go through a temp file +
``os.replace``, so a crash can tear at most the final line.

A torn or corrupt manifest line is **recovered**, not fatal: a
truncated line whose hex prefix matches exactly one shard blob under
``objects/`` is repaired to that digest; anything else is dropped
(the blob, if any, stays on disk — content addressing makes orphans
harmless).  The repaired manifest is rewritten atomically and the
store notes what happened on :attr:`ShardStore.recovered` (and as a
``store.recovered`` event), so a daemon restarting over a
kill-9-interrupted ingest reopens the corpus instead of raising.

Other corrupt store structure raises
:class:`~repro.errors.StoreError`; corrupt graph payloads keep raising
:class:`~repro.errors.GraphError`, exactly as every other loader in
the package.
"""

from __future__ import annotations

import io
import json
import os
import re

from . import obs
from .errors import StoreError
from .graph.collapse import dedup_safe
from .graph.serialize import (dump_graph_binary, dumps_graph,
                              load_graph, load_graph_binary, text_digest)

_DIGEST = re.compile(r"^[0-9a-f]{64}$")
_MANIFEST = "manifest"
_OBJECTS = "objects"


def _shard_meta(graph):
    """The per-shard metadata the combine layer needs without loading
    the blob: sizes for :class:`~repro.graph.collapse.CollapseStats`,
    structural cut capacities for
    :class:`~repro.core.combine.IncrementalKraft`, dedup safety for the
    multiplicity fold."""
    return {
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "source_cap": graph.source_capacity(),
        "sink_cap": graph.sink_capacity(),
        "dedup_safe_context": dedup_safe(graph, context_sensitive=True),
        "dedup_safe_location": dedup_safe(graph, context_sensitive=False),
    }


class ShardStore:
    """A content-addressed, dedup-ing, on-disk corpus of graph shards.

    ``put`` appends a run to the corpus (writing its blob only the
    first time its digest is seen); ``put_object`` writes a blob
    *without* a manifest entry, which the tree-reduction merge uses to
    pass intermediate combined graphs between workers by reference.
    All order-sensitive views (:meth:`order`, :meth:`multiplicities`)
    follow manifest order, so a store-backed combine can reproduce the
    plain fold's input order bit-for-bit.
    """

    def __init__(self, root, create=True):
        self._manifest_handle = None
        self.root = os.fspath(root)
        self._objects = os.path.join(self.root, _OBJECTS)
        self._manifest_path = os.path.join(self.root, _MANIFEST)
        if create:
            os.makedirs(self._objects, exist_ok=True)
        elif not os.path.isdir(self._objects):
            raise StoreError("not a shard store (no %s/ directory): %s"
                             % (_OBJECTS, self.root))
        self._order = []
        self._counts = {}
        #: ``{"repaired": n, "dropped": m}`` when opening this store had
        #: to recover from corrupt manifest lines, else ``None``.
        self.recovered = None
        if os.path.exists(self._manifest_path):
            self._load_manifest()

    # ------------------------------------------------------------------
    # Paths and manifest

    def _blob_path(self, digest):
        return os.path.join(self._objects, digest + ".fgb")

    def _meta_path(self, digest):
        return os.path.join(self._objects, digest + ".json")

    def _load_manifest(self):
        self._order = []
        self._counts = {}
        repaired = dropped = 0
        with open(self._manifest_path) as handle:
            for line in handle:
                digest = line.strip()
                if not digest:
                    continue
                if not _DIGEST.match(digest):
                    digest = self._recover_digest(digest)
                    if digest is None:
                        dropped += 1
                        continue
                    repaired += 1
                self._order.append(digest)
                self._counts[digest] = self._counts.get(digest, 0) + 1
        if repaired or dropped:
            # Rewrite the repaired manifest atomically so the damage is
            # healed on disk, not just in this process's view.
            tmp = "%s.tmp.%d" % (self._manifest_path, os.getpid())
            with open(tmp, "w") as handle:
                handle.write("".join(d + "\n" for d in self._order))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self._manifest_path)
            self.recovered = {"repaired": repaired, "dropped": dropped}
            obs.get_event_log().event("store.recovered",
                                      repaired=repaired, dropped=dropped,
                                      store=self.root)

    def _recover_digest(self, fragment):
        """Repair one malformed manifest line, if the evidence allows.

        A torn append leaves a *prefix* of a real digest; when that
        prefix is valid hex and matches exactly one blob under
        ``objects/``, the full digest is recovered.  Ambiguous or
        non-hex damage returns ``None`` (the line is dropped)."""
        fragment = fragment.lower()
        if not fragment or len(fragment) >= 64 \
                or not re.fullmatch(r"[0-9a-f]+", fragment):
            return None
        matches = [name[:-len(".fgb")] for name in os.listdir(self._objects)
                   if name.endswith(".fgb")
                   and name.startswith(fragment)
                   and _DIGEST.match(name[:-len(".fgb")])]
        if len(matches) == 1:
            return matches[0]
        return None

    def _append_manifest(self, digest):
        # One persistent append handle: a corpus ingest is put-per-run,
        # and reopening the manifest per put dominates the dedup-hit
        # fast path.  Flushed per line so concurrent *readers* (and a
        # crash) see only whole lines.
        if self._manifest_handle is None:
            self._manifest_handle = open(self._manifest_path, "a")
        self._manifest_handle.write(digest + "\n")
        self._manifest_handle.flush()
        self._order.append(digest)
        self._counts[digest] = self._counts.get(digest, 0) + 1

    def close(self):
        """Release the manifest append handle (reads stay valid)."""
        if self._manifest_handle is not None:
            self._manifest_handle.close()
            self._manifest_handle = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def __del__(self):
        self.close()

    # ------------------------------------------------------------------
    # Writing

    def _write_object(self, digest, graph, category_edges=None):
        """Atomically write blob + metadata; returns bytes written (0 on
        dedup)."""
        blob_path = self._blob_path(digest)
        if os.path.exists(blob_path):
            return 0
        tmp = "%s.tmp.%d" % (blob_path, os.getpid())
        with open(tmp, "wb") as handle:
            dump_graph_binary(graph, handle, category_edges=category_edges)
        size = os.path.getsize(tmp)
        meta_tmp = "%s.tmp.%d" % (self._meta_path(digest), os.getpid())
        with open(meta_tmp, "w") as handle:
            json.dump(_shard_meta(graph), handle, sort_keys=True)
        os.replace(meta_tmp, self._meta_path(digest))
        os.replace(tmp, blob_path)
        return size

    def put(self, graph, category_edges=None):
        """Append one run's shard to the corpus; returns its digest.

        Content-addressed: an already-seen graph writes nothing but its
        manifest line and bumps the multiplicity.
        """
        text = dumps_graph(graph, category_edges=category_edges)
        return self._put_common(text_digest(text), graph, category_edges)

    def put_text(self, text):
        """:meth:`put` for a shard already in canonical text form (as
        shipped home by batch workers).

        The graph is parsed (hardened loader: corrupt text raises
        :class:`~repro.errors.GraphError`) only when the digest is new;
        a dedup hit costs one hash and one manifest line.
        """
        digest = text_digest(text)
        graph = None
        if not os.path.exists(self._blob_path(digest)):
            graph = load_graph(io.StringIO(text))
        return self._put_common(digest, graph, None)

    def _put_common(self, digest, graph, category_edges):
        written = 0
        if graph is not None:
            written = self._write_object(digest, graph, category_edges)
        self._note_object(written, digest)
        self._append_manifest(digest)
        return digest

    def _note_object(self, written, digest):
        metrics = obs.get_metrics()
        if metrics.enabled:
            if written:
                metrics.incr("store.shards_written")
                metrics.incr("store.bytes", written)
            else:
                metrics.incr("store.dedup_hits")
        if not written:
            obs.get_event_log().event("store.dedup", digest=digest)

    def put_object(self, graph, category_edges=None):
        """Write a graph as a content-addressed object *without* adding
        it to the corpus; returns its digest.

        The tree-reduction merge stores each intermediate combined
        graph this way, so reduction levels exchange O(1) references
        instead of O(coverage) payloads — and identical subtree merges
        (common under heavy dedup) are written once.
        """
        digest = text_digest(dumps_graph(graph,
                                         category_edges=category_edges))
        written = self._write_object(digest, graph, category_edges)
        self._note_object(written, digest)
        return digest

    def put_object_text(self, text):
        """:meth:`put_object` for a shard already in canonical text form.

        Idempotent and manifest-free: the measurement service
        checkpoints each completed run's shard this way, with its own
        progress journal as the commit point, so a crash between the
        blob write and the journal append merely re-writes the same
        digest on resume — nothing is double-counted.  The text is
        parsed (hardened loader) only when the digest is new.
        """
        digest = text_digest(text)
        written = 0
        if not os.path.exists(self._blob_path(digest)):
            graph = load_graph(io.StringIO(text))
            written = self._write_object(digest, graph, None)
        self._note_object(written, digest)
        return digest

    # ------------------------------------------------------------------
    # Reading

    def has(self, digest):
        return os.path.exists(self._blob_path(digest))

    def get(self, digest, verify=False):
        """Load a stored shard.  ``verify=True`` re-derives the digest
        from the loaded graph and raises :class:`StoreError` on
        mismatch (bit-rot detection)."""
        path = self._blob_path(digest)
        try:
            with open(path, "rb") as handle:
                graph = load_graph_binary(handle)
        except FileNotFoundError:
            raise StoreError("no object %s in store %s"
                             % (digest, self.root)) from None
        if verify:
            actual = text_digest(dumps_graph(graph))
            if actual != digest:
                raise StoreError(
                    "object %s in store %s hashes to %s: blob corrupt"
                    % (digest, self.root, actual))
        return graph

    def meta(self, digest):
        """The shard's stored metadata dict (see module docstring)."""
        try:
            with open(self._meta_path(digest)) as handle:
                return json.load(handle)
        except FileNotFoundError:
            raise StoreError("no metadata for object %s in store %s"
                             % (digest, self.root)) from None
        except ValueError as error:
            raise StoreError("corrupt metadata for object %s: %s"
                             % (digest, error)) from None

    # ------------------------------------------------------------------
    # Corpus views

    def __len__(self):
        """Total runs in the corpus (manifest entries, with repeats)."""
        return len(self._order)

    @property
    def distinct(self):
        """Number of distinct shards in the corpus."""
        return len(self._counts)

    def order(self):
        """Every run's digest, in put order."""
        return list(self._order)

    def multiplicities(self):
        """``(digest, count)`` pairs in first-occurrence order.

        The dedup view of the corpus: combining these with
        ``collapse_graphs(..., multiplicities=...)`` is bit-identical
        to folding :meth:`order` literally whenever every shard is
        dedup-safe.
        """
        seen = {}
        for digest in self._order:
            if digest not in seen:
                seen[digest] = 0
            seen[digest] += 1
        return list(seen.items())

    def stats(self):
        """Summary dict for reports and the CLI."""
        size = 0
        for digest in self._counts:
            try:
                size += os.path.getsize(self._blob_path(digest))
            except OSError:
                pass
        return {"runs": len(self), "distinct": self.distinct,
                "bytes": size}
