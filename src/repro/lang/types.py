"""FlowLang's type system: fixed-width integers, bool, arrays.

Widths matter here more than in most languages: a value's declared
width is the capacity of its node in the flow graph, and the shadow
analysis tracks secrecy per bit of that width.
"""

from __future__ import annotations


class Type:
    """Base class for FlowLang types."""

    __slots__ = ()


class ScalarType(Type):
    """A fixed-width integer (or bool, width 1)."""

    __slots__ = ("name", "width", "signed")

    def __init__(self, name, width, signed):
        self.name = name
        self.width = width
        self.signed = signed

    @property
    def mask(self):
        return (1 << self.width) - 1

    @property
    def min_value(self):
        return -(1 << (self.width - 1)) if self.signed else 0

    @property
    def max_value(self):
        if self.signed:
            return (1 << (self.width - 1)) - 1
        return (1 << self.width) - 1

    def wrap(self, value):
        """Truncate a Python int to this type's representation."""
        return value & self.mask

    def to_signed(self, value):
        """Interpret a wrapped value according to signedness."""
        if not self.signed:
            return value
        sign = 1 << (self.width - 1)
        return (value & (sign - 1)) - (value & sign)

    def __eq__(self, other):
        return isinstance(other, ScalarType) and self.name == other.name

    def __hash__(self):
        return hash(self.name)

    def __repr__(self):
        return self.name


class ArrayType(Type):
    """An array of scalars; ``size`` is ``None`` for unsized parameters."""

    __slots__ = ("element", "size")

    def __init__(self, element, size):
        self.element = element
        self.size = size

    def __eq__(self, other):
        # Arrays are compatible when elements match; a sized array can be
        # passed where an unsized parameter is expected.
        return isinstance(other, ArrayType) and self.element == other.element

    def __hash__(self):
        return hash(("array", self.element))

    def __repr__(self):
        if self.size is None:
            return "%s[]" % self.element
        return "%s[%d]" % (self.element, self.size)


U8 = ScalarType("u8", 8, False)
U16 = ScalarType("u16", 16, False)
U32 = ScalarType("u32", 32, False)
I8 = ScalarType("i8", 8, True)
I16 = ScalarType("i16", 16, True)
I32 = ScalarType("i32", 32, True)
BOOL = ScalarType("bool", 1, False)
VOID = ScalarType("void", 0, False)

SCALARS = {t.name: t for t in (U8, U16, U32, I8, I16, I32, BOOL)}

#: Integer scalar types (bool excluded) -- the operand domain of
#: arithmetic, bitwise, and shift operators.
INTEGERS = frozenset([U8, U16, U32, I8, I16, I32])


def is_integer(type_):
    return isinstance(type_, ScalarType) and type_ in INTEGERS


def is_bool(type_):
    return type_ == BOOL


def is_array(type_):
    return isinstance(type_, ArrayType)
