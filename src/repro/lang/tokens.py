"""Token definitions for FlowLang.

FlowLang is the C-like source language this reproduction analyzes in
place of x86 binaries: its compiler lowers programs to a bytecode whose
execution produces exactly the event stream (operations, branches,
indexed accesses, I/O, enclosure annotations) that the paper's
Valgrind-based tool observes.
"""

from __future__ import annotations

KEYWORDS = frozenset([
    "fn", "var", "if", "else", "while", "for", "break", "continue",
    "return", "enclose", "true", "false",
    "u8", "u16", "u32", "i8", "i16", "i32", "bool", "void",
])

#: Multi-character operators, longest first so the lexer can greedy-match.
MULTI_OPS = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "..",
]

SINGLE_OPS = "+-*/%&|^~!<>=(){}[],;:"


class TokenType:
    """Token kinds (plain string constants; a class for namespacing)."""

    IDENT = "IDENT"
    NUMBER = "NUMBER"
    CHAR = "CHAR"
    STRING = "STRING"
    KEYWORD = "KEYWORD"
    OP = "OP"
    EOF = "EOF"


class Token:
    """A lexed token with its source position (1-based line/column)."""

    __slots__ = ("type", "value", "line", "column")

    def __init__(self, type_, value, line, column):
        self.type = type_
        self.value = value
        self.line = line
        self.column = column

    def is_op(self, text):
        return self.type == TokenType.OP and self.value == text

    def is_keyword(self, text):
        return self.type == TokenType.KEYWORD and self.value == text

    def __repr__(self):
        return "Token(%s, %r, %d:%d)" % (self.type, self.value,
                                         self.line, self.column)
