"""Lexer for FlowLang source text."""

from __future__ import annotations

from ..errors import LexError
from .tokens import KEYWORDS, MULTI_OPS, SINGLE_OPS, Token, TokenType

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
            "'": "'", '"': '"'}


class Lexer:
    """Converts source text to a token stream."""

    def __init__(self, source, filename="<source>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    def error(self, message):
        raise LexError(message, self.line, self.column)

    def _peek(self, offset=0):
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def _advance(self, count=1):
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _skip_trivia(self):
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    self.error("unterminated block comment")
            else:
                return

    def _lex_number(self):
        line, column = self.line, self.column
        start = self.pos
        hex_digits = "0123456789abcdefABCDEF"
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            ch = self._peek()
            if not (ch and ch in hex_digits):
                self.error("malformed hex literal")
            while True:
                ch = self._peek()
                if not (ch and ch in hex_digits):
                    break
                self._advance()
            value = int(self.source[start:self.pos], 16)
        else:
            while self._peek().isdigit():
                self._advance()
            if self._peek().isalpha() or self._peek() == "_":
                self.error("identifier cannot start with a digit")
            value = int(self.source[start:self.pos], 10)
        return Token(TokenType.NUMBER, value, line, column)

    def _lex_escape(self):
        self._advance()  # the backslash
        ch = self._peek()
        if ch == "x":
            self._advance()
            digits = self._peek() + self._peek(1)
            try:
                code = int(digits, 16)
            except ValueError:
                self.error("malformed \\x escape")
            self._advance(2)
            return chr(code)
        if ch not in _ESCAPES:
            self.error("unknown escape \\%s" % ch)
        self._advance()
        return _ESCAPES[ch]

    def _lex_char(self):
        line, column = self.line, self.column
        self._advance()  # opening quote
        if self._peek() == "\\":
            ch = self._lex_escape()
        elif self._peek() in ("", "\n"):
            self.error("unterminated character literal")
        else:
            ch = self._peek()
            self._advance()
        if self._peek() != "'":
            self.error("character literal must contain exactly one character")
        self._advance()
        return Token(TokenType.CHAR, ord(ch), line, column)

    def _lex_string(self):
        line, column = self.line, self.column
        self._advance()  # opening quote
        chars = []
        while True:
            ch = self._peek()
            if ch in ("", "\n"):
                self.error("unterminated string literal")
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                chars.append(self._lex_escape())
            else:
                chars.append(ch)
                self._advance()
        return Token(TokenType.STRING, "".join(chars), line, column)

    def _lex_word(self):
        line, column = self.line, self.column
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        word = self.source[start:self.pos]
        if word in KEYWORDS:
            return Token(TokenType.KEYWORD, word, line, column)
        return Token(TokenType.IDENT, word, line, column)

    def next_token(self):
        """Lex and return the next token (EOF at end of input)."""
        self._skip_trivia()
        if self.pos >= len(self.source):
            return Token(TokenType.EOF, None, self.line, self.column)
        ch = self._peek()
        if ch.isdigit():
            return self._lex_number()
        if ch.isalpha() or ch == "_":
            return self._lex_word()
        if ch == "'":
            return self._lex_char()
        if ch == '"':
            return self._lex_string()
        for op in MULTI_OPS:
            if self.source.startswith(op, self.pos):
                line, column = self.line, self.column
                self._advance(len(op))
                return Token(TokenType.OP, op, line, column)
        if ch in SINGLE_OPS:
            line, column = self.line, self.column
            self._advance()
            return Token(TokenType.OP, ch, line, column)
        self.error("unexpected character %r" % ch)

    def tokenize(self):
        """Lex the whole input; the final token is always EOF."""
        tokens = []
        while True:
            token = self.next_token()
            tokens.append(token)
            if token.type == TokenType.EOF:
                return tokens


def tokenize(source, filename="<source>"):
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source, filename).tokenize()
