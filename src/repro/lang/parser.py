"""Recursive-descent parser for FlowLang.

Grammar summary (see the package docstring for the language rationale)::

    program  := (func | global)*
    global   := "var" ident ":" type ["=" expr] ";"
    func     := "fn" ident "(" [param {"," param}] ")" [":" type] block
    type     := scalar | scalar "[" [number] "]"
    block    := "{" {stmt} "}"
    stmt     := vardecl | if | while | for | "break" ";" | "continue" ";"
              | return | enclose | block | assign-or-expr ";"
    enclose  := "enclose" "(" [output {"," output}] ")" block
    output   := ident ["[" ".." [expr] "]"]

Expression precedence, lowest to highest:
``||``  ``&&``  ``|``  ``^``  ``&``  equality  relational  shifts
additive  multiplicative  unary  postfix (call / index)  primary.

Note that ``&&`` and ``||`` are *strict* (non-short-circuit) boolean
operators in FlowLang: they evaluate both operands, so conditions never
hide extra branches and every implicit flow in a program is visible as
an explicit ``if``/``while`` test.
"""

from __future__ import annotations

from ..errors import ParseError
from . import ast
from .lexer import tokenize
from .tokens import TokenType

SCALAR_TYPES = frozenset(["u8", "u16", "u32", "i8", "i16", "i32", "bool"])

_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class Parser:
    """Parses a token stream into a :class:`~repro.lang.ast.Program`."""

    def __init__(self, tokens, filename="<source>"):
        self.tokens = tokens
        self.filename = filename
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers

    @property
    def current(self):
        return self.tokens[self.pos]

    def error(self, message, token=None):
        token = token or self.current
        raise ParseError(message, token.line, token.column)

    def advance(self):
        token = self.current
        if token.type != TokenType.EOF:
            self.pos += 1
        return token

    def expect_op(self, op):
        if not self.current.is_op(op):
            self.error("expected %r, found %r" % (op, self.current.value))
        return self.advance()

    def expect_keyword(self, word):
        if not self.current.is_keyword(word):
            self.error("expected %r, found %r" % (word, self.current.value))
        return self.advance()

    def expect_ident(self):
        if self.current.type != TokenType.IDENT:
            self.error("expected identifier, found %r" % (self.current.value,))
        return self.advance()

    def at_op(self, op):
        return self.current.is_op(op)

    def at_keyword(self, word):
        return self.current.is_keyword(word)

    # ------------------------------------------------------------------
    # Types

    def parse_type(self):
        token = self.current
        if token.type != TokenType.KEYWORD or token.value not in SCALAR_TYPES:
            self.error("expected a type name, found %r" % (token.value,))
        self.advance()
        scalar = ast.TypeName(token.value, token.line, token.column)
        if self.at_op("["):
            self.advance()
            size = None
            if self.current.type == TokenType.NUMBER:
                size = self.advance().value
            self.expect_op("]")
            return ast.ArrayTypeName(scalar, size, token.line, token.column)
        return scalar

    # ------------------------------------------------------------------
    # Expressions

    def parse_expr(self):
        return self._parse_binary(0)

    def _parse_binary(self, level):
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        ops = _BINARY_LEVELS[level]
        while self.current.type == TokenType.OP and self.current.value in ops:
            token = self.advance()
            right = self._parse_binary(level + 1)
            left = ast.Binary(token.value, left, right,
                              token.line, token.column)
        return left

    def _parse_unary(self):
        token = self.current
        if token.type == TokenType.OP and token.value in ("!", "~", "-"):
            self.advance()
            operand = self._parse_unary()
            return ast.Unary(token.value, operand, token.line, token.column)
        return self._parse_postfix()

    def _parse_postfix(self):
        expr = self._parse_primary()
        while True:
            if self.at_op("["):
                token = self.advance()
                index = self.parse_expr()
                self.expect_op("]")
                expr = ast.Index(expr, index, token.line, token.column)
            elif self.at_op("(") and isinstance(expr, ast.Name):
                expr = self._parse_call(expr)
            else:
                return expr

    def _parse_call(self, callee):
        token = self.expect_op("(")
        args = []
        if not self.at_op(")"):
            args.append(self.parse_expr())
            while self.at_op(","):
                self.advance()
                args.append(self.parse_expr())
        self.expect_op(")")
        if callee.ident == "len":
            if len(args) != 1:
                self.error("len() takes exactly one argument", token)
            return ast.ArrayLen(args[0], token.line, token.column)
        return ast.Call(callee.ident, args, callee.line, callee.column)

    def _parse_primary(self):
        token = self.current
        if token.type == TokenType.NUMBER or token.type == TokenType.CHAR:
            self.advance()
            return ast.NumberLit(token.value, token.line, token.column)
        if token.type == TokenType.STRING:
            self.advance()
            return ast.StringLit(token.value, token.line, token.column)
        if token.is_keyword("true") or token.is_keyword("false"):
            self.advance()
            return ast.BoolLit(token.value == "true", token.line, token.column)
        if token.type == TokenType.KEYWORD and token.value in SCALAR_TYPES:
            # A cast: u16(expr)
            self.advance()
            target = ast.TypeName(token.value, token.line, token.column)
            self.expect_op("(")
            operand = self.parse_expr()
            self.expect_op(")")
            return ast.Cast(target, operand, token.line, token.column)
        if token.type == TokenType.IDENT:
            self.advance()
            return ast.Name(token.value, token.line, token.column)
        if token.is_op("("):
            self.advance()
            expr = self.parse_expr()
            self.expect_op(")")
            return expr
        self.error("expected an expression, found %r" % (token.value,))

    # ------------------------------------------------------------------
    # Statements

    def parse_block(self):
        token = self.expect_op("{")
        statements = []
        while not self.at_op("}"):
            if self.current.type == TokenType.EOF:
                self.error("unterminated block (missing '}')", token)
            statements.append(self.parse_stmt())
        self.expect_op("}")
        return ast.Block(statements, token.line, token.column)

    def parse_stmt(self):
        token = self.current
        if token.is_keyword("var"):
            decl = self._parse_var_decl()
            self.expect_op(";")
            return decl
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("break"):
            self.advance()
            self.expect_op(";")
            return ast.Break(token.line, token.column)
        if token.is_keyword("continue"):
            self.advance()
            self.expect_op(";")
            return ast.Continue(token.line, token.column)
        if token.is_keyword("return"):
            self.advance()
            value = None
            if not self.at_op(";"):
                value = self.parse_expr()
            self.expect_op(";")
            return ast.Return(value, token.line, token.column)
        if token.is_keyword("enclose"):
            return self._parse_enclose()
        if token.is_op("{"):
            return self.parse_block()
        stmt = self._parse_assign_or_expr()
        self.expect_op(";")
        return stmt

    def _parse_var_decl(self):
        token = self.expect_keyword("var")
        name = self.expect_ident()
        self.expect_op(":")
        type_name = self.parse_type()
        init = None
        if self.at_op("="):
            self.advance()
            init = self.parse_expr()
        return ast.VarDecl(name.value, type_name, init,
                           token.line, token.column)

    def _parse_assign_or_expr(self):
        token = self.current
        expr = self.parse_expr()
        if self.at_op("="):
            if not isinstance(expr, (ast.Name, ast.Index)):
                self.error("cannot assign to this expression", token)
            self.advance()
            value = self.parse_expr()
            return ast.Assign(expr, value, token.line, token.column)
        return ast.ExprStmt(expr, token.line, token.column)

    def _parse_if(self):
        token = self.expect_keyword("if")
        self.expect_op("(")
        cond = self.parse_expr()
        self.expect_op(")")
        then_body = self.parse_block()
        else_body = None
        if self.at_keyword("else"):
            self.advance()
            if self.at_keyword("if"):
                nested = self._parse_if()
                else_body = ast.Block([nested], nested.line, nested.column)
            else:
                else_body = self.parse_block()
        return ast.If(cond, then_body, else_body, token.line, token.column)

    def _parse_while(self):
        token = self.expect_keyword("while")
        self.expect_op("(")
        cond = self.parse_expr()
        self.expect_op(")")
        body = self.parse_block()
        return ast.While(cond, body, token.line, token.column)

    def _parse_for(self):
        token = self.expect_keyword("for")
        self.expect_op("(")
        init = None
        if not self.at_op(";"):
            if self.at_keyword("var"):
                init = self._parse_var_decl()
            else:
                init = self._parse_assign_or_expr()
        self.expect_op(";")
        cond = None
        if not self.at_op(";"):
            cond = self.parse_expr()
        self.expect_op(";")
        step = None
        if not self.at_op(")"):
            step = self._parse_assign_or_expr()
        self.expect_op(")")
        body = self.parse_block()
        return ast.For(init, cond, step, body, token.line, token.column)

    def _parse_enclose(self):
        token = self.expect_keyword("enclose")
        self.expect_op("(")
        outputs = []
        if not self.at_op(")"):
            outputs.append(self._parse_enclose_output())
            while self.at_op(","):
                self.advance()
                outputs.append(self._parse_enclose_output())
        self.expect_op(")")
        body = self.parse_block()
        return ast.Enclose(outputs, body, token.line, token.column)

    def _parse_enclose_output(self):
        name = self.expect_ident()
        whole = False
        length = None
        if self.at_op("["):
            self.advance()
            self.expect_op("..")
            whole = True
            if not self.at_op("]"):
                length = self.parse_expr()
                whole = False
            self.expect_op("]")
        return ast.EncloseOutput(name.value, whole, length,
                                 name.line, name.column)

    # ------------------------------------------------------------------
    # Declarations

    def parse_program(self):
        globals_ = []
        functions = []
        while self.current.type != TokenType.EOF:
            token = self.current
            if token.is_keyword("var"):
                decl = self._parse_var_decl()
                self.expect_op(";")
                globals_.append(ast.GlobalDecl(decl, decl.line, decl.column))
            elif token.is_keyword("fn"):
                functions.append(self._parse_function())
            else:
                self.error("expected 'fn' or 'var' at top level, found %r"
                           % (token.value,))
        return ast.Program(globals_, functions, self.filename)

    def _parse_function(self):
        token = self.expect_keyword("fn")
        name = self.expect_ident()
        self.expect_op("(")
        params = []
        if not self.at_op(")"):
            params.append(self._parse_param())
            while self.at_op(","):
                self.advance()
                params.append(self._parse_param())
        self.expect_op(")")
        return_type = None
        if self.at_op(":"):
            self.advance()
            return_type = self.parse_type()
        body = self.parse_block()
        return ast.FuncDecl(name.value, params, return_type, body,
                            token.line, token.column)

    def _parse_param(self):
        name = self.expect_ident()
        self.expect_op(":")
        type_name = self.parse_type()
        return ast.Param(name.value, type_name, name.line, name.column)


def parse(source, filename="<source>"):
    """Parse FlowLang ``source`` into a :class:`~repro.lang.ast.Program`."""
    return Parser(tokenize(source, filename), filename).parse_program()
