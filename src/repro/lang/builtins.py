"""FlowLang builtins: the program's I/O and annotation surface.

Builtins are how FlowLang programs touch the analysis: secret/public
input, public output, and declassification.  Each builtin bundles its
type-checking rule with its VM implementation, so adding one is a single
registration here.

I/O model (mirroring the paper's treatment of ``read``/``write`` system
calls): the VM is given a *secret input* byte stream and a *public
input* byte stream; ``output``/``output_bytes``/``print_char`` append to
the public output and emit output events to the tracker.
"""

from __future__ import annotations

from ..errors import TypeCheckError, VMError
from . import types as T


class Builtin:
    """A builtin function: a type rule plus a VM implementation.

    ``check(checker, call) -> Type`` validates and annotates the call;
    ``execute(vm, call_loc, args) -> TV or None`` runs it (``args`` are
    evaluated TVs, except array arguments which arrive as array
    references).
    """

    __slots__ = ("name", "check", "execute")

    def __init__(self, name, check, execute):
        self.name = name
        self.check = check
        self.execute = execute


def _expect_args(call, count):
    if len(call.args) != count:
        raise TypeCheckError("%s() takes %d argument(s), got %d"
                             % (call.name, count, len(call.args)),
                             call.line, call.column)


def _check_array_and_len(checker, call):
    _expect_args(call, 2)
    array_type = checker.check_array_arg(call.args[0], call)
    if array_type.element != T.U8:
        raise TypeCheckError("%s() needs a u8 array" % call.name,
                             call.line, call.column)
    checker.check_expr(call.args[1], T.U32)
    return T.U32


def _check_scalar_input(return_type):
    def check(checker, call):
        _expect_args(call, 0)
        return return_type
    return check


def _check_output(checker, call):
    _expect_args(call, 1)
    arg_type = checker.check_expr(call.args[0], None)
    if not (T.is_integer(arg_type) or T.is_bool(arg_type)):
        raise TypeCheckError("output() takes a scalar value",
                             call.line, call.column)
    return T.VOID


def _check_print_char(checker, call):
    _expect_args(call, 1)
    checker.check_expr(call.args[0], T.U8)
    return T.VOID


def _check_declassify(checker, call):
    _expect_args(call, 1)
    arg_type = checker.check_expr(call.args[0], None)
    if not (T.is_integer(arg_type) or T.is_bool(arg_type)):
        raise TypeCheckError("declassify() takes a scalar value",
                             call.line, call.column)
    return arg_type


def _check_check(checker, call):
    _expect_args(call, 1)
    checker.check_expr(call.args[0], T.BOOL)
    return T.VOID


# ----------------------------------------------------------------------
# VM implementations.  ``vm`` exposes: tracker, secret_input,
# public_input, outputs, read_secret_bytes(), etc.  TVs are
# (value, mask, prov) triples.

def _exec_read(secret):
    def execute(vm, loc, args):
        array_ref, max_tv = args
        return vm.read_into_array(loc, array_ref, max_tv[0], secret=secret)
    return execute


def _exec_scalar_read(width, secret):
    def execute(vm, loc, args):
        return vm.read_scalar(loc, width, secret=secret)
    return execute


def _exec_output(vm, loc, args):
    vm.write_output(loc, args[0])
    return None


def _exec_output_bytes(vm, loc, args):
    array_ref, count_tv = args
    vm.write_output_array(loc, array_ref, count_tv[0])
    return None


def _exec_declassify(vm, loc, args):
    value, _mask, prov = args[0]
    return (value, 0, vm.tracker.declassify(prov))


def _exec_check(vm, loc, args):
    if not args[0][0]:
        raise VMError("check() failed", loc)
    return None


BUILTINS = {}


def _register(name, check, execute):
    BUILTINS[name] = Builtin(name, check, execute)


_register("read_secret", _check_array_and_len, _exec_read(secret=True))
_register("read_public", _check_array_and_len, _exec_read(secret=False))
_register("secret_u8", _check_scalar_input(T.U8), _exec_scalar_read(8, True))
_register("secret_u16", _check_scalar_input(T.U16), _exec_scalar_read(16, True))
_register("secret_u32", _check_scalar_input(T.U32), _exec_scalar_read(32, True))
_register("input_u8", _check_scalar_input(T.U8), _exec_scalar_read(8, False))
_register("input_u32", _check_scalar_input(T.U32), _exec_scalar_read(32, False))
def _check_output_bytes(checker, call):
    _check_array_and_len(checker, call)
    return T.VOID


_register("output", _check_output, _exec_output)
_register("output_bytes", _check_output_bytes, _exec_output_bytes)
_register("print_char", _check_print_char, _exec_output)
_register("declassify", _check_declassify, _exec_declassify)
_register("check", _check_check, _exec_check)
