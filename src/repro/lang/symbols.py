"""Symbol tables for FlowLang's checker and compiler."""

from __future__ import annotations

from ..errors import TypeCheckError


class Symbol:
    """A declared name: variable, parameter, global, or function.

    Variables and parameters get frame ``slot`` numbers from the
    compiler; globals get global indices.
    """

    KIND_LOCAL = "local"
    KIND_PARAM = "param"
    KIND_GLOBAL = "global"
    KIND_FUNCTION = "function"

    __slots__ = ("name", "kind", "type", "slot", "func_decl")

    def __init__(self, name, kind, type_, func_decl=None):
        self.name = name
        self.kind = kind
        self.type = type_
        self.slot = None
        self.func_decl = func_decl

    @property
    def is_global(self):
        return self.kind == self.KIND_GLOBAL

    def __repr__(self):
        return "Symbol(%s %s: %r)" % (self.kind, self.name, self.type)


class Scope:
    """One lexical scope; chains to its parent for lookups."""

    def __init__(self, parent=None):
        self.parent = parent
        self._names = {}

    def declare(self, symbol, line=None, column=None):
        if symbol.name in self._names:
            raise TypeCheckError("redeclaration of %r" % symbol.name,
                                 line, column)
        self._names[symbol.name] = symbol
        return symbol

    def lookup(self, name):
        scope = self
        while scope is not None:
            symbol = scope._names.get(name)
            if symbol is not None:
                return symbol
            scope = scope.parent
        return None

    def lookup_or_fail(self, name, line=None, column=None):
        symbol = self.lookup(name)
        if symbol is None:
            raise TypeCheckError("undeclared name %r" % name, line, column)
        return symbol

    def child(self):
        return Scope(self)
