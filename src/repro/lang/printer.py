"""FlowLang AST pretty-printer.

Renders a parsed (not necessarily checked) program back to source.  The
output normalizes formatting but preserves structure exactly, which the
test suite verifies by the round-trip property: parsing the printed
source yields a structurally identical AST.  Useful for program
transformations (the §8.6 tooling writes refactored annotations) and
for debugging generated programs.
"""

from __future__ import annotations

from . import ast

_INDENT = "    "


def _type_text(type_name):
    if isinstance(type_name, ast.ArrayTypeName):
        if type_name.size is None:
            return "%s[]" % type_name.element.name
        return "%s[%d]" % (type_name.element.name, type_name.size)
    return type_name.name


def _escape_string(text):
    out = []
    for ch in text:
        if ch == '"':
            out.append('\\"')
        elif ch == "\\":
            out.append("\\\\")
        elif ch == "\n":
            out.append("\\n")
        elif ch == "\t":
            out.append("\\t")
        elif ch == "\r":
            out.append("\\r")
        elif ch == "\0":
            out.append("\\0")
        elif 32 <= ord(ch) < 127:
            out.append(ch)
        else:
            out.append("\\x%02x" % ord(ch))
    return '"%s"' % "".join(out)


def expr_text(expr):
    """Render an expression (fully parenthesized where nested)."""
    if isinstance(expr, ast.NumberLit):
        return str(expr.value)
    if isinstance(expr, ast.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.StringLit):
        return _escape_string(expr.value)
    if isinstance(expr, ast.Name):
        return expr.ident
    if isinstance(expr, ast.Index):
        return "%s[%s]" % (expr_text(expr.base), expr_text(expr.index))
    if isinstance(expr, ast.Unary):
        operand = expr_text(expr.operand)
        if isinstance(expr.operand, (ast.Binary, ast.Unary)):
            operand = "(%s)" % operand
        return "%s%s" % (expr.op, operand)
    if isinstance(expr, ast.Binary):
        return "(%s %s %s)" % (expr_text(expr.left), expr.op,
                               expr_text(expr.right))
    if isinstance(expr, ast.Call):
        return "%s(%s)" % (expr.name,
                           ", ".join(expr_text(a) for a in expr.args))
    if isinstance(expr, ast.Cast):
        return "%s(%s)" % (expr.target.name, expr_text(expr.operand))
    if isinstance(expr, ast.ArrayLen):
        return "len(%s)" % expr_text(expr.base)
    raise TypeError("cannot print %r" % type(expr).__name__)


def _var_decl_text(stmt):
    text = "var %s: %s" % (stmt.name, _type_text(stmt.type_name))
    if stmt.init is not None:
        text += " = %s" % expr_text(stmt.init)
    return text


def _simple_stmt_text(stmt):
    """The no-semicolon rendering of assignable/decl statements."""
    if isinstance(stmt, ast.VarDecl):
        return _var_decl_text(stmt)
    if isinstance(stmt, ast.Assign):
        return "%s = %s" % (expr_text(stmt.target), expr_text(stmt.value))
    if isinstance(stmt, ast.ExprStmt):
        return expr_text(stmt.expr)
    raise TypeError("not a simple statement: %r" % type(stmt).__name__)


def _stmt_lines(stmt, depth):
    pad = _INDENT * depth
    if isinstance(stmt, (ast.VarDecl, ast.Assign, ast.ExprStmt)):
        return ["%s%s;" % (pad, _simple_stmt_text(stmt))]
    if isinstance(stmt, ast.If):
        lines = ["%sif (%s) {" % (pad, expr_text(stmt.cond))]
        lines += _block_lines(stmt.then_body, depth + 1)
        if stmt.else_body is not None:
            lines.append("%s} else {" % pad)
            lines += _block_lines(stmt.else_body, depth + 1)
        lines.append("%s}" % pad)
        return lines
    if isinstance(stmt, ast.While):
        lines = ["%swhile (%s) {" % (pad, expr_text(stmt.cond))]
        lines += _block_lines(stmt.body, depth + 1)
        lines.append("%s}" % pad)
        return lines
    if isinstance(stmt, ast.For):
        init = _simple_stmt_text(stmt.init) if stmt.init else ""
        cond = expr_text(stmt.cond) if stmt.cond else ""
        step = _simple_stmt_text(stmt.step) if stmt.step else ""
        lines = ["%sfor (%s; %s; %s) {" % (pad, init, cond, step)]
        lines += _block_lines(stmt.body, depth + 1)
        lines.append("%s}" % pad)
        return lines
    if isinstance(stmt, ast.Break):
        return ["%sbreak;" % pad]
    if isinstance(stmt, ast.Continue):
        return ["%scontinue;" % pad]
    if isinstance(stmt, ast.Return):
        if stmt.value is None:
            return ["%sreturn;" % pad]
        return ["%sreturn %s;" % (pad, expr_text(stmt.value))]
    if isinstance(stmt, ast.Enclose):
        outputs = []
        for output in stmt.outputs:
            if output.whole:
                outputs.append("%s[..]" % output.name)
            elif output.length is not None:
                outputs.append("%s[.. %s]" % (output.name,
                                              expr_text(output.length)))
            else:
                outputs.append(output.name)
        lines = ["%senclose (%s) {" % (pad, ", ".join(outputs))]
        lines += _block_lines(stmt.body, depth + 1)
        lines.append("%s}" % pad)
        return lines
    if isinstance(stmt, ast.Block):
        lines = ["%s{" % pad]
        lines += _block_lines(stmt, depth + 1)
        lines.append("%s}" % pad)
        return lines
    raise TypeError("cannot print %r" % type(stmt).__name__)


def _block_lines(block, depth):
    lines = []
    for stmt in block.statements:
        lines.extend(_stmt_lines(stmt, depth))
    return lines


def program_text(program):
    """Render a whole program back to FlowLang source."""
    chunks = []
    for global_decl in program.globals:
        chunks.append("%s;" % _var_decl_text(global_decl.decl))
    for func in program.functions:
        params = ", ".join("%s: %s" % (p.name, _type_text(p.type_name))
                           for p in func.params)
        header = "fn %s(%s)" % (func.name, params)
        if func.return_type is not None:
            header += ": %s" % _type_text(func.return_type)
        lines = [header + " {"]
        lines += _block_lines(func.body, 1)
        lines.append("}")
        chunks.append("\n".join(lines))
    return "\n\n".join(chunks) + "\n"
