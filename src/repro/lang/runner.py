"""High-level FlowLang API: compile, measure, check, lockstep.

The typical workflow mirrors the paper's tool usage:

1. ``measure()`` one or more test executions to get a
   :class:`~repro.core.report.FlowReport` (bits revealed + min cut);
2. derive a :class:`~repro.core.policy.CutPolicy` from the report;
3. enforce the policy on later runs with ``check()`` (tainting-based,
   Section 6.2) or ``lockstep()`` (output-comparison, Section 6.3).
"""

from __future__ import annotations

import hashlib

from .. import obs
from ..core.checking import CheckTracker
from ..core.lockstep import run_lockstep
from ..core.measure import measure_graph, measure_runs
from ..core.tracker import CollapsingTraceBuilder, TraceBuilder
from .checker import Checker
from .compiler import compile_program
from .parser import parse
from .vm import VM, NullTracker


class RunResult:
    """A measured execution: the flow report plus the concrete run."""

    def __init__(self, report, outputs, output_bytes, vm):
        self.report = report
        self.outputs = outputs
        self.output_bytes = bytes(output_bytes)
        self.vm = vm

    @property
    def bits(self):
        return self.report.bits

    def __repr__(self):
        return "RunResult(bits=%s, outputs=%d)" % (self.report.bits,
                                                   len(self.outputs))


def compile_source(source, filename="<source>"):
    """Lex, parse, type-check, and compile FlowLang source."""
    program = parse(source, filename)
    checker = Checker(program)
    checker.check()
    return compile_program(program, checker)


#: Compiled-program cache for :func:`compile_cached`, keyed by
#: (sha256 of the source, filename).  Bounded LRU; compiled programs
#: are immutable once built (the VM never mutates them — ``measure_many``
#: already reuses one across runs), so sharing is safe.
_COMPILE_CACHE = {}
_COMPILE_CACHE_LIMIT = 64


def compile_cached(source, filename="<source>"):
    """:func:`compile_source` with memoization by source hash.

    The batch engine's common case is many runs of the *same* program
    over different secrets; caching skips the lex/parse/check/compile
    work on every run after a worker's first.  Hits are counted under
    the ``lang.compile_cache_hits`` metric.
    """
    key = (hashlib.sha256(source.encode("utf-8")).hexdigest(), filename)
    compiled = _COMPILE_CACHE.pop(key, None)
    if compiled is not None:
        _COMPILE_CACHE[key] = compiled  # re-insert: most recently used
        obs.get_metrics().incr("lang.compile_cache_hits")
        return compiled
    compiled = compile_source(source, filename)
    _COMPILE_CACHE[key] = compiled
    while len(_COMPILE_CACHE) > _COMPILE_CACHE_LIMIT:
        _COMPILE_CACHE.pop(next(iter(_COMPILE_CACHE)))
    return compiled


def execute(compiled, secret_input=b"", public_input=b"", tracker=None,
            entry="main", region_check="warn", lazy_regions=True,
            interceptor=None, max_steps=None, deadline_seconds=None,
            exit_observable=True, finish=True, backend=None):
    """Run a compiled program; returns ``(vm, finish_result)``.

    ``max_steps`` bounds execution in steps, ``deadline_seconds`` in
    wall-clock time (enforced in the VM step loop, raising
    :class:`~repro.errors.VMTimeout`); either may be ``None``.
    ``backend`` selects the VM's execution backend
    (``"reference"``/``"fast"``/``"auto"``; see ``docs/backends.md``).
    """
    tracker = tracker if tracker is not None else TraceBuilder()
    kwargs = {}
    if max_steps is not None:
        kwargs["max_steps"] = max_steps
    if deadline_seconds is not None:
        kwargs["deadline_seconds"] = deadline_seconds
    vm = VM(compiled, tracker, secret_input=secret_input,
            public_input=public_input, region_check=region_check,
            lazy_regions=lazy_regions, interceptor=interceptor,
            backend=backend, **kwargs)
    with obs.get_tracer().span("lang.execute", entry=entry) as span:
        result = vm.run(entry=entry, finish=finish,
                        exit_observable=exit_observable)
        span.set(outputs=len(vm.outputs))
    return vm, result


def _make_tracker(online, collapse, backend=None):
    """Tracker for one measuring run; online mode collapses while tracing."""
    if not online:
        return TraceBuilder()
    if collapse == "none":
        raise ValueError("online=True collapses during tracing; "
                         "collapse='none' is not available")
    return CollapsingTraceBuilder(context_sensitive=(collapse == "context"),
                                  backend=backend)


def measure(source_or_compiled, secret_input=b"", public_input=b"",
            collapse="context", entry="main", region_check="warn",
            lazy_regions=True, exit_observable=True, filename="<source>",
            max_steps=None, deadline_seconds=None, online=False,
            backend=None):
    """Measure the information one execution reveals.

    Accepts either FlowLang source text or an already-compiled program.
    With ``online=True`` the graph is collapsed by ``collapse`` *while
    tracing* (Section 5.2 online), keeping the live graph
    coverage-sized on long runs; the report is equivalent to the
    post-hoc collapse.  ``max_steps``/``deadline_seconds`` bound the
    run (steps / wall seconds).  Returns a :class:`RunResult`.
    """
    compiled = _ensure_compiled(source_or_compiled, filename)
    tracker = _make_tracker(online, collapse, backend=backend)
    span = obs.get_tracer().span("lang.measure", collapse=collapse,
                                 online=bool(online))
    with span:
        with obs.get_metrics().phase("trace"):
            vm, graph = execute(compiled, secret_input, public_input,
                                tracker, entry=entry,
                                region_check=region_check,
                                lazy_regions=lazy_regions,
                                max_steps=max_steps,
                                deadline_seconds=deadline_seconds,
                                exit_observable=exit_observable,
                                backend=backend)
        report = measure_graph(graph, collapse=collapse,
                               stats=tracker.stats, warnings=vm.warnings)
        span.set(bits=report.bits)
    return RunResult(report, vm.outputs, vm.output_bytes, vm)


def measure_live(source_or_compiled, secret_input=b"", public_input=b"",
                 collapse="location", entry="main", region_check="warn",
                 filename="<source>", online=False, backend=None):
    """Measure with per-output flow snapshots (§8.1's real-time mode).

    The paper observes the battleship flows "in real time by running
    our tool in a mode that recomputes the flow on every program
    output".  ``online=True`` keeps the live graph collapsed while
    tracing, which makes the per-output re-solves cheap on long runs.
    Returns ``(final RunResult, series)`` where ``series[i]`` is the
    flow bound right after the i-th output event.
    """
    compiled = _ensure_compiled(source_or_compiled, filename)
    tracker = _make_tracker(online, collapse, backend=backend)
    series = []

    def snapshot(vm):
        report = measure_graph(tracker.graph, collapse=collapse)
        series.append(report.bits)

    vm = VM(compiled, tracker, secret_input=secret_input,
            public_input=public_input, region_check=region_check,
            output_hook=snapshot, backend=backend)
    graph = vm.run(entry=entry)
    report = measure_graph(graph, collapse=collapse, stats=tracker.stats,
                           warnings=vm.warnings)
    return RunResult(report, vm.outputs, vm.output_bytes, vm), series


def measure_many(source_or_compiled, secret_inputs, public_input=b"",
                 collapse="context", entry="main", region_check="warn",
                 filename="<source>", backend=None):
    """Measure several runs *together* for multi-run soundness (§3.2).

    Returns ``(combined_report, per_run_results)`` where the per-run
    results carry each run's independent report for comparison.
    """
    compiled = _ensure_compiled(source_or_compiled, filename)
    graphs = []
    stats_list = []
    per_run = []
    warnings = []
    span = obs.get_tracer().span("lang.measure_many", collapse=collapse)
    with span:
        for secret in secret_inputs:
            tracker = TraceBuilder()
            with obs.get_metrics().phase("trace"):
                vm, graph = execute(compiled, secret, public_input, tracker,
                                    entry=entry, region_check=region_check,
                                    backend=backend)
            graphs.append(graph)
            stats_list.append(tracker.stats)
            warnings.extend(vm.warnings)
            per_run.append(RunResult(
                measure_graph(graph, collapse="none", stats=tracker.stats),
                vm.outputs, vm.output_bytes, vm))
        combined = measure_runs(graphs, collapse=collapse,
                                stats_list=stats_list, warnings=warnings)
        span.set(runs=len(graphs), bits=combined.bits)
    return combined, per_run


def check(source_or_compiled, policy, secret_input=b"", public_input=b"",
          entry="main", region_check="warn", filename="<source>",
          backend=None):
    """Tainting-based policy check of one run (Section 6.2).

    Returns a :class:`~repro.core.checking.CheckResult`.
    """
    compiled = _ensure_compiled(source_or_compiled, filename)
    tracker = CheckTracker(policy)
    _vm, result = execute(compiled, secret_input, public_input, tracker,
                          entry=entry, region_check=region_check,
                          backend=backend)
    return result


def lockstep(source_or_compiled, policy, real_secret, dummy_secret,
             public_input=b"", entry="main", filename="<source>"):
    """Output-comparison check (Section 6.3): two mostly-uninstrumented runs.

    Returns a :class:`~repro.core.lockstep.LockstepResult`.
    """
    compiled = _ensure_compiled(source_or_compiled, filename)

    def run_one(secret, interceptor):
        execute(compiled, secret, public_input, NullTracker(),
                entry=entry, region_check="off", lazy_regions=False,
                interceptor=interceptor)

    return run_lockstep(run_one, real_secret, dummy_secret, policy)


def _ensure_compiled(source_or_compiled, filename):
    if isinstance(source_or_compiled, str):
        return compile_cached(source_or_compiled, filename)
    return source_or_compiled
