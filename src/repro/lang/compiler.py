"""AST-to-bytecode compiler for FlowLang.

Lowers a checked program to the stack machine of
:mod:`~repro.lang.bytecode`.  Enclosure regions compile to paired
ENTER/LEAVE instructions; the compiler enforces the single-exit
requirement (no ``break``/``continue``/``return`` may escape a region)
so that every ENTER dynamically meets its LEAVE.
"""

from __future__ import annotations

from ..core.locations import Location
from ..errors import CompileError
from . import ast
from . import types as T
from .bytecode import (ArrayInit, CompiledProgram, Function, Instr, Op,
                       OutputDesc, RegionInfo)
from .builtins import BUILTINS
from .checker import FunctionInfo
from .symbols import Symbol

#: FlowLang operator -> shadow-transfer operation name (unsigned forms;
#: the signed variants are resolved per operand type below).
_BINOP_NAMES = {
    "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
    "&": "and", "|": "or", "^": "xor", "<<": "shl",
    "==": "eq", "!=": "ne",
}
_SIGNED_COMPARE = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge"}
_UNSIGNED_COMPARE = {"<": "ult", "<=": "ule", ">": "ugt", ">=": "uge"}


class _LoopContext:
    __slots__ = ("break_patches", "continue_patches", "enclose_depth")

    def __init__(self, enclose_depth):
        self.break_patches = []
        self.continue_patches = []
        self.enclose_depth = enclose_depth


class FunctionCompiler:
    """Compiles one function body."""

    def __init__(self, program_compiler, decl):
        self.pc_ = program_compiler
        self.decl = decl
        self.code = []
        self.slots = {}
        self.num_slots = 0
        self.arrays = []
        self.loops = []
        self.enclose_depth = 0

    # ------------------------------------------------------------------
    # Infrastructure

    def loc(self, node, detail=None):
        tail = "%s+%d" % (self.decl.name, len(self.code))
        if detail:
            tail = "%s:%s" % (tail, detail)
        return Location(self.pc_.filename, node.line, tail)

    def emit(self, op, arg, node, detail=None):
        self.code.append(Instr(op, arg, self.loc(node, detail)))
        return len(self.code) - 1

    def patch(self, index, target):
        self.code[index] = Instr(self.code[index].op, target,
                                 self.code[index].loc)

    def error(self, message, node):
        raise CompileError(message, node.line, node.column)

    def allocate_slot(self, symbol):
        slot = self.num_slots
        self.num_slots += 1
        self.slots[symbol] = slot
        symbol.slot = slot
        return slot

    def slot_of(self, symbol):
        return self.slots[symbol]

    # ------------------------------------------------------------------
    # Entry

    def compile(self):
        params = []
        for param in self.decl.params:
            slot = self.allocate_slot(param.symbol)
            is_array = T.is_array(param.symbol.type)
            width = (param.symbol.type.element.width if is_array
                     else param.symbol.type.width)
            params.append((slot, is_array, width))
        self.compile_block(self.decl.body)
        # Implicit return for fall-through.
        info = self.pc_.checker_functions[self.decl.name]
        if info.return_type != T.VOID:
            self.emit(Op.CONST, (0, info.return_type.width), self.decl,
                      "implicit-return")
            self.emit(Op.RET, True, self.decl)
        else:
            self.emit(Op.RET, False, self.decl)
        return Function(self.decl.name, params, self.num_slots, self.code,
                        self.arrays, Location(self.pc_.filename,
                                              self.decl.line, self.decl.name))

    # ------------------------------------------------------------------
    # Statements

    def compile_block(self, block):
        for stmt in block.statements:
            self.compile_stmt(stmt)

    def compile_stmt(self, stmt):
        if isinstance(stmt, ast.VarDecl):
            self.compile_var_decl(stmt)
        elif isinstance(stmt, ast.Assign):
            self.compile_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.compile_expr(stmt.expr)
            if stmt.expr.type != T.VOID:
                self.emit(Op.POP, None, stmt)
        elif isinstance(stmt, ast.If):
            self.compile_if(stmt)
        elif isinstance(stmt, ast.While):
            self.compile_while(stmt)
        elif isinstance(stmt, ast.For):
            self.compile_for(stmt)
        elif isinstance(stmt, ast.Break):
            if not self.loops:
                self.error("break outside a loop", stmt)
            loop = self.loops[-1]
            if loop.enclose_depth != self.enclose_depth:
                self.error("break may not leave an enclosure region", stmt)
            loop.break_patches.append(self.emit(Op.JMP, None, stmt))
        elif isinstance(stmt, ast.Continue):
            if not self.loops:
                self.error("continue outside a loop", stmt)
            loop = self.loops[-1]
            if loop.enclose_depth != self.enclose_depth:
                self.error("continue may not leave an enclosure region", stmt)
            loop.continue_patches.append(self.emit(Op.JMP, None, stmt))
        elif isinstance(stmt, ast.Return):
            if self.enclose_depth > 0:
                self.error("return inside an enclosure region (regions "
                           "must be single-exit)", stmt)
            if stmt.value is not None:
                self.compile_expr(stmt.value)
                self.emit(Op.RET, True, stmt)
            else:
                self.emit(Op.RET, False, stmt)
        elif isinstance(stmt, ast.Enclose):
            self.compile_enclose(stmt)
        elif isinstance(stmt, ast.Block):
            self.compile_block(stmt)
        else:
            self.error("unhandled statement", stmt)

    def compile_var_decl(self, stmt):
        symbol = stmt.symbol
        slot = self.allocate_slot(symbol)
        if T.is_array(symbol.type):
            self.arrays.append(ArrayInit(slot, symbol.type.element.width,
                                         symbol.type.size, stmt.name))
            data = None
            if isinstance(stmt.init, ast.StringLit):
                data = bytes(ord(c) & 0xFF for c in stmt.init.value)
            self.emit(Op.DECLARR, (slot, data), stmt)
            return
        if stmt.init is not None:
            self.compile_expr(stmt.init)
        else:
            self.emit(Op.CONST, (0, symbol.type.width), stmt, "zero-init")
        self.emit(Op.DECL, slot, stmt)

    def compile_assign(self, stmt):
        target = stmt.target
        if isinstance(target, ast.Name):
            self.compile_expr(stmt.value)
            symbol = target.symbol
            if symbol.is_global:
                self.emit(Op.GSTORE, symbol.slot, stmt)
            else:
                self.emit(Op.STORE, self.slot_of(symbol), stmt)
        else:  # Index
            self.compile_array_ref(target.base)
            self.compile_expr(target.index)
            self.compile_expr(stmt.value)
            self.emit(Op.ASTORE, None, stmt)

    def compile_if(self, stmt):
        self.compile_expr(stmt.cond)
        jz = self.emit(Op.JZ, None, stmt, "if")
        self.compile_block(stmt.then_body)
        if stmt.else_body is not None:
            jmp = self.emit(Op.JMP, None, stmt)
            self.patch(jz, len(self.code))
            self.compile_block(stmt.else_body)
            self.patch(jmp, len(self.code))
        else:
            self.patch(jz, len(self.code))

    def compile_while(self, stmt):
        start = len(self.code)
        self.compile_expr(stmt.cond)
        jz = self.emit(Op.JZ, None, stmt, "while")
        loop = _LoopContext(self.enclose_depth)
        self.loops.append(loop)
        self.compile_block(stmt.body)
        self.loops.pop()
        for index in loop.continue_patches:
            self.patch(index, start)
        self.emit(Op.JMP, start, stmt)
        end = len(self.code)
        self.patch(jz, end)
        for index in loop.break_patches:
            self.patch(index, end)

    def compile_for(self, stmt):
        if stmt.init is not None:
            self.compile_stmt(stmt.init)
        start = len(self.code)
        jz = None
        if stmt.cond is not None:
            self.compile_expr(stmt.cond)
            jz = self.emit(Op.JZ, None, stmt, "for")
        loop = _LoopContext(self.enclose_depth)
        self.loops.append(loop)
        self.compile_block(stmt.body)
        self.loops.pop()
        continue_target = len(self.code)
        if stmt.step is not None:
            self.compile_stmt(stmt.step)
        self.emit(Op.JMP, start, stmt)
        end = len(self.code)
        if jz is not None:
            self.patch(jz, end)
        for index in loop.break_patches:
            self.patch(index, end)
        for index in loop.continue_patches:
            self.patch(index, continue_target)

    def compile_enclose(self, stmt):
        outputs = []
        dynamic_count = 0
        for output in stmt.outputs:
            symbol = output.symbol
            if T.is_array(symbol.type):
                kind = "array"
                width = symbol.type.element.width
                static_length = None
                dynamic = output.length is not None
                if dynamic:
                    self.compile_expr(output.length)
                    dynamic_count += 1
                else:
                    static_length = symbol.type.size
            else:
                kind = "scalar"
                width = symbol.type.width
                static_length = 1
                dynamic = False
            storage = "global" if symbol.is_global else "local"
            slot = symbol.slot if symbol.is_global else self.slot_of(symbol)
            outputs.append(OutputDesc(kind, storage, slot, width,
                                      static_length, dynamic, output.name))
        region_id = self.pc_.new_region(outputs, self.loc(stmt, "enclose"))
        self.emit(Op.ENTER, region_id, stmt)
        self.enclose_depth += 1
        self.compile_block(stmt.body)
        self.enclose_depth -= 1
        self.emit(Op.LEAVE, region_id, stmt)

    # ------------------------------------------------------------------
    # Expressions

    def compile_expr(self, expr):
        if isinstance(expr, ast.NumberLit):
            width = expr.type.width
            self.emit(Op.CONST, (expr.type.wrap(expr.value), width), expr)
        elif isinstance(expr, ast.BoolLit):
            self.emit(Op.CONST, (1 if expr.value else 0, 1), expr)
        elif isinstance(expr, ast.StringLit):
            self.error("string literals are only allowed as array "
                       "initializers", expr)
        elif isinstance(expr, ast.Name):
            symbol = expr.symbol
            if T.is_array(symbol.type):
                self.error("array %r used as a scalar" % expr.ident, expr)
            if symbol.is_global:
                self.emit(Op.GLOAD, symbol.slot, expr)
            else:
                self.emit(Op.LOAD, self.slot_of(symbol), expr)
        elif isinstance(expr, ast.Index):
            self.compile_array_ref(expr.base)
            self.compile_expr(expr.index)
            self.emit(Op.ALOAD, None, expr)
        elif isinstance(expr, ast.Unary):
            self.compile_unary(expr)
        elif isinstance(expr, ast.Binary):
            self.compile_binary(expr)
        elif isinstance(expr, ast.Cast):
            operand = expr.operand
            self.compile_expr(operand)
            from_type = operand.type
            to_type = expr.type
            self.emit(Op.CAST, (from_type.width, from_type.signed,
                                to_type.width, to_type.signed), expr)
        elif isinstance(expr, ast.Call):
            self.compile_call(expr)
        elif isinstance(expr, ast.ArrayLen):
            self.compile_array_ref(expr.base)
            self.emit(Op.ALEN, None, expr)
        else:
            self.error("unhandled expression", expr)

    def compile_array_ref(self, name_node):
        symbol = name_node.symbol
        storage = "global" if symbol.is_global else "local"
        slot = symbol.slot if symbol.is_global else self.slot_of(symbol)
        self.emit(Op.AREF, (storage, slot), name_node)

    def compile_unary(self, expr):
        self.compile_expr(expr.operand)
        type_ = expr.type
        if expr.op == "-":
            name = "neg"
        elif expr.op == "~":
            name = "not"
        else:  # "!"
            name = "lnot"
        self.emit(Op.UNOP, (name, type_.width, type_.signed), expr)

    def compile_binary(self, expr):
        self.compile_expr(expr.left)
        self.compile_expr(expr.right)
        op = expr.op
        operand_type = expr.left.type
        if op in ("&&", "||"):
            # Strict boolean operators: plain 1-bit and/or.
            name = "and" if op == "&&" else "or"
            self.emit(Op.BINOP, (name, 1, False), expr)
            return
        if op == ">>":
            name = "sar" if operand_type.signed else "shr"
        elif op in _SIGNED_COMPARE:
            name = (_SIGNED_COMPARE[op] if operand_type.signed
                    else _UNSIGNED_COMPARE[op])
        else:
            name = _BINOP_NAMES[op]
        self.emit(Op.BINOP, (name, operand_type.width, operand_type.signed),
                  expr)

    def compile_call(self, call):
        symbol = call.symbol
        if isinstance(symbol, FunctionInfo):
            for arg, param_type in zip(call.args, symbol.param_types):
                if T.is_array(param_type):
                    self.compile_array_ref(arg)
                else:
                    self.compile_expr(arg)
            self.emit(Op.CALL, (call.name, len(call.args)), call)
            return
        builtin = BUILTINS[call.name]
        array_args = {"read_secret": [0], "read_public": [0],
                      "output_bytes": [0]}.get(call.name, [])
        for i, arg in enumerate(call.args):
            if i in array_args:
                self.compile_array_ref(arg)
            else:
                self.compile_expr(arg)
        pushes = call.type != T.VOID
        self.emit(Op.CALLB, (call.name, len(call.args), pushes), call)


class ProgramCompiler:
    """Compiles a checked program."""

    def __init__(self, program, checker_functions):
        self.program = program
        self.checker_functions = checker_functions
        self.filename = program.filename
        self.regions = {}
        self._next_region = 0

    def new_region(self, outputs, loc):
        region_id = self._next_region
        self._next_region += 1
        self.regions[region_id] = RegionInfo(region_id, outputs, loc)
        return region_id

    def compile(self):
        globals_ = []
        for global_decl in self.program.globals:
            decl = global_decl.decl
            init = None
            if isinstance(decl.init, ast.NumberLit):
                init = decl.symbol.type.wrap(decl.init.value) \
                    if not T.is_array(decl.symbol.type) else None
            elif isinstance(decl.init, ast.BoolLit):
                init = 1 if decl.init.value else 0
            elif isinstance(decl.init, ast.StringLit):
                init = bytes(ord(c) & 0xFF for c in decl.init.value)
            elif decl.init is not None:
                raise CompileError(
                    "global initializers must be literals",
                    decl.line, decl.column)
            decl.symbol.slot = len(globals_)
            globals_.append((decl.name, decl.symbol.type, init))
        functions = {}
        for decl in self.program.functions:
            functions[decl.name] = FunctionCompiler(self, decl).compile()
        return CompiledProgram(functions, globals_, self.regions,
                               self.filename)


def compile_program(program, checker):
    """Compile a checked program; ``checker`` supplies signatures."""
    return ProgramCompiler(program, checker.functions).compile()
