"""Abstract syntax tree for FlowLang.

Every node records its source position; the compiler turns positions
into the :class:`~repro.core.locations.Location` labels that drive graph
collapsing and cut reporting.
"""

from __future__ import annotations


class Node:
    """Base class for AST nodes."""

    __slots__ = ("line", "column")

    def __init__(self, line, column):
        self.line = line
        self.column = column

    def _fields(self):
        out = []
        for cls in type(self).__mro__:
            out.extend(getattr(cls, "__slots__", ()))
        return [f for f in out if f not in ("line", "column")]

    def __repr__(self):
        parts = ", ".join("%s=%r" % (f, getattr(self, f))
                          for f in self._fields())
        return "%s(%s)" % (type(self).__name__, parts)


# ----------------------------------------------------------------------
# Types (syntactic; resolved by the checker)

class TypeName(Node):
    """A scalar type name such as ``u8`` or ``bool``."""

    __slots__ = ("name",)

    def __init__(self, name, line, column):
        super().__init__(line, column)
        self.name = name


class ArrayTypeName(Node):
    """An array type: ``u8[10]`` (sized) or ``u8[]`` (unsized parameter)."""

    __slots__ = ("element", "size")

    def __init__(self, element, size, line, column):
        super().__init__(line, column)
        self.element = element
        self.size = size  # int or None


# ----------------------------------------------------------------------
# Expressions

class Expr(Node):
    __slots__ = ("type",)  # filled in by the checker

    def __init__(self, line, column):
        super().__init__(line, column)
        self.type = None


class NumberLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value, line, column):
        super().__init__(line, column)
        self.value = value


class BoolLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value, line, column):
        super().__init__(line, column)
        self.value = value


class StringLit(Expr):
    """A string literal; typed as an unsized u8 array."""

    __slots__ = ("value",)

    def __init__(self, value, line, column):
        super().__init__(line, column)
        self.value = value


class Name(Expr):
    __slots__ = ("ident", "symbol")

    def __init__(self, ident, line, column):
        super().__init__(line, column)
        self.ident = ident
        self.symbol = None  # resolved by the checker


class Index(Expr):
    """``base[index]`` where base names an array."""

    __slots__ = ("base", "index")

    def __init__(self, base, index, line, column):
        super().__init__(line, column)
        self.base = base
        self.index = index


class Unary(Expr):
    __slots__ = ("op", "operand")

    def __init__(self, op, operand, line, column):
        super().__init__(line, column)
        self.op = op
        self.operand = operand


class Binary(Expr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right, line, column):
        super().__init__(line, column)
        self.op = op
        self.left = left
        self.right = right


class Call(Expr):
    __slots__ = ("name", "args", "symbol")

    def __init__(self, name, args, line, column):
        super().__init__(line, column)
        self.name = name
        self.args = args
        self.symbol = None


class Cast(Expr):
    """``u16(x)`` -- explicit width/signedness conversion."""

    __slots__ = ("target", "operand")

    def __init__(self, target, operand, line, column):
        super().__init__(line, column)
        self.target = target
        self.operand = operand


class ArrayLen(Expr):
    """``len(arr)`` -- static or parameter-carried element count."""

    __slots__ = ("base",)

    def __init__(self, base, line, column):
        super().__init__(line, column)
        self.base = base


# ----------------------------------------------------------------------
# Statements

class Stmt(Node):
    __slots__ = ()


class VarDecl(Stmt):
    __slots__ = ("name", "type_name", "init", "symbol")

    def __init__(self, name, type_name, init, line, column):
        super().__init__(line, column)
        self.name = name
        self.type_name = type_name
        self.init = init
        self.symbol = None


class Assign(Stmt):
    """``target = value`` where target is a Name or Index."""

    __slots__ = ("target", "value")

    def __init__(self, target, value, line, column):
        super().__init__(line, column)
        self.target = target
        self.value = value


class ExprStmt(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr, line, column):
        super().__init__(line, column)
        self.expr = expr


class If(Stmt):
    __slots__ = ("cond", "then_body", "else_body")

    def __init__(self, cond, then_body, else_body, line, column):
        super().__init__(line, column)
        self.cond = cond
        self.then_body = then_body
        self.else_body = else_body


class While(Stmt):
    __slots__ = ("cond", "body")

    def __init__(self, cond, body, line, column):
        super().__init__(line, column)
        self.cond = cond
        self.body = body


class For(Stmt):
    """``for (init; cond; step) body`` -- all three parts optional."""

    __slots__ = ("init", "cond", "step", "body")

    def __init__(self, init, cond, step, body, line, column):
        super().__init__(line, column)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class Break(Stmt):
    __slots__ = ()


class Continue(Stmt):
    __slots__ = ()


class Return(Stmt):
    __slots__ = ("value",)

    def __init__(self, value, line, column):
        super().__init__(line, column)
        self.value = value


class EncloseOutput(Node):
    """One declared output of an ``enclose`` block.

    ``name`` is the variable; for arrays, ``whole`` marks ``arr[..]``
    (the entire array) and ``length`` an optional element-count
    expression for ``arr[0 .. n]`` forms.
    """

    __slots__ = ("name", "whole", "length", "symbol")

    def __init__(self, name, whole, length, line, column):
        super().__init__(line, column)
        self.name = name
        self.whole = whole
        self.length = length
        self.symbol = None


class Enclose(Stmt):
    """``enclose (outputs...) { body }`` -- an enclosure region."""

    __slots__ = ("outputs", "body")

    def __init__(self, outputs, body, line, column):
        super().__init__(line, column)
        self.outputs = outputs
        self.body = body


class Block(Stmt):
    __slots__ = ("statements",)

    def __init__(self, statements, line, column):
        super().__init__(line, column)
        self.statements = statements


# ----------------------------------------------------------------------
# Declarations

class Param(Node):
    __slots__ = ("name", "type_name", "symbol")

    def __init__(self, name, type_name, line, column):
        super().__init__(line, column)
        self.name = name
        self.type_name = type_name
        self.symbol = None


class FuncDecl(Node):
    __slots__ = ("name", "params", "return_type", "body", "symbol")

    def __init__(self, name, params, return_type, body, line, column):
        super().__init__(line, column)
        self.name = name
        self.params = params
        self.return_type = return_type  # TypeName or None (void)
        self.body = body
        self.symbol = None


class GlobalDecl(Node):
    __slots__ = ("decl",)

    def __init__(self, decl, line, column):
        super().__init__(line, column)
        self.decl = decl


class Program(Node):
    __slots__ = ("globals", "functions", "filename")

    def __init__(self, globals_, functions, filename):
        super().__init__(1, 1)
        self.globals = globals_
        self.functions = functions
        self.filename = filename
