"""Bytecode for the FlowLang virtual machine.

The compiler lowers checked ASTs to a small stack machine.  Every
instruction carries a :class:`~repro.core.locations.Location` -- these
are the labels that identify edges for collapsing, multi-run combining,
and cut reporting, playing the role of instruction addresses in the
paper's binary-level tool.
"""

from __future__ import annotations


class Op:
    """Opcode name constants."""

    CONST = "CONST"        # arg: (value, width) -> push public TV
    LOAD = "LOAD"          # arg: slot -> push local
    STORE = "STORE"        # arg: slot; pops value
    GLOAD = "GLOAD"        # arg: index -> push global
    GSTORE = "GSTORE"      # arg: index; pops value
    AREF = "AREF"          # arg: ("local"|"global", slot) -> push array ref
    ALOAD = "ALOAD"        # pops index, array ref -> push element
    ASTORE = "ASTORE"      # pops value, index, array ref
    ALEN = "ALEN"          # pops array ref -> push length (public u32)
    DECL = "DECL"          # arg: slot; pops init value; marks region-local
    DECLARR = "DECLARR"    # arg: (slot, bytes|None); array decl (+init)
    BINOP = "BINOP"        # arg: (opname, width, signed); pops b, a
    UNOP = "UNOP"          # arg: (opname, width, signed); pops a
    CAST = "CAST"          # arg: (from_width, from_signed, to_width, to_signed)
    JMP = "JMP"            # arg: target pc
    JZ = "JZ"              # arg: target pc; pops cond (branch event)
    CALL = "CALL"          # arg: (function_name, nargs)
    CALLB = "CALLB"        # arg: (builtin_name, nargs, pushes_result)
    RET = "RET"            # arg: has_value (bool)
    ENTER = "ENTER"        # arg: region_id; pops dynamic lengths
    LEAVE = "LEAVE"        # arg: region_id
    POP = "POP"            # pops and discards
    HALT = "HALT"


class Instr:
    """One bytecode instruction."""

    __slots__ = ("op", "arg", "loc")

    def __init__(self, op, arg, loc):
        self.op = op
        self.arg = arg
        self.loc = loc

    def __repr__(self):
        return "%-8s %r" % (self.op, self.arg)


class OutputDesc:
    """A declared output of an enclosure region, compiled form.

    ``kind`` is ``"scalar"`` or ``"array"``; ``storage`` is ``"local"``
    or ``"global"``; ``slot`` indexes the frame or the globals.  For
    arrays, ``static_length`` is the declared element count or ``None``
    when the length is dynamic (computed by code emitted before ENTER).
    """

    __slots__ = ("kind", "storage", "slot", "width", "static_length",
                 "dynamic_length", "name")

    def __init__(self, kind, storage, slot, width, static_length,
                 dynamic_length, name):
        self.kind = kind
        self.storage = storage
        self.slot = slot
        self.width = width
        self.static_length = static_length
        self.dynamic_length = dynamic_length
        self.name = name

    def __repr__(self):
        return "OutputDesc(%s %s %s[%r])" % (self.kind, self.storage,
                                             self.name, self.slot)


class RegionInfo:
    """Compiled enclosure region: its outputs and source location."""

    __slots__ = ("region_id", "outputs", "loc")

    def __init__(self, region_id, outputs, loc):
        self.region_id = region_id
        self.outputs = outputs
        self.loc = loc


class ArrayInit:
    """A local array to allocate at frame entry."""

    __slots__ = ("slot", "width", "size", "name")

    def __init__(self, slot, width, size, name):
        self.slot = slot
        self.width = width
        self.size = size
        self.name = name


class Function:
    """A compiled function."""

    __slots__ = ("name", "params", "num_slots", "code", "arrays", "decl_loc")

    def __init__(self, name, params, num_slots, code, arrays, decl_loc):
        self.name = name
        self.params = params      # list of (slot, is_array, width)
        self.num_slots = num_slots
        self.code = code          # list of Instr
        self.arrays = arrays      # list of ArrayInit
        self.decl_loc = decl_loc

    def disassemble(self):
        """Human-readable listing, for debugging and tests."""
        lines = ["fn %s (%d slots)" % (self.name, self.num_slots)]
        for pc, instr in enumerate(self.code):
            lines.append("  %4d  %-8s %-24r %s"
                         % (pc, instr.op, instr.arg, instr.loc))
        return "\n".join(lines)


class CompiledProgram:
    """A whole compiled program: functions, globals, regions."""

    __slots__ = ("functions", "globals", "regions", "filename")

    def __init__(self, functions, globals_, regions, filename):
        self.functions = functions    # name -> Function
        self.globals = globals_       # list of (name, type, init)
        self.regions = regions        # region_id -> RegionInfo
        self.filename = filename

    def disassemble(self):
        return "\n\n".join(f.disassemble()
                           for f in self.functions.values())
