"""Semantic analysis (type checking and name resolution) for FlowLang.

The checker is deliberately strict: operands of binary operators must
have identical scalar types (numeric literals adapt to context), so the
width of every value -- and hence the capacity of every flow-graph node
-- is always unambiguous.  It annotates the AST in place: every
expression gets ``.type`` and every name/declaration its ``.symbol``.
"""

from __future__ import annotations

from ..errors import TypeCheckError
from . import ast
from . import types as T
from .builtins import BUILTINS
from .symbols import Scope, Symbol

ARITH_OPS = frozenset(["+", "-", "*", "/", "%", "&", "|", "^"])
SHIFT_OPS = frozenset(["<<", ">>"])
COMPARE_OPS = frozenset(["==", "!=", "<", "<=", ">", ">="])
LOGIC_OPS = frozenset(["&&", "||"])


class FunctionInfo:
    """Checked signature of a user function."""

    __slots__ = ("name", "param_types", "return_type", "decl")

    def __init__(self, name, param_types, return_type, decl):
        self.name = name
        self.param_types = param_types
        self.return_type = return_type
        self.decl = decl


class Checker:
    """Checks a parsed :class:`~repro.lang.ast.Program`."""

    def __init__(self, program):
        self.program = program
        self.globals = Scope()
        self.functions = {}
        self._current_function = None
        self._loop_depth = 0
        # The scope of the expression currently being checked; builtin
        # type rules re-enter the checker through it.
        self._scope = self.globals

    # ------------------------------------------------------------------
    # Entry point

    def check(self):
        """Run all checks; returns the (annotated) program."""
        for decl in self.program.functions:
            if decl.name in BUILTINS:
                raise TypeCheckError(
                    "function %r shadows a builtin" % decl.name,
                    decl.line, decl.column)
            if decl.name in self.functions:
                raise TypeCheckError(
                    "duplicate function %r" % decl.name,
                    decl.line, decl.column)
            info = FunctionInfo(
                decl.name,
                [self.resolve_type(p.type_name, allow_unsized=True)
                 for p in decl.params],
                (self.resolve_type(decl.return_type)
                 if decl.return_type is not None else T.VOID),
                decl)
            if T.is_array(info.return_type):
                raise TypeCheckError("functions cannot return arrays",
                                     decl.line, decl.column)
            self.functions[decl.name] = info
            symbol = Symbol(decl.name, Symbol.KIND_FUNCTION, info, decl)
            decl.symbol = symbol
            self.globals.declare(symbol, decl.line, decl.column)
        for global_decl in self.program.globals:
            self._check_global(global_decl.decl)
        for decl in self.program.functions:
            self._check_function(decl)
        return self.program

    # ------------------------------------------------------------------
    # Types

    def resolve_type(self, type_name, allow_unsized=False):
        if isinstance(type_name, ast.TypeName):
            return T.SCALARS[type_name.name]
        if isinstance(type_name, ast.ArrayTypeName):
            element = T.SCALARS[type_name.element.name]
            if type_name.size is None and not allow_unsized:
                raise TypeCheckError(
                    "array declaration needs a size (unsized arrays are "
                    "only allowed as parameters or with a string "
                    "initializer)", type_name.line, type_name.column)
            if type_name.size is not None and type_name.size <= 0:
                raise TypeCheckError("array size must be positive",
                                     type_name.line, type_name.column)
            return T.ArrayType(element, type_name.size)
        raise TypeCheckError("unknown type", type_name.line, type_name.column)

    # ------------------------------------------------------------------
    # Declarations

    def _check_global(self, decl):
        type_ = self._check_var_decl_common(decl, self.globals)
        symbol = Symbol(decl.name, Symbol.KIND_GLOBAL, type_)
        decl.symbol = symbol
        self.globals.declare(symbol, decl.line, decl.column)

    def _check_var_decl_common(self, decl, scope):
        if isinstance(decl.type_name, ast.ArrayTypeName) \
                and decl.type_name.size is None:
            # Unsized array declarations are legal only with a string
            # initializer, which fixes the size.
            if not isinstance(decl.init, ast.StringLit):
                raise TypeCheckError(
                    "unsized array %r needs a string initializer"
                    % decl.name, decl.line, decl.column)
            element = T.SCALARS[decl.type_name.element.name]
            if element != T.U8:
                raise TypeCheckError("string initializers need u8 arrays",
                                     decl.line, decl.column)
            type_ = T.ArrayType(element, len(decl.init.value))
            decl.init.type = type_
            return type_
        type_ = self.resolve_type(decl.type_name)
        if decl.init is not None:
            if T.is_array(type_):
                if not isinstance(decl.init, ast.StringLit):
                    raise TypeCheckError(
                        "arrays can only be initialized from string "
                        "literals", decl.line, decl.column)
                if type_.element != T.U8:
                    raise TypeCheckError(
                        "string initializers need u8 arrays",
                        decl.line, decl.column)
                if len(decl.init.value) > type_.size:
                    raise TypeCheckError(
                        "string initializer longer than array",
                        decl.line, decl.column)
                decl.init.type = type_
            else:
                init_type = self.check_expr(decl.init, type_, scope)
                if init_type != type_:
                    raise TypeCheckError(
                        "cannot initialize %r (%r) from %r"
                        % (decl.name, type_, init_type),
                        decl.line, decl.column)
        return type_

    def _check_function(self, decl):
        self._current_function = self.functions[decl.name]
        scope = self.globals.child()
        for param in decl.params:
            type_ = self.resolve_type(param.type_name, allow_unsized=True)
            symbol = Symbol(param.name, Symbol.KIND_PARAM, type_)
            param.symbol = symbol
            scope.declare(symbol, param.line, param.column)
        self._check_block(decl.body, scope)
        self._current_function = None

    # ------------------------------------------------------------------
    # Statements

    def _check_block(self, block, scope):
        inner = scope.child()
        for stmt in block.statements:
            self._check_stmt(stmt, inner)

    def _check_stmt(self, stmt, scope):
        if isinstance(stmt, ast.VarDecl):
            type_ = self._check_var_decl_common(stmt, scope)
            symbol = Symbol(stmt.name, Symbol.KIND_LOCAL, type_)
            stmt.symbol = symbol
            scope.declare(symbol, stmt.line, stmt.column)
        elif isinstance(stmt, ast.Assign):
            self._check_assign(stmt, scope)
        elif isinstance(stmt, ast.ExprStmt):
            self.check_expr(stmt.expr, None, scope)
        elif isinstance(stmt, ast.If):
            cond = self.check_expr(stmt.cond, T.BOOL, scope)
            if cond != T.BOOL:
                raise TypeCheckError("if condition must be bool, got %r"
                                     % cond, stmt.line, stmt.column)
            self._check_block(stmt.then_body, scope)
            if stmt.else_body is not None:
                self._check_block(stmt.else_body, scope)
        elif isinstance(stmt, ast.While):
            cond = self.check_expr(stmt.cond, T.BOOL, scope)
            if cond != T.BOOL:
                raise TypeCheckError("while condition must be bool, got %r"
                                     % cond, stmt.line, stmt.column)
            self._loop_depth += 1
            self._check_block(stmt.body, scope)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.For):
            inner = scope.child()
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                cond = self.check_expr(stmt.cond, T.BOOL, inner)
                if cond != T.BOOL:
                    raise TypeCheckError(
                        "for condition must be bool, got %r" % cond,
                        stmt.line, stmt.column)
            if stmt.step is not None:
                self._check_stmt(stmt.step, inner)
            self._loop_depth += 1
            self._check_block(stmt.body, inner)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.Break) or isinstance(stmt, ast.Continue):
            if self._loop_depth == 0:
                raise TypeCheckError("break/continue outside a loop",
                                     stmt.line, stmt.column)
        elif isinstance(stmt, ast.Return):
            expected = self._current_function.return_type
            if stmt.value is None:
                if expected != T.VOID:
                    raise TypeCheckError(
                        "return without a value in a function returning %r"
                        % expected, stmt.line, stmt.column)
            else:
                if expected == T.VOID:
                    raise TypeCheckError(
                        "void function cannot return a value",
                        stmt.line, stmt.column)
                actual = self.check_expr(stmt.value, expected, scope)
                if actual != expected:
                    raise TypeCheckError(
                        "return type mismatch: expected %r, got %r"
                        % (expected, actual), stmt.line, stmt.column)
        elif isinstance(stmt, ast.Enclose):
            self._check_enclose(stmt, scope)
        elif isinstance(stmt, ast.Block):
            self._check_block(stmt, scope)
        else:
            raise TypeCheckError("unhandled statement %r" % stmt,
                                 stmt.line, stmt.column)

    def _check_assign(self, stmt, scope):
        target_type = self._check_lvalue(stmt.target, scope)
        value_type = self.check_expr(stmt.value, target_type, scope)
        if value_type != target_type:
            raise TypeCheckError(
                "cannot assign %r to %r" % (value_type, target_type),
                stmt.line, stmt.column)

    def _check_lvalue(self, target, scope):
        if isinstance(target, ast.Name):
            symbol = scope.lookup_or_fail(target.ident, target.line,
                                          target.column)
            if symbol.kind == Symbol.KIND_FUNCTION:
                raise TypeCheckError("cannot assign to a function",
                                     target.line, target.column)
            if T.is_array(symbol.type):
                raise TypeCheckError(
                    "cannot assign whole arrays; assign elements",
                    target.line, target.column)
            target.symbol = symbol
            target.type = symbol.type
            return symbol.type
        if isinstance(target, ast.Index):
            return self._check_index(target, scope)
        raise TypeCheckError("invalid assignment target",
                             target.line, target.column)

    def _check_enclose(self, stmt, scope):
        for output in stmt.outputs:
            symbol = scope.lookup_or_fail(output.name, output.line,
                                          output.column)
            output.symbol = symbol
            if T.is_array(symbol.type):
                if not output.whole and output.length is None:
                    raise TypeCheckError(
                        "array output %r needs [..] or [.. n]"
                        % output.name, output.line, output.column)
                if output.length is not None:
                    length_type = self.check_expr(output.length, T.U32, scope)
                    if length_type != T.U32:
                        raise TypeCheckError(
                            "array output length must be u32",
                            output.line, output.column)
                elif symbol.type.size is None:
                    raise TypeCheckError(
                        "unsized array output %r needs an explicit "
                        "[.. n] length" % output.name,
                        output.line, output.column)
            else:
                if output.whole or output.length is not None:
                    raise TypeCheckError(
                        "scalar output %r cannot take [..]" % output.name,
                        output.line, output.column)
        self._check_block(stmt.body, scope)

    # ------------------------------------------------------------------
    # Expressions

    def check_expr(self, expr, expected, scope=None):
        """Type-check ``expr`` (annotating ``expr.type``) and return its type.

        ``expected`` guides numeric literals; it is a hint, not a
        coercion -- mismatches still fail in the caller's comparison.
        """
        scope = scope if scope is not None else self._scope
        previous = self._scope
        self._scope = scope
        try:
            type_ = self._infer(expr, expected, scope)
        finally:
            self._scope = previous
        expr.type = type_
        return type_

    def _infer(self, expr, expected, scope):
        if isinstance(expr, ast.NumberLit):
            target = expected if T.is_integer(expected) else T.U32
            if not (target.min_value <= expr.value <= target.max_value):
                raise TypeCheckError(
                    "literal %d does not fit in %r" % (expr.value, target),
                    expr.line, expr.column)
            return target
        if isinstance(expr, ast.BoolLit):
            return T.BOOL
        if isinstance(expr, ast.StringLit):
            return T.ArrayType(T.U8, len(expr.value))
        if isinstance(expr, ast.Name):
            symbol = scope.lookup_or_fail(expr.ident, expr.line, expr.column)
            if symbol.kind == Symbol.KIND_FUNCTION:
                raise TypeCheckError(
                    "function %r used as a value" % expr.ident,
                    expr.line, expr.column)
            expr.symbol = symbol
            return symbol.type
        if isinstance(expr, ast.Index):
            return self._check_index(expr, scope)
        if isinstance(expr, ast.Unary):
            return self._check_unary(expr, expected, scope)
        if isinstance(expr, ast.Binary):
            return self._check_binary(expr, expected, scope)
        if isinstance(expr, ast.Cast):
            target = T.SCALARS[expr.target.name]
            operand = self.check_expr(expr.operand, None, scope)
            if target == T.BOOL:
                raise TypeCheckError(
                    "cannot cast to bool; compare with != 0 instead",
                    expr.line, expr.column)
            if not (T.is_integer(operand) or T.is_bool(operand)):
                raise TypeCheckError("cannot cast %r" % operand,
                                     expr.line, expr.column)
            return target
        if isinstance(expr, ast.Call):
            return self._check_call(expr, scope)
        if isinstance(expr, ast.ArrayLen):
            base = expr.base
            if not isinstance(base, ast.Name):
                raise TypeCheckError("len() takes an array variable",
                                     expr.line, expr.column)
            symbol = scope.lookup_or_fail(base.ident, base.line, base.column)
            if not T.is_array(symbol.type):
                raise TypeCheckError("len() of a non-array",
                                     expr.line, expr.column)
            base.symbol = symbol
            base.type = symbol.type
            return T.U32
        raise TypeCheckError("unhandled expression %r" % expr,
                             expr.line, expr.column)

    def _check_index(self, expr, scope):
        if not isinstance(expr.base, ast.Name):
            raise TypeCheckError("only named arrays can be indexed",
                                 expr.line, expr.column)
        symbol = scope.lookup_or_fail(expr.base.ident, expr.base.line,
                                      expr.base.column)
        if not T.is_array(symbol.type):
            raise TypeCheckError("%r is not an array" % expr.base.ident,
                                 expr.line, expr.column)
        expr.base.symbol = symbol
        expr.base.type = symbol.type
        index_type = self.check_expr(expr.index, T.U32, scope)
        if not T.is_integer(index_type) or index_type.signed:
            raise TypeCheckError("array index must be unsigned, got %r"
                                 % index_type, expr.line, expr.column)
        expr.type = symbol.type.element
        return symbol.type.element

    def _check_unary(self, expr, expected, scope):
        if expr.op == "!":
            operand = self.check_expr(expr.operand, T.BOOL, scope)
            if operand != T.BOOL:
                raise TypeCheckError("! needs a bool, got %r" % operand,
                                     expr.line, expr.column)
            return T.BOOL
        operand = self.check_expr(expr.operand, expected, scope)
        if not T.is_integer(operand):
            raise TypeCheckError("%s needs an integer, got %r"
                                 % (expr.op, operand),
                                 expr.line, expr.column)
        return operand

    def _check_binary(self, expr, expected, scope):
        op = expr.op
        if op in LOGIC_OPS:
            left = self.check_expr(expr.left, T.BOOL, scope)
            right = self.check_expr(expr.right, T.BOOL, scope)
            if left != T.BOOL or right != T.BOOL:
                raise TypeCheckError("%s needs bool operands" % op,
                                     expr.line, expr.column)
            return T.BOOL
        if op in SHIFT_OPS:
            left = self.check_expr(expr.left, expected, scope)
            right = self.check_expr(expr.right, T.U32, scope)
            if not T.is_integer(left):
                raise TypeCheckError("%s needs an integer left operand" % op,
                                     expr.line, expr.column)
            if not T.is_integer(right) or right.signed:
                raise TypeCheckError("shift amount must be unsigned",
                                     expr.line, expr.column)
            return left
        if op in ARITH_OPS or op in COMPARE_OPS:
            hint = expected if op in ARITH_OPS else None
            left, right = self._unify_operands(expr, hint, scope)
            if op in COMPARE_OPS:
                if op in ("==", "!=") and left == T.BOOL:
                    return T.BOOL
                if not T.is_integer(left):
                    raise TypeCheckError(
                        "%s needs integer operands, got %r" % (op, left),
                        expr.line, expr.column)
                return T.BOOL
            if not T.is_integer(left):
                raise TypeCheckError(
                    "%s needs integer operands, got %r" % (op, left),
                    expr.line, expr.column)
            return left
        raise TypeCheckError("unknown operator %r" % op,
                             expr.line, expr.column)

    def _unify_operands(self, expr, hint, scope):
        """Check both operands with literal adaptation; require equality."""
        def is_literal(e):
            return isinstance(e, ast.NumberLit) or (
                isinstance(e, ast.Unary) and e.op == "-"
                and isinstance(e.operand, ast.NumberLit))

        left_lit, right_lit = is_literal(expr.left), is_literal(expr.right)
        if left_lit and not right_lit:
            right = self.check_expr(expr.right, hint, scope)
            left = self.check_expr(expr.left,
                                   right if T.is_integer(right) else hint,
                                   scope)
        else:
            left = self.check_expr(expr.left, hint, scope)
            right = self.check_expr(expr.right,
                                    left if T.is_integer(left) else hint,
                                    scope)
        if left != right:
            raise TypeCheckError(
                "operand type mismatch: %r vs %r (FlowLang has no "
                "implicit conversions; cast explicitly)" % (left, right),
                expr.line, expr.column)
        return left, right

    def _check_call(self, call, scope):
        builtin = BUILTINS.get(call.name)
        if builtin is not None:
            call.symbol = builtin
            return builtin.check(self, call)
        info = self.functions.get(call.name)
        if info is None:
            raise TypeCheckError("call to undeclared function %r" % call.name,
                                 call.line, call.column)
        call.symbol = info
        if len(call.args) != len(info.param_types):
            raise TypeCheckError(
                "%s() takes %d argument(s), got %d"
                % (call.name, len(info.param_types), len(call.args)),
                call.line, call.column)
        for arg, param_type in zip(call.args, info.param_types):
            if T.is_array(param_type):
                arg_type = self.check_array_arg(arg, call)
                if arg_type.element != param_type.element:
                    raise TypeCheckError(
                        "array element type mismatch: expected %r, got %r"
                        % (param_type.element, arg_type.element),
                        call.line, call.column)
            else:
                arg_type = self.check_expr(arg, param_type, scope)
                if arg_type != param_type:
                    raise TypeCheckError(
                        "argument type mismatch: expected %r, got %r"
                        % (param_type, arg_type), call.line, call.column)
        return info.return_type

    def check_array_arg(self, arg, call, scope=None):
        """Validate an argument position that expects an array (by name)."""
        scope = scope if scope is not None else self._scope
        if not isinstance(arg, ast.Name):
            raise TypeCheckError(
                "array arguments must be array variables",
                call.line, call.column)
        symbol = scope.lookup_or_fail(arg.ident, arg.line, arg.column)
        if not T.is_array(symbol.type):
            raise TypeCheckError("%r is not an array" % arg.ident,
                                 call.line, call.column)
        arg.symbol = symbol
        arg.type = symbol.type
        return symbol.type


def check_program(program):
    """Type-check ``program`` in place; returns it for chaining."""
    Checker(program).check()
    return program
