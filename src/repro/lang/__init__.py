"""FlowLang: the C-like analysis substrate (Section 4 stand-in).

The paper's tool instruments x86 binaries under Valgrind; this package
provides the equivalent controllable substrate: a small C-like language
with a lexer, parser, type checker, bytecode compiler, and a virtual
machine that reports every analysis-relevant event (operations,
branches, indexed accesses, I/O, enclosure annotations) to the
measurement core.

Language cheat sheet::

    var g: u32 = 0;                       // globals (literal init)

    fn weigh(buf: u8[], n: u32): u32 {    // typed functions
        var total: u32 = 0;
        var i: u32 = 0;
        enclose (total) {                 // ENTER/LEAVE_ENCLOSE
            while (i < n) {
                if (buf[i] > 128) { total = total + 1; }
                i = i + 1;
            }
        }
        return total;
    }

    fn main() {
        var buf: u8[64];
        var n: u32 = read_secret(buf, 64);  // secret input bytes
        output(weigh(buf, n));              // public output
    }

Types: ``u8 u16 u32 i8 i16 i32 bool``, fixed-size arrays.  ``&&``/``||``
are strict (both operands evaluate), so every implicit flow appears as
an explicit ``if``/``while`` branch.  Casts are written ``u16(x)``.
Builtins: ``read_secret``, ``read_public``, ``secret_u8/16/32``,
``input_u8/u32``, ``output``, ``output_bytes``, ``print_char``,
``declassify``, ``check``, ``len``.
"""

from .lexer import Lexer, tokenize
from .parser import Parser, parse
from .checker import Checker, check_program
from .compiler import compile_program
from .vm import VM, NullTracker
from .runner import (RunResult, check, compile_cached, compile_source,
                     execute, lockstep, measure, measure_live, measure_many)

__all__ = [
    "Lexer", "tokenize", "Parser", "parse", "Checker", "check_program",
    "compile_program", "VM", "NullTracker",
    "RunResult", "check", "compile_cached", "compile_source", "execute",
    "lockstep", "measure", "measure_live", "measure_many",
]
