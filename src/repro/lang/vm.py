"""The instrumented FlowLang virtual machine (Section 4).

Executes compiled bytecode while reporting every analysis-relevant event
to a tracker (a :class:`~repro.core.tracker.TraceBuilder` for
measurement, a :class:`~repro.core.checking.CheckTracker` for cheap
deployment checking, or a :class:`NullTracker` for the lockstep mode of
Section 6.3).  This plays the role of Valgrind-based instruction
rewriting in the paper: the VM *is* the instrumentation.

Every runtime scalar is a ``(value, mask, prov)`` triple: the concrete
value, the shadow secrecy bitmask (Section 2.3), and the value's flow
graph identity (Section 4.2's tags).  Arrays live in a flat address
space so that the lazy large-region machinery of Section 4.3 can defer
whole-array region updates in O(1).
"""

from __future__ import annotations

import time

from .. import obs
from ..core.lazyranges import LazyRangeTable
from ..core.regions import DeclaredOutput, RegionWriteChecker
from ..core.tracker import PUBLIC, Provenance
from ..errors import VMError, VMTimeout
from ..shadow import resolve_backend, transfer
from ..shadow.bitmask import width_mask
from .bytecode import Op

#: Default execution budget; loops that exceed it are reported rather
#: than hanging the analysis.
DEFAULT_MAX_STEPS = 50_000_000

#: The wall-clock deadline is polled every this many steps, so the
#: per-step overhead of ``deadline_seconds`` is one mask-and-test.
DEADLINE_POLL_STEPS = 1024


def _signed_value(value, width):
    sign = 1 << (width - 1)
    return (value & (sign - 1)) - (value & sign)


def _compile_binop(name, width, signed):
    """Build a specialised evaluator for one (name, width, signed) BINOP.

    The reference ``VM._eval_binop`` re-dispatches on the operation name
    (a string-comparison chain) and recomputes the width mask on every
    execution of every BINOP instruction.  The fast backend compiles each
    distinct ``instr.arg`` once into a closure with the mask baked in;
    the closures compute exactly what the reference chain computes (the
    backend contract in ``docs/backends.md`` is bit-for-bit identity).

    Returns ``(evaluator, result_width)`` where ``evaluator(av, bv, loc)``
    yields the concrete result value; ``None`` for unknown names (the
    caller falls back to the reference chain, which raises the right
    :class:`~repro.errors.VMError`).
    """
    w = width_mask(width)
    result_width = 1 if name in transfer.COMPARISONS else width
    if name == "add":
        fn = lambda av, bv, loc: (av + bv) & w
    elif name == "sub":
        fn = lambda av, bv, loc: (av - bv) & w
    elif name == "mul":
        fn = lambda av, bv, loc: (av * bv) & w
    elif name == "and":
        fn = lambda av, bv, loc: av & bv
    elif name == "or":
        fn = lambda av, bv, loc: av | bv
    elif name == "xor":
        fn = lambda av, bv, loc: av ^ bv
    elif name == "shl":
        fn = lambda av, bv, loc: (av << bv) & w if bv < 64 else 0
    elif name == "shr":
        fn = lambda av, bv, loc: av >> bv if bv < 64 else 0
    elif name == "sar":
        fn = lambda av, bv, loc: \
            (_signed_value(av, width) >> min(bv, 63)) & w
    elif name in ("div", "mod"):
        def fn(av, bv, loc, _div=(name == "div")):
            if bv == 0:
                raise VMError("division by zero", loc)
            if signed:
                sa = _signed_value(av, width)
                sb = _signed_value(bv, width)
                if _div:
                    quotient = abs(sa) // abs(sb)
                    if (sa < 0) != (sb < 0):
                        quotient = -quotient
                    return quotient & w
                remainder = abs(sa) % abs(sb)
                if sa < 0:
                    remainder = -remainder
                return remainder & w
            return (av // bv) & w if _div else (av % bv) & w
    elif name == "eq":
        fn = lambda av, bv, loc: int(av == bv)
    elif name == "ne":
        fn = lambda av, bv, loc: int(av != bv)
    elif name in ("lt", "le", "gt", "ge"):
        op = name
        def fn(av, bv, loc, _op=op):
            sa = _signed_value(av, width)
            sb = _signed_value(bv, width)
            if _op == "lt":
                return int(sa < sb)
            if _op == "le":
                return int(sa <= sb)
            if _op == "gt":
                return int(sa > sb)
            return int(sa >= sb)
    elif name == "ult":
        fn = lambda av, bv, loc: int(av < bv)
    elif name == "ule":
        fn = lambda av, bv, loc: int(av <= bv)
    elif name == "ugt":
        fn = lambda av, bv, loc: int(av > bv)
    elif name == "uge":
        fn = lambda av, bv, loc: int(av >= bv)
    else:
        return None
    return fn, result_width


#: Compiled BINOP evaluators keyed by the instruction's ``(name, width,
#: signed)`` tuple -- shared across VM instances (closures are pure).
_BINOP_CACHE = {}


class NullTracker:
    """Tracker that records nothing: the uninstrumented lockstep mode."""

    region_depth = 0

    class _Exit:
        node = None
        had_implicit_flows = False
        implicit_bits = 0

    def public(self):
        return PUBLIC

    def secret_value(self, location, width, mask=None, category=None):
        return PUBLIC

    def secret_values(self, location, width, count, mask=None,
                      category=None):
        return [PUBLIC] * count

    def operation(self, location, result_mask, operands):
        return PUBLIC

    def copy(self, provenance):
        return provenance

    def declassify(self, provenance):
        return PUBLIC

    def implicit_flow(self, location, provenance, bits):
        pass

    def branch(self, location, condition, arms=2):
        pass

    def indexed(self, location, index):
        pass

    def enter_region(self, location):
        pass

    def leave_region(self, location):
        return self._Exit()

    def region_output(self, location, region_exit, old_provenance, width):
        return old_provenance

    def output(self, location, provenances):
        pass

    def push_call(self, callsite_id):
        pass

    def pop_call(self):
        pass

    def finish(self, exit_observable=True):
        return None

    @property
    def stats(self):
        return {}


class ArrayObject:
    """A FlowLang array: concrete values plus parallel shadow state."""

    __slots__ = ("array_id", "base_addr", "width", "length", "values",
                 "masks", "provs", "name")

    def __init__(self, array_id, base_addr, width, length, name):
        self.array_id = array_id
        self.base_addr = base_addr
        self.width = width
        self.length = length
        self.values = [0] * length
        self.masks = [0] * length
        self.provs = [PUBLIC] * length
        self.name = name

    def __repr__(self):
        return "ArrayObject(%s, len=%d, w=%d)" % (self.name, self.length,
                                                  self.width)


class Frame:
    """An activation record: local slots and an operand stack."""

    __slots__ = ("function", "slots", "stack", "pc", "frame_id")

    def __init__(self, function, frame_id):
        self.function = function
        self.slots = [None] * function.num_slots
        self.stack = []
        self.pc = 0
        self.frame_id = frame_id


class _ActiveRegion:
    """Runtime state of an entered enclosure region."""

    __slots__ = ("info", "lengths", "checker", "frame_id")

    def __init__(self, info, lengths, checker, frame_id):
        self.info = info
        self.lengths = lengths  # output name -> element count (arrays)
        self.checker = checker
        self.frame_id = frame_id


class VM:
    """Executes a compiled program against a tracker.

    Args:
        program: a :class:`~repro.lang.bytecode.CompiledProgram`.
        tracker: any object implementing the TraceBuilder event
            interface (TraceBuilder, CheckTracker, NullTracker).
        secret_input: bytes consumed by ``read_secret``/``secret_*``.
        public_input: bytes consumed by ``read_public``/``input_*``.
        region_check: ``"off"``, ``"warn"`` (collect undeclared-write
            warnings), or ``"strict"`` (raise RegionError).
        interceptor: optional lockstep interceptor (Section 6.3); when
            set, values produced at the policy's cut locations are
            routed through ``interceptor.intercept``.
        lazy_regions: enable the Section 4.3 deferred array updates.
        max_steps: execution budget (steps).
        deadline_seconds: wall-clock execution budget; ``None`` (the
            default) means unlimited.  Enforced in the step loop every
            :data:`DEADLINE_POLL_STEPS` steps, raising
            :class:`~repro.errors.VMTimeout`.
        backend: ``"reference"``, ``"fast"``, ``"auto"``/``None``
            (consult ``REPRO_BACKEND``, then auto-detect).  The fast
            backend swaps in compiled per-instruction BINOP evaluators
            and batched array I/O; results are bit-identical to the
            reference (see ``docs/backends.md``).
    """

    def __init__(self, program, tracker, secret_input=b"", public_input=b"",
                 region_check="warn", interceptor=None, lazy_regions=True,
                 max_steps=DEFAULT_MAX_STEPS, deadline_seconds=None,
                 output_hook=None, backend=None):
        self.program = program
        self.tracker = tracker
        self.backend = resolve_backend(backend)
        if self.backend in ("fast", "native"):
            # The VM's hot loop is the compiled-evaluator BINOP cache,
            # shared by the fast and native backends; the native
            # backend's compiled kernels take over at the max-flow
            # solve (graph.maxflow) below this frontend.
            self._binop = self._binop_fast
        self.secret_input = bytes(secret_input)
        self.public_input = bytes(public_input)
        self._secret_pos = 0
        self._public_pos = 0
        self.region_check = region_check
        self.interceptor = interceptor
        self.max_steps = max_steps
        if deadline_seconds is not None and not deadline_seconds > 0:
            raise ValueError("deadline_seconds must be positive or None, "
                             "got %r" % (deadline_seconds,))
        self.deadline_seconds = deadline_seconds
        #: Called as ``output_hook(vm)`` after every output event -- the
        #: paper's "recompute the flow on every program output" mode.
        self.output_hook = output_hook
        self.outputs = []          # concrete output values, in order
        self.output_bytes = bytearray()  # print_char/output_bytes stream
        self.warnings = []
        self.steps = 0

        self._frames = []
        self._next_frame_id = 1
        self._next_array_id = 1
        self._next_addr = 0
        self._arrays_by_base = {}
        self._regions = []
        self.globals = []
        if lazy_regions:
            self.lazy = LazyRangeTable(self._materialize_range)
        else:
            self.lazy = None
        self._init_globals()

    # ------------------------------------------------------------------
    # Setup

    def _init_globals(self):
        from . import types as T
        for name, type_, init in self.program.globals:
            if T.is_array(type_):
                array = self._alloc_array(type_.element.width, type_.size,
                                          name)
                if isinstance(init, bytes):
                    for i, byte in enumerate(init):
                        array.values[i] = byte
                self.globals.append(array)
            else:
                self.globals.append((init or 0, 0, PUBLIC))

    def _alloc_array(self, width, length, name):
        array = ArrayObject(self._next_array_id, self._next_addr, width,
                            length, name)
        self._next_array_id += 1
        self._next_addr += length
        self._arrays_by_base[array.base_addr] = array
        return array

    # ------------------------------------------------------------------
    # Running

    def run(self, entry="main", finish=True, exit_observable=True):
        """Execute from ``entry``; returns ``tracker.finish()``'s result.

        With ``finish=False`` the tracker is left open (callers that
        merge several program runs into one trace use this).
        """
        function = self.program.functions.get(entry)
        if function is None:
            raise VMError("no function named %r" % entry)
        if function.params:
            raise VMError("entry function %r must take no parameters"
                          % entry)
        frame = self._push_frame(function)
        self._execute()
        if self.lazy is not None:
            # Dead deferred updates need no graph nodes: reads already
            # materialized on demand, so remaining descriptors cover
            # only locations the program never looked at again.
            self.lazy.discard()
        if finish:
            return self.tracker.finish(exit_observable=exit_observable)
        return None

    def _push_frame(self, function):
        frame = Frame(function, self._next_frame_id)
        self._next_frame_id += 1
        for init in function.arrays:
            frame.slots[init.slot] = self._alloc_array(
                init.width, init.size, init.name)
        self._frames.append(frame)
        return frame

    def _execute(self):
        # Every compiled function ends in RET, so the loop terminates
        # exactly when the entry frame returns (or a budget runs out).
        deadline = None
        if self.deadline_seconds is not None:
            deadline = time.monotonic() + self.deadline_seconds
        poll_mask = DEADLINE_POLL_STEPS - 1
        while self._frames:
            self._step()
            self.steps += 1
            if self.steps > self.max_steps:
                raise VMError("execution budget exceeded (%d steps)"
                              % self.max_steps)
            if deadline is not None and not (self.steps & poll_mask) \
                    and time.monotonic() > deadline:
                raise VMTimeout(
                    "wall-clock deadline exceeded (%.3fs budget, "
                    "%d steps)" % (self.deadline_seconds, self.steps),
                    deadline_seconds=self.deadline_seconds,
                    steps=self.steps)

    # ------------------------------------------------------------------
    # The dispatch loop

    def _step(self):
        frame = self._frames[-1]
        instr = frame.function.code[frame.pc]
        frame.pc += 1
        op = instr.op
        stack = frame.stack
        if op == Op.CONST:
            value, _width = instr.arg
            stack.append((value, 0, PUBLIC))
        elif op == Op.LOAD:
            cell = frame.slots[instr.arg]
            if cell is None:
                raise VMError("read of uninitialized local", instr.loc)
            stack.append(cell)
        elif op == Op.STORE:
            frame.slots[instr.arg] = stack.pop()
            if self._regions:
                self._note_write(("local", frame.frame_id, instr.arg))
        elif op == Op.BINOP:
            self._binop(instr, stack)
        elif op == Op.JZ:
            cond = stack.pop()
            cond = self._intercept_branch(instr, cond)
            if cond[1]:
                self.tracker.branch(instr.loc, cond[2])
            if cond[0] == 0:
                frame.pc = instr.arg
        elif op == Op.JMP:
            frame.pc = instr.arg
        elif op == Op.ALOAD:
            index = stack.pop()
            array = stack.pop()
            stack.append(self._array_load(instr, array, index))
        elif op == Op.ASTORE:
            value = stack.pop()
            index = stack.pop()
            array = stack.pop()
            self._array_store(instr, array, index, value)
        elif op == Op.AREF:
            storage, slot = instr.arg
            array = (self.globals[slot] if storage == "global"
                     else frame.slots[slot])
            stack.append(array)
        elif op == Op.ALEN:
            array = stack.pop()
            stack.append((array.length, 0, PUBLIC))
        elif op == Op.GLOAD:
            stack.append(self.globals[instr.arg])
        elif op == Op.GSTORE:
            self.globals[instr.arg] = stack.pop()
            if self._regions:
                self._note_write(("global", 0, instr.arg))
        elif op == Op.UNOP:
            self._unop(instr, stack)
        elif op == Op.CAST:
            self._cast(instr, stack)
        elif op == Op.CALL:
            self._call(instr, frame)
        elif op == Op.CALLB:
            self._call_builtin(instr, frame)
        elif op == Op.RET:
            has_value = instr.arg
            result = frame.stack.pop() if has_value else None
            self._frames.pop()
            if self._frames:
                # Returning to a caller: unwind the context hash and
                # deliver the return value.
                self.tracker.pop_call()
                if result is not None:
                    self._frames[-1].stack.append(result)
        elif op == Op.DECL:
            # A declaration: like STORE, but a local declared *inside* an
            # enclosure region is region-local and needs no output
            # annotation (it cannot be read after the region).
            frame.slots[instr.arg] = stack.pop()
            for region in self._regions:
                if region.checker is not None:
                    region.checker.declare_local(
                        ("local", frame.frame_id, instr.arg))
        elif op == Op.DECLARR:
            slot, data = instr.arg
            array = frame.slots[slot]
            if data is not None:
                for i, byte in enumerate(data):
                    self._store_element_raw(array, i, (byte, 0, PUBLIC))
            for region in self._regions:
                if region.checker is not None:
                    for i in range(array.length):
                        region.checker.declare_local(
                            ("heap", array.array_id, i))
        elif op == Op.POP:
            stack.pop()
        elif op == Op.ENTER:
            self._enter_region(instr, frame)
        elif op == Op.LEAVE:
            self._leave_region(instr, frame)
        elif op == Op.HALT:
            self._frames.pop()
        else:
            raise VMError("unknown opcode %r" % op, instr.loc)

    # ------------------------------------------------------------------
    # Arithmetic

    def _binop(self, instr, stack):
        name, width, signed = instr.arg
        b = stack.pop()
        a = stack.pop()
        value = self._eval_binop(name, a[0], b[0], width, signed, instr.loc)
        result_width = 1 if name in transfer.COMPARISONS else width
        if a[1] == 0 and b[1] == 0:
            stack.append(self._intercept_value(instr, (value, 0, PUBLIC),
                                               result_width))
            return
        mask = transfer.binary_mask(name, a[0], a[1], b[0], b[1], width)
        mask &= width_mask(result_width)
        if mask == 0:
            stack.append(self._intercept_value(instr, (value, 0, PUBLIC),
                                               result_width))
            return
        prov = self.tracker.operation(instr.loc, mask, [a[2], b[2]])
        stack.append(self._intercept_value(instr, (value, mask, prov),
                                           result_width))

    def _binop_fast(self, instr, stack):
        """BINOP via the compiled-evaluator cache (fast backend).

        Bit-identical to :meth:`_binop`: same values, same transfer
        masks, same tracker events -- only the concrete evaluation is
        specialised per distinct ``instr.arg``.
        """
        entry = _BINOP_CACHE.get(instr.arg)
        if entry is None:
            entry = _compile_binop(*instr.arg)
            if entry is None:
                # Unknown op: the reference chain raises the right error.
                return VM._binop(self, instr, stack)
            _BINOP_CACHE[instr.arg] = entry
        fn, result_width = entry
        b = stack.pop()
        a = stack.pop()
        value = fn(a[0], b[0], instr.loc)
        if a[1] == 0 and b[1] == 0:
            stack.append(self._intercept_value(instr, (value, 0, PUBLIC),
                                               result_width))
            return
        name, width, _signed = instr.arg
        mask = transfer.binary_mask(name, a[0], a[1], b[0], b[1], width)
        mask &= width_mask(result_width)
        if mask == 0:
            stack.append(self._intercept_value(instr, (value, 0, PUBLIC),
                                               result_width))
            return
        prov = self.tracker.operation(instr.loc, mask, [a[2], b[2]])
        stack.append(self._intercept_value(instr, (value, mask, prov),
                                           result_width))

    def _eval_binop(self, name, av, bv, width, signed, loc):
        w = width_mask(width)
        if name == "add":
            return (av + bv) & w
        if name == "sub":
            return (av - bv) & w
        if name == "mul":
            return (av * bv) & w
        if name == "and":
            return av & bv
        if name == "or":
            return av | bv
        if name == "xor":
            return av ^ bv
        if name == "shl":
            return (av << bv) & w if bv < 64 else 0
        if name == "shr":
            return av >> bv if bv < 64 else 0
        if name == "sar":
            return (self._signed(av, width) >> min(bv, 63)) & w
        if name in ("div", "mod"):
            if bv == 0:
                raise VMError("division by zero", loc)
            if signed:
                sa, sb = self._signed(av, width), self._signed(bv, width)
                if name == "div":
                    quotient = abs(sa) // abs(sb)
                    if (sa < 0) != (sb < 0):
                        quotient = -quotient
                    return quotient & w
                remainder = abs(sa) % abs(sb)
                if sa < 0:
                    remainder = -remainder
                return remainder & w
            return (av // bv) & w if name == "div" else (av % bv) & w
        if name == "eq":
            return int(av == bv)
        if name == "ne":
            return int(av != bv)
        if name in ("lt", "le", "gt", "ge"):
            sa, sb = self._signed(av, width), self._signed(bv, width)
        else:
            sa, sb = av, bv
        if name in ("lt", "ult"):
            return int(sa < sb)
        if name in ("le", "ule"):
            return int(sa <= sb)
        if name in ("gt", "ugt"):
            return int(sa > sb)
        if name in ("ge", "uge"):
            return int(sa >= sb)
        raise VMError("unknown binary operation %r" % name, loc)

    @staticmethod
    def _signed(value, width):
        sign = 1 << (width - 1)
        return (value & (sign - 1)) - (value & sign)

    def _unop(self, instr, stack):
        name, width, _signed = instr.arg
        a = stack.pop()
        w = width_mask(width)
        if name == "neg":
            value = (-a[0]) & w
        elif name == "not":
            value = (~a[0]) & w
        else:  # lnot
            value = 0 if a[0] else 1
        if a[1] == 0:
            stack.append(self._intercept_value(instr, (value, 0, PUBLIC),
                                               width))
            return
        mask = transfer.unary_mask(name, a[0], a[1], width)
        if mask == 0:
            stack.append(self._intercept_value(instr, (value, 0, PUBLIC),
                                               width))
            return
        prov = self.tracker.operation(instr.loc, mask, [a[2]])
        stack.append(self._intercept_value(instr, (value, mask, prov),
                                           width))

    def _cast(self, instr, stack):
        from_width, from_signed, to_width, to_signed = instr.arg
        a = stack.pop()
        if from_signed:
            value = self._signed(a[0], from_width) & width_mask(to_width)
        else:
            value = a[0] & width_mask(to_width)
        if a[1] == 0:
            stack.append(self._intercept_value(instr, (value, 0, PUBLIC),
                                               to_width))
            return
        if to_width > from_width:
            if from_signed:
                mask = transfer.transfer_sext(a[0], a[1], from_width,
                                              to_width)
            else:
                mask = transfer.transfer_zext(a[0], a[1], from_width,
                                              to_width)
        else:
            mask = transfer.transfer_trunc(a[0], a[1], to_width)
        if mask == 0:
            stack.append((value, 0, PUBLIC))
            return
        prov = self.tracker.operation(instr.loc, mask, [a[2]])
        stack.append(self._intercept_value(instr, (value, mask, prov),
                                           to_width))

    # ------------------------------------------------------------------
    # Arrays

    def _array_load(self, instr, array, index):
        if not isinstance(array, ArrayObject):
            raise VMError("indexing a non-array", instr.loc)
        if index[1]:
            self.tracker.indexed(instr.loc, index[2])
        i = index[0]
        if not (0 <= i < array.length):
            raise VMError("array index %d out of bounds (len %d)"
                          % (i, array.length), instr.loc)
        if self.lazy is not None and len(self.lazy):
            self._materialize_single(array, i)
        return (array.values[i], array.masks[i], array.provs[i])

    def _array_store(self, instr, array, index, value):
        if not isinstance(array, ArrayObject):
            raise VMError("indexing a non-array", instr.loc)
        if index[1]:
            self.tracker.indexed(instr.loc, index[2])
        i = index[0]
        if not (0 <= i < array.length):
            raise VMError("array index %d out of bounds (len %d)"
                          % (i, array.length), instr.loc)
        self._store_element(instr, array, i, value)

    def _store_element(self, instr, array, i, value):
        if self.lazy is not None and len(self.lazy):
            self.lazy.exclude(array.base_addr + i)
        array.values[i] = value[0]
        array.masks[i] = value[1]
        array.provs[i] = value[2]
        if self._regions:
            self._note_write(("heap", array.array_id, i))

    # ------------------------------------------------------------------
    # Calls

    def _call(self, instr, frame):
        name, nargs = instr.arg
        function = self.program.functions[name]
        args = [frame.stack.pop() for _ in range(nargs)]
        args.reverse()
        self.tracker.push_call(str(instr.loc))
        callee = self._push_frame(function)
        for (slot, is_array, _width), arg in zip(function.params, args):
            callee.slots[slot] = arg

    def _call_builtin(self, instr, frame):
        from .builtins import BUILTINS
        name, nargs, pushes = instr.arg
        builtin = BUILTINS[name]
        args = [frame.stack.pop() for _ in range(nargs)]
        args.reverse()
        result = builtin.execute(self, instr.loc, args)
        if pushes:
            frame.stack.append(result)

    # ------------------------------------------------------------------
    # I/O (called from builtins)

    def read_into_array(self, loc, array, max_count, secret):
        if not isinstance(array, ArrayObject):
            raise VMError("read target is not an array", loc)
        stream = self.secret_input if secret else self.public_input
        pos = self._secret_pos if secret else self._public_pos
        count = min(max_count, array.length, len(stream) - pos)
        if secret and count > 1 and self.backend in ("fast", "native"):
            secret_values = getattr(self.tracker, "secret_values", None)
            if secret_values is not None:
                return self._read_into_array_bulk(loc, array, stream, pos,
                                                  count, secret_values)
        for i in range(count):
            byte = stream[pos + i]
            if secret:
                prov = self.tracker.secret_value(loc, 8)
                value = (byte, prov.mask, prov)
            else:
                value = (byte, 0, PUBLIC)
            self._store_element_raw(array, i, value)
        if secret:
            self._secret_pos = pos + count
        else:
            self._public_pos = pos + count
        return (count, 0, PUBLIC)

    def _read_into_array_bulk(self, loc, array, stream, pos, count,
                              secret_values):
        """Fast-backend secret array read: one tracker call, slice stores.

        Equivalent to the per-byte reference loop: the tracker's
        ``secret_values`` produces the same graph as ``count`` calls to
        ``secret_value`` (for a collapsing builder, in O(1) instead of
        O(count)), and the slice assignments store the same
        (value, mask, prov) triples.  Counted under
        ``shadow.fast.batch_ops`` / ``shadow.fast.batch_values``.
        """
        provs = secret_values(loc, 8, count)
        lazy = self.lazy
        if lazy is not None:
            base = array.base_addr
            for i in range(count):
                if not len(lazy):
                    break
                lazy.exclude(base + i)
        array.values[:count] = list(stream[pos:pos + count])
        array.masks[:count] = [p.mask for p in provs]
        array.provs[:count] = provs
        self._secret_pos = pos + count
        metrics = obs.get_metrics()
        if metrics.enabled:
            metrics.incr("shadow.fast.batch_ops")
            metrics.incr("shadow.fast.batch_values", count)
        return (count, 0, PUBLIC)

    def _store_element_raw(self, array, i, value):
        """Store without write-checking: input arrival, not program writes."""
        if self.lazy is not None and len(self.lazy):
            self.lazy.exclude(array.base_addr + i)
        array.values[i] = value[0]
        array.masks[i] = value[1]
        array.provs[i] = value[2]

    def read_scalar(self, loc, width, secret):
        stream = self.secret_input if secret else self.public_input
        pos = self._secret_pos if secret else self._public_pos
        nbytes = width // 8
        raw = stream[pos:pos + nbytes]
        value = int.from_bytes(raw.ljust(nbytes, b"\0"), "little")
        if secret:
            self._secret_pos = pos + nbytes
            prov = self.tracker.secret_value(loc, width)
            return (value, prov.mask, prov)
        self._public_pos = pos + nbytes
        return (value, 0, PUBLIC)

    def write_output(self, loc, tv):
        if self.interceptor is not None:
            self.interceptor.output(tv[0])
        self.outputs.append(tv[0])
        self.output_bytes.append(tv[0] & 0xFF)
        self.tracker.output(loc, [tv[2]] if tv[1] else [])
        if self.output_hook is not None:
            self.output_hook(self)

    def write_output_array(self, loc, array, count):
        if not isinstance(array, ArrayObject):
            raise VMError("output source is not an array", loc)
        count = min(count, array.length)
        if (count > 1 and self.backend in ("fast", "native")
                and (self.lazy is None or not len(self.lazy))):
            # Fast backend, no deferred region updates pending: batch the
            # output without per-element lazy checks.  Same outputs, same
            # provenance list, same single tracker.output event.
            values = array.values[:count]
            self.outputs.extend(values)
            self.output_bytes.extend(v & 0xFF for v in values)
            masks = array.masks
            arr_provs = array.provs
            provs = [arr_provs[i] for i in range(count) if masks[i]]
            if self.interceptor is not None:
                self.interceptor.output(bytes(v & 0xFF for v in values))
            self.tracker.output(loc, provs)
            metrics = obs.get_metrics()
            if metrics.enabled:
                metrics.incr("shadow.fast.batch_ops")
                metrics.incr("shadow.fast.batch_values", count)
            if self.output_hook is not None:
                self.output_hook(self)
            return
        provs = []
        for i in range(count):
            if self.lazy is not None and len(self.lazy):
                self._materialize_single(array, i)
            self.outputs.append(array.values[i])
            self.output_bytes.append(array.values[i] & 0xFF)
            if array.masks[i]:
                provs.append(array.provs[i])
        if self.interceptor is not None:
            self.interceptor.output(bytes(array.values[i] & 0xFF
                                          for i in range(count)))
        self.tracker.output(loc, provs)
        if self.output_hook is not None:
            self.output_hook(self)

    # ------------------------------------------------------------------
    # Enclosure regions

    def _enter_region(self, instr, frame):
        info = self.program.regions[instr.arg]
        lengths = {}
        # Dynamic lengths were pushed in declaration order; pop reversed.
        dynamic = [out for out in info.outputs if out.dynamic_length]
        for out in reversed(dynamic):
            length_tv = frame.stack.pop()
            if length_tv[1]:
                raise VMError(
                    "enclosure output length for %r is secret" % out.name,
                    instr.loc)
            lengths[out.name] = length_tv[0]
        checker = None
        if self.region_check != "off":
            declared = []
            for out in info.outputs:
                key, length = self._output_key(out, frame, lengths)
                declared.append(DeclaredOutput(key, out.width, length))
            checker = RegionWriteChecker(
                declared, instr.loc, strict=(self.region_check == "strict"))
        self._regions.append(_ActiveRegion(info, lengths, checker,
                                           frame.frame_id))
        self.tracker.enter_region(instr.loc)

    def _output_key(self, out, frame, lengths):
        if out.kind == "scalar":
            if out.storage == "global":
                return ("global", 0, out.slot), 1
            return ("local", frame.frame_id, out.slot), 1
        array = (self.globals[out.slot] if out.storage == "global"
                 else frame.slots[out.slot])
        length = lengths.get(out.name, out.static_length)
        if length is None:
            length = array.length
        length = min(length, array.length)
        return ("heap", array.array_id, 0), length

    def _leave_region(self, instr, frame):
        if not self._regions:
            raise VMError("LEAVE without a matching ENTER", instr.loc)
        region = self._regions.pop()
        if region.checker is not None:
            undeclared = region.checker.validate()
            for key in undeclared[:10]:
                self.warnings.append(
                    "region at %s wrote undeclared location %r"
                    % (region.info.loc, key))
        exit_token = self.tracker.leave_region(instr.loc)
        for out in region.info.outputs:
            self._apply_region_output(instr, frame, region, exit_token, out)

    def _apply_region_output(self, instr, frame, region, exit_token, out):
        out_loc = instr.loc
        if out.kind == "scalar":
            if out.storage == "global":
                old = self.globals[out.slot]
            else:
                old = frame.slots[out.slot]
            if old is None:
                old = (0, 0, PUBLIC)
            old_prov = old[2] if old[1] else PUBLIC
            new_prov = self.tracker.region_output(
                self._detail_loc(out_loc, out.name), exit_token, old_prov,
                out.width)
            if new_prov is not old_prov or exit_token.had_implicit_flows:
                new = (old[0], new_prov.mask, new_prov)
            else:
                new = old
            new = self._intercept_value(instr, new, out.width,
                                        loc=self._detail_loc(out_loc,
                                                             out.name))
            if out.storage == "global":
                self.globals[out.slot] = new
            else:
                frame.slots[out.slot] = new
            if self._regions:
                self._note_write_outer(("global", 0, out.slot)
                                       if out.storage == "global"
                                       else ("local", frame.frame_id,
                                             out.slot))
            return
        # Array output.
        if not exit_token.had_implicit_flows:
            return
        array = (self.globals[out.slot] if out.storage == "global"
                 else frame.slots[out.slot])
        length = region.lengths.get(out.name, out.static_length)
        if length is None:
            length = array.length
        length = min(length, array.length)
        payload = (array, exit_token, self._detail_loc(out_loc, out.name),
                   out.width)
        covered = False
        if self.lazy is not None:
            covered = self.lazy.cover(array.base_addr, length, payload)
        if not covered:
            for i in range(length):
                self._apply_region_to_element(array, i, exit_token,
                                              payload[2], out.width)
        if self._regions:
            for i in range(length):
                self._note_write_outer(("heap", array.array_id, i))

    @staticmethod
    def _detail_loc(loc, name):
        from ..core.locations import Location
        return Location(loc.unit, loc.point,
                        "%s:%s" % (loc.detail or "", name))

    def _apply_region_to_element(self, array, i, exit_token, out_loc, width):
        old_prov = array.provs[i] if array.masks[i] else PUBLIC
        new_prov = self.tracker.region_output(out_loc, exit_token, old_prov,
                                              width)
        array.masks[i] = new_prov.mask
        array.provs[i] = new_prov

    def _materialize_single(self, array, i):
        """Apply any deferred region updates for one element, on demand."""
        addr = array.base_addr + i
        payloads = self.lazy.lookup(addr)
        if payloads is None:
            return
        for payload in list(payloads):
            p_array, exit_token, out_loc, width = payload
            self._apply_region_to_element(p_array, i, exit_token, out_loc,
                                          width)
        self.lazy.exclude(addr)

    def _materialize_range(self, start, length, exceptions, payload):
        """LazyRangeTable callback: write out a whole deferred descriptor."""
        p_array, exit_token, out_loc, width = payload
        base = p_array.base_addr
        for addr in range(start, start + length):
            if addr in exceptions:
                continue
            self._apply_region_to_element(p_array, addr - base, exit_token,
                                          out_loc, width)

    # ------------------------------------------------------------------
    # Region write bookkeeping

    def _note_write(self, key):
        for region in self._regions:
            if region.checker is not None:
                region.checker.note_write(key)

    def _note_write_outer(self, key):
        """Note a region-exit update as a write in *enclosing* regions."""
        self._note_write(key)

    # ------------------------------------------------------------------
    # Lockstep interception

    def _intercept_value(self, instr, tv, width, loc=None):
        if self.interceptor is None:
            return tv
        loc = loc if loc is not None else instr.loc
        if not self.interceptor.at_cut("value", loc):
            return tv
        new_value = self.interceptor.intercept("value", loc, tv[0], width)
        if new_value != tv[0]:
            return (new_value, tv[1], tv[2])
        return tv

    def _intercept_branch(self, instr, cond):
        if self.interceptor is None:
            return cond
        if not self.interceptor.at_cut("implicit", instr.loc):
            return cond
        new_value = self.interceptor.intercept("implicit", instr.loc,
                                               cond[0], 1)
        return (new_value, cond[1], cond[2])
