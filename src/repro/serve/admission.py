"""Admission control and backpressure for the measurement service.

A measurement job is expensive (instrumented execution is orders of
magnitude slower than native), so the worst thing the daemon can do
under load is accept work it cannot drain: queue latency grows without
bound and every tenant's jobs get slower together.  The controller
instead answers ``POST /v1/jobs`` with an explicit refusal — HTTP 429
plus a ``Retry-After`` hint — the moment any of its limits trips:

* **bounded queue depth** — at most ``queue_depth`` accepted-but-not-
  running jobs; beyond it every submission is refused (backpressure);
* **per-tenant inflight cap** — at most ``tenant_inflight`` live
  (queued + running) jobs per tenant, so one chatty tenant cannot
  starve the rest;
* **load shedding** — once the queue is hot (``shed_fraction`` of
  capacity), *large* jobs (``runs > shed_runs``) are refused even
  though small ones still fit: cheap probes keep flowing while bulk
  work waits for calm;
* **drain** — a draining daemon admits nothing (HTTP 503, so clients
  distinguish "overloaded, retry here" from "going away, go
  elsewhere").

``Retry-After`` is an estimate, not a promise: an exponentially
weighted moving average of recent job durations times the queue depth
ahead of the would-be submission, clamped to a sane range.
"""

from __future__ import annotations

import threading

#: Decision reasons, also returned in the JSON error body.
REASONS = ("queue_full", "tenant_cap", "load_shed", "draining")


class Decision:
    """One admission verdict: admit, or refuse with status + hint."""

    __slots__ = ("admitted", "status", "reason", "retry_after")

    def __init__(self, admitted, status=202, reason=None, retry_after=None):
        self.admitted = admitted
        self.status = status
        self.reason = reason
        self.retry_after = retry_after

    def __repr__(self):
        if self.admitted:
            return "Decision(admitted)"
        return "Decision(%d %s, retry_after=%s)" % (
            self.status, self.reason, self.retry_after)


class AdmissionController:
    """Stateless limits plus a little learned state (the EWMA).

    Args:
        queue_depth: maximum accepted-but-not-running jobs.
        tenant_inflight: maximum live (queued + running) jobs per
            tenant.
        shed_runs: with the queue hot, submissions asking for more
            than this many runs are shed.
        shed_fraction: the queue is "hot" at this fraction of
            ``queue_depth`` (rounded down, at least 1).
        ewma_alpha: weight of the newest job duration in the
            ``Retry-After`` estimate.
    """

    def __init__(self, queue_depth=16, tenant_inflight=4, shed_runs=64,
                 shed_fraction=0.75, ewma_alpha=0.3):
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1, got %d"
                             % queue_depth)
        if tenant_inflight < 1:
            raise ValueError("tenant_inflight must be >= 1, got %d"
                             % tenant_inflight)
        if shed_runs < 1:
            raise ValueError("shed_runs must be >= 1, got %d" % shed_runs)
        if not 0.0 < shed_fraction <= 1.0:
            raise ValueError("shed_fraction must be in (0, 1], got %r"
                             % (shed_fraction,))
        self.queue_depth = int(queue_depth)
        self.tenant_inflight = int(tenant_inflight)
        self.shed_runs = int(shed_runs)
        self.shed_threshold = max(1, int(queue_depth * shed_fraction))
        self._alpha = float(ewma_alpha)
        self._ewma_seconds = None
        self._lock = threading.Lock()

    def observe_job_seconds(self, seconds):
        """Feed one finished job's wall time into the EWMA."""
        seconds = float(seconds)
        with self._lock:
            if self._ewma_seconds is None:
                self._ewma_seconds = seconds
            else:
                self._ewma_seconds += self._alpha * (seconds
                                                     - self._ewma_seconds)

    @property
    def ewma_seconds(self):
        with self._lock:
            return self._ewma_seconds

    def retry_after(self, depth):
        """Whole seconds a refused client should wait, in [1, 300]."""
        with self._lock:
            per_job = self._ewma_seconds
        if per_job is None:
            per_job = 1.0
        estimate = per_job * max(1, depth)
        return max(1, min(300, int(estimate + 0.999)))

    def decide(self, runs, depth, tenant_inflight, draining=False):
        """Judge one submission against the current queue state.

        Args:
            runs: how many runs the submission asks for.
            depth: current accepted-but-not-running queue depth.
            tenant_inflight: the submitting tenant's live job count.
            draining: whether the daemon is shutting down.
        """
        if draining:
            return Decision(False, status=503, reason="draining",
                            retry_after=self.retry_after(depth))
        if depth >= self.queue_depth:
            return Decision(False, status=429, reason="queue_full",
                            retry_after=self.retry_after(depth))
        if tenant_inflight >= self.tenant_inflight:
            return Decision(False, status=429, reason="tenant_cap",
                            retry_after=self.retry_after(tenant_inflight))
        if depth >= self.shed_threshold and runs > self.shed_runs:
            return Decision(False, status=429, reason="load_shed",
                            retry_after=self.retry_after(depth))
        return Decision(True)

    def limits(self):
        """The configured limits, for ``/v1/queue`` and the docs."""
        return {"queue_depth": self.queue_depth,
                "tenant_inflight": self.tenant_inflight,
                "shed_runs": self.shed_runs,
                "shed_threshold": self.shed_threshold,
                "ewma_seconds": self.ewma_seconds}
