"""The measurement daemon: queue, dispatcher, checkpoints, drain.

:class:`MeasurementDaemon` is the long-running process behind
``repro serve``: an HTTP frontend (:mod:`repro.serve.api`) accepts
measurement jobs into the crash-safe queue (:mod:`repro.serve.queue`),
a dispatcher thread executes them one at a time over the existing
:class:`~repro.batch.engine.BatchEngine` pool, and every completed run
is checkpointed before the next one starts — so the daemon can die at
any instant and resume with nothing lost but the run in flight.

State directory layout::

    STATE_DIR/
      queue.journal          the queue-v1 journal (accepted jobs + acks)
      endpoint.json          {host, port, pid} of the live daemon
      telemetry/<gen>/       one telemetry-v1 directory per daemon
                             lifetime (counters reset with the process)
      jobs/<id>/
        store/               per-job ShardStore (blobs only, no manifest)
        progress.jsonl       one record per completed run (the commit
                             point: digest + bits on success, the
                             JobFailure dict on failure)
        kraft.json           resumable IncrementalKraft state
        result.json          the final report document (atomic write)

Durability argument, in order of the writes: a run's shard blob is
written first (content-addressed and idempotent — rewriting it on
resume is a no-op), then its ``progress.jsonl`` line is appended,
flushed, and fsynced.  The progress line is the *only* commit point:
a crash before it re-executes the run (same digest, nothing doubled),
a crash after it resumes past the run (the blob is already durable).
The Kraft accountant is checkpointed after the progress line and
verified against it on resume — a stale or torn ``kraft.json`` is
rebuilt from the progress records and the stored shard metadata, so
no run is ever double-admitted into the §3 accounting.  The final
combine folds the stored shards in run-index order through the same
:class:`~repro.core.combine.StreamingCombiner` path an uninterrupted
run uses, which is why a killed-and-resumed job's final bounds are
bit-identical to an undisturbed one's.

Graceful degradation: worker crashes ride the existing
``FaultPolicy(on_error="collect")`` path, so a job that loses runs
completes ``partial`` — the report carries the §3 caveat that the
bound covers only the surviving runs.  SIGTERM/SIGINT trigger a
drain: admission stops (503), the dispatcher finishes or checkpoints
the job in flight, unfinished jobs stay unacknowledged for the next
start to replay, telemetry flushes, and the process exits 0.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time

from .. import obs
from ..batch.engine import PENDING, BatchEngine, FaultPolicy, JobFailure
from ..batch.runs import _trace_run_job
from ..core.combine import IncrementalKraft, StreamingCombiner
from ..core.policy import CutPolicy
from ..errors import ServeError
from ..graph.flowgraph import INF
from ..shadow import resolve_backend
from ..store import ShardStore
from .admission import AdmissionController
from .queue import JobQueue

_COLLAPSE_MODES = ("context", "location")
_MAX_RUNS = 4096


def _finite(bits):
    """JSON rendering of a bound: ``None`` for unbounded."""
    if bits is None or bits >= INF:
        return None
    return bits


def validate_spec(spec):
    """Normalize one job spec into its canonical journaled form.

    Raises ``ValueError`` with a client-facing message on anything
    malformed (the API maps that to HTTP 400).  The canonical form is
    JSON-clean — secrets and the public input become hex — so the
    journal replays byte-identically.
    """
    if not isinstance(spec, dict):
        raise ValueError("job spec must be a JSON object")
    program = spec.get("program")
    if not isinstance(program, str) or not program.strip():
        raise ValueError("spec.program must be non-empty FlowLang source")
    secrets = []
    raw = spec.get("secrets", [])
    if not isinstance(raw, list):
        raise ValueError("spec.secrets must be a list of strings")
    for value in raw:
        if not isinstance(value, str):
            raise ValueError("spec.secrets must be a list of strings")
        secrets.append(value.encode("utf-8"))
    raw = spec.get("secrets_hex", [])
    if not isinstance(raw, list):
        raise ValueError("spec.secrets_hex must be a list of hex strings")
    for value in raw:
        try:
            secrets.append(bytes.fromhex(value))
        except (TypeError, ValueError):
            raise ValueError("spec.secrets_hex entries must be hex strings")
    if not secrets:
        raise ValueError("spec needs at least one secret "
                         "(secrets or secrets_hex)")
    if len(secrets) > _MAX_RUNS:
        raise ValueError("spec asks for %d runs; the service caps a "
                         "job at %d" % (len(secrets), _MAX_RUNS))
    public = spec.get("public", "")
    if not isinstance(public, str):
        raise ValueError("spec.public must be a string")
    public = public.encode("utf-8")
    if "public_hex" in spec:
        try:
            public = bytes.fromhex(spec["public_hex"])
        except (TypeError, ValueError):
            raise ValueError("spec.public_hex must be a hex string")
    collapse = spec.get("collapse", "context")
    if collapse not in _COLLAPSE_MODES:
        raise ValueError("spec.collapse must be one of %r"
                         % (_COLLAPSE_MODES,))
    backend = spec.get("backend")
    if backend is not None and not isinstance(backend, str):
        raise ValueError("spec.backend must be a string or null")
    max_steps = spec.get("max_steps")
    if max_steps is not None:
        if not isinstance(max_steps, int) or max_steps < 1:
            raise ValueError("spec.max_steps must be a positive integer")
    deadline = spec.get("deadline")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) or not deadline > 0:
            raise ValueError("spec.deadline must be positive seconds")
    tenant = spec.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        raise ValueError("spec.tenant must be a non-empty string")
    filename = spec.get("filename", "<job>")
    if not isinstance(filename, str) or not filename:
        raise ValueError("spec.filename must be a non-empty string")
    return {
        "program": program,
        "filename": filename,
        "secrets_hex": [secret.hex() for secret in secrets],
        "public_hex": public.hex(),
        "collapse": collapse,
        "backend": backend,
        "max_steps": max_steps,
        "deadline": deadline,
        "tenant": tenant,
    }


def load_progress(path):
    """Fold a job's ``progress.jsonl`` into ``{run_index: record}``.

    A torn final line (the expected crash artifact) is dropped; a
    duplicated run index keeps the last record.
    """
    completed = {}
    if not os.path.exists(path):
        return completed
    with open(path, "rb") as handle:
        for line in handle.read().split(b"\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except (ValueError, UnicodeDecodeError):
                continue
            run = record.get("run")
            if isinstance(run, int) and ("digest" in record
                                         or "error" in record):
                completed[run] = record
    return completed


def _atomic_json(path, doc):
    tmp = "%s.tmp.%d" % (path, os.getpid())
    with open(tmp, "w") as handle:
        json.dump(doc, handle, sort_keys=False)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class ServeConfig:
    """Everything ``repro serve`` is configured by."""

    __slots__ = ("state_dir", "host", "port", "jobs", "queue_depth",
                 "tenant_inflight", "shed_runs", "timeout", "retries",
                 "telemetry", "telemetry_interval")

    def __init__(self, state_dir, host="127.0.0.1", port=8675, jobs=1,
                 queue_depth=16, tenant_inflight=4, shed_runs=64,
                 timeout=None, retries=0, telemetry=True,
                 telemetry_interval=1.0):
        self.state_dir = os.fspath(state_dir)
        self.host = host
        self.port = int(port)
        self.jobs = int(jobs)
        self.queue_depth = int(queue_depth)
        self.tenant_inflight = int(tenant_inflight)
        self.shed_runs = int(shed_runs)
        self.timeout = timeout
        self.retries = int(retries)
        self.telemetry = telemetry
        self.telemetry_interval = float(telemetry_interval)


class MeasurementDaemon:
    """The service: one queue, one dispatcher, one HTTP frontend."""

    def __init__(self, config):
        self.config = config
        self.started_at = time.time()
        self._draining = threading.Event()
        self._shutdown = threading.Event()
        self._wake = threading.Event()
        self._live = {}
        self._live_lock = threading.Lock()
        self._server = None
        self._server_thread = None
        self._dispatcher = None
        self._exporter = None
        self._ledger = obs.Ledger()
        self.queue = JobQueue(config.state_dir)
        self.admission = AdmissionController(
            queue_depth=config.queue_depth,
            tenant_inflight=config.tenant_inflight,
            shed_runs=config.shed_runs)

    # ------------------------------------------------------------------
    # API surface (called from HTTP handler threads)

    @property
    def draining(self):
        return self._draining.is_set()

    def submit_job(self, spec, tenant=None):
        """Admission-check one submission; returns
        ``(decision, job_or_None, error_message_or_None)``."""
        try:
            canonical = validate_spec(spec)
        except ValueError as error:
            return None, None, str(error)
        if tenant:
            canonical["tenant"] = tenant
        tenant = canonical["tenant"]
        runs = len(canonical["secrets_hex"])
        decision = self.admission.decide(
            runs, self.queue.depth(), self.queue.inflight(tenant),
            draining=self.draining)
        metrics = obs.get_metrics()
        if not decision.admitted:
            if metrics.enabled:
                metrics.incr("serve.rejected")
            obs.get_event_log().event("queue.reject",
                                      reason=decision.reason,
                                      tenant=tenant, runs=runs)
            return decision, None, None
        job = self.queue.submit(canonical, tenant=tenant)
        if metrics.enabled:
            metrics.incr("serve.admitted")
        self._wake.set()
        return decision, job, None

    def cancel_job(self, job_id):
        """Journal a cancel request; returns the job or ``None``
        (unknown id raises ``KeyError`` to the handler's 404)."""
        job = self.queue.request_cancel(job_id)
        if job is not None:
            self._wake.set()
        return job

    def job_status(self, job_id):
        """The status document for ``GET /v1/jobs/<id>``."""
        job = self.queue.get(job_id)
        if job is None:
            return None
        doc = job.to_dict()
        doc["runs"] = len(job.spec.get("secrets_hex", []))
        with self._live_lock:
            live = self._live.get(job_id)
        if live is not None:
            doc.update(live)
        if job.state in ("done", "partial", "failed"):
            result_path = os.path.join(self._job_dir(job_id),
                                       "result.json")
            try:
                with open(result_path) as handle:
                    doc["result"] = json.load(handle)
            except (OSError, ValueError):
                pass
        return doc

    def queue_status(self):
        doc = self.queue.snapshot()
        doc["draining"] = self.draining
        doc["limits"] = self.admission.limits()
        doc["counts"] = self.queue.counts()
        return doc

    def health(self):
        return {"status": "draining" if self.draining else "ok",
                "pid": os.getpid(),
                "uptime_seconds": time.time() - self.started_at,
                "depth": self.queue.depth()}

    def metrics_text(self):
        """The ``/metrics`` OpenMetrics exposition (monotone per
        scrape, via the daemon's own ledger)."""
        published = self._ledger.publish(obs.get_metrics().snapshot())
        self._ledger.remember_gauges(published)
        return obs.render_openmetrics(published)

    # ------------------------------------------------------------------
    # Job execution (dispatcher thread)

    def _job_dir(self, job_id):
        return os.path.join(self.config.state_dir, "jobs", job_id)

    def _set_live(self, job_id, **fields):
        with self._live_lock:
            self._live.setdefault(job_id, {}).update(fields)

    def _clear_live(self, job_id):
        with self._live_lock:
            self._live.pop(job_id, None)

    def _load_kraft(self, path, completed, store):
        """The job's resumable Kraft accountant: the checkpointed state
        when it matches the progress journal, else a rebuild from the
        stored shard metadata (never trust a torn checkpoint)."""
        success = sorted(run for run, record in completed.items()
                         if "digest" in record)
        try:
            with open(path) as handle:
                doc = json.load(handle)
            if sorted(doc.get("runs", ())) == success:
                return IncrementalKraft.from_dict(doc["kraft"]), success
        except (OSError, ValueError, KeyError, TypeError):
            pass
        kraft = IncrementalKraft()
        for run in success:
            meta = store.meta(completed[run]["digest"])
            kraft.admit(meta["source_cap"], meta["sink_cap"])
        return kraft, success

    def _execute_job(self, job):
        config = self.config
        spec = job.spec
        try:
            canonical = validate_spec(spec)
        except ValueError as error:
            self.queue.ack(job.id, "failed",
                           {"error": {"error_type": "ValueError",
                                      "error": str(error)}})
            return
        secrets = [bytes.fromhex(h) for h in canonical["secrets_hex"]]
        public = bytes.fromhex(canonical["public_hex"])
        collapse = canonical["collapse"]
        backend = resolve_backend(canonical["backend"])
        runs_total = len(secrets)
        job_dir = self._job_dir(job.id)
        os.makedirs(job_dir, exist_ok=True)
        store = ShardStore(os.path.join(job_dir, "store"))
        progress_path = os.path.join(job_dir, "progress.jsonl")
        kraft_path = os.path.join(job_dir, "kraft.json")
        completed = load_progress(progress_path)
        kraft, success = self._load_kraft(kraft_path, completed, store)
        remaining = [i for i in range(runs_total) if i not in completed]
        self._set_live(job.id, runs_total=runs_total,
                       runs_done=len(completed),
                       runs_failed=len(completed) - len(success),
                       anytime_bits=_finite(kraft.bits)
                       if completed else None,
                       resumed=bool(completed) and job.replayed)
        t0 = time.monotonic()
        try:
            if remaining:
                self._run_remaining(job, canonical, secrets, public,
                                    collapse, backend, remaining, store,
                                    progress_path, kraft_path, completed,
                                    kraft, runs_total)
            unresolved = [i for i in range(runs_total)
                          if i not in completed]
            if job.cancel_requested:
                self.queue.ack(job.id, "cancelled",
                               {"runs": runs_total,
                                "runs_done": len(completed)})
                return
            if unresolved:
                # Drain fired mid-job: checkpointed, unacknowledged —
                # the next start replays and resumes it.
                self.queue.requeue(job.id)
                metrics = obs.get_metrics()
                if metrics.enabled:
                    metrics.incr("serve.drained")
                return
            self._finalize_job(job, canonical, store, kraft_path,
                               completed, kraft, runs_total,
                               time.monotonic() - t0)
        finally:
            store.close()
            self._clear_live(job.id)

    def _run_remaining(self, job, canonical, secrets, public, collapse,
                       backend, remaining, store, progress_path,
                       kraft_path, completed, kraft, runs_total):
        payloads = [(canonical["program"], canonical["filename"],
                     secrets[i], public, collapse, "main",
                     canonical["max_steps"], canonical["deadline"],
                     backend)
                    for i in remaining]
        handle = open(progress_path, "a", encoding="utf-8")

        def checkpoint(index, outcome):
            run = remaining[index]
            if isinstance(outcome, JobFailure):
                record = {"run": run,
                          "error": outcome.to_dict(traceback=False)}
            else:
                digest = store.put_object_text(outcome["graph"])
                meta = store.meta(digest)
                kraft.admit(meta["source_cap"], meta["sink_cap"])
                record = {"run": run, "digest": digest,
                          "bits": outcome["bits"],
                          "stats": outcome["stats"],
                          "warnings": outcome["warnings"]}
            handle.write(json.dumps(record, sort_keys=False) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
            completed[run] = record
            success = sorted(r for r, rec in completed.items()
                             if "digest" in rec)
            _atomic_json(kraft_path, {"format": "kraft-v1",
                                      "kraft": kraft.to_dict(),
                                      "runs": success})
            self._set_live(job.id, runs_done=len(completed),
                           runs_failed=len(completed) - len(success),
                           anytime_bits=_finite(kraft.bits))

        def stop():
            return self._draining.is_set() or job.cancel_requested

        try:
            engine = BatchEngine(
                self.config.jobs,
                faults=FaultPolicy(timeout=self.config.timeout,
                                   retries=self.config.retries,
                                   on_error="collect"))
            outcomes = engine.map(_trace_run_job, payloads,
                                  on_outcome=checkpoint, stop=stop)
            assert all(o is PENDING or remaining[i] in completed
                       for i, o in enumerate(outcomes))
        finally:
            handle.close()

    def _finalize_job(self, job, canonical, store, kraft_path, completed,
                      kraft, runs_total, seconds):
        success = sorted(run for run, record in completed.items()
                         if "digest" in record)
        failures = [dict(completed[run]["error"], run=run)
                    for run in sorted(completed)
                    if "error" in completed[run]]
        result_path = os.path.join(self._job_dir(job.id), "result.json")
        if not success:
            doc = {"id": job.id, "bits": None, "runs": runs_total,
                   "covered": 0, "partial": True, "per_run_bits": [],
                   "failures": failures, "warnings": [],
                   "seconds": seconds}
            _atomic_json(result_path, doc)
            self.queue.ack(job.id, "failed",
                           {"runs": runs_total, "covered": 0,
                            "error": failures[0] if failures else None})
            return
        combiner = StreamingCombiner(
            context_sensitive=(canonical["collapse"] == "context"))
        warnings = []
        stats_list = []
        for run in success:
            record = completed[run]
            combiner.add(store.get(record["digest"]))
            warnings.extend(record.get("warnings") or [])
            stats_list.append(record.get("stats") or {})
        if not kraft.sealed:
            kraft.seal()
        bits = combiner.bits
        kraft.finalize(bits)
        _atomic_json(kraft_path, {"format": "kraft-v1",
                                  "kraft": kraft.to_dict(),
                                  "runs": success})
        report = combiner.report(stats_list=stats_list,
                                 warnings=warnings)
        cut = CutPolicy.from_report(report)
        doc = {
            "id": job.id,
            "bits": _finite(bits),
            "runs": runs_total,
            "covered": len(success),
            "partial": bool(failures),
            "per_run_bits": [completed[run]["bits"] for run in success],
            "anytime": [_finite(b) for b in kraft.trail],
            "failures": failures,
            "warnings": warnings,
            "cut": cut.to_dict(),
            "seconds": seconds,
        }
        _atomic_json(result_path, doc)
        self.admission.observe_job_seconds(seconds)
        state = "partial" if failures else "done"
        self.queue.ack(job.id, state,
                       {"bits": _finite(bits), "runs": runs_total,
                        "covered": len(success),
                        "partial": bool(failures)})

    def _dispatch_loop(self):
        while not self._draining.is_set():
            job = self.queue.claim()
            if job is None:
                self._wake.wait(0.2)
                self._wake.clear()
                continue
            try:
                self._execute_job(job)
            except Exception as error:  # noqa: BLE001 - daemon survives
                try:
                    self.queue.ack(
                        job.id, "failed",
                        {"error": {"error_type": type(error).__name__,
                                   "error": str(error)}})
                except Exception:
                    pass

    # ------------------------------------------------------------------
    # Lifecycle

    def initiate_drain(self):
        """Stop admitting, checkpoint in flight, shut down (idempotent,
        signal-handler safe)."""
        self._draining.set()
        self._wake.set()
        self._shutdown.set()

    def _telemetry_generation_dir(self):
        """A fresh ``telemetry/<gen>`` directory for this process
        lifetime.  Telemetry counters are monotonic per process, so a
        restarted daemon must open a new stream rather than append a
        reset counter sequence to the previous one."""
        root = os.path.join(self.config.state_dir, "telemetry")
        os.makedirs(root, exist_ok=True)
        taken = [int(name) for name in os.listdir(root)
                 if name.isdigit()]
        return os.path.join(root, "%03d" % (max(taken, default=-1) + 1))

    def start(self):
        """Bind, start the frontend + dispatcher; returns the bound
        ``(host, port)``.  In-process callers pair this with
        :meth:`stop`; the CLI uses :meth:`run`."""
        from .api import make_server
        config = self.config
        if config.telemetry:
            obs.enable().enable_thread_safety()
            obs.enable_events()
            self._exporter = obs.TelemetryExporter(
                self._telemetry_generation_dir(),
                interval=config.telemetry_interval)
            obs.set_exporter(self._exporter)
            self._exporter.start()
        try:
            self._server = make_server(self, config.host, config.port)
        except OSError as error:
            raise ServeError("cannot bind %s:%d: %s"
                             % (config.host, config.port, error))
        host, port = self._server.server_address[:2]
        _atomic_json(os.path.join(config.state_dir, "endpoint.json"),
                     {"host": host, "port": port, "pid": os.getpid()})
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-serve-http", daemon=True)
        self._server_thread.start()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch",
            daemon=True)
        self._dispatcher.start()
        return host, port

    def stop(self):
        """Drain and tear down; returns 0 (the drain exit code)."""
        self.initiate_drain()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._dispatcher is not None:
            self._dispatcher.join()
            self._dispatcher = None
        self.queue.close()
        if self._exporter is not None:
            obs.set_exporter(None)
            self._exporter.stop()
            self._exporter = None
            obs.disable_events()
            obs.disable()
        try:
            os.unlink(os.path.join(self.config.state_dir,
                                   "endpoint.json"))
        except OSError:
            pass
        return 0

    def run(self):
        """Serve until SIGTERM/SIGINT, then drain; returns the exit
        code (0 after a clean drain)."""
        if threading.current_thread() is threading.main_thread():
            signal.signal(signal.SIGTERM,
                          lambda signum, frame: self.initiate_drain())
            signal.signal(signal.SIGINT,
                          lambda signum, frame: self.initiate_drain())
        host, port = self.start()
        print("repro serve: listening on http://%s:%d (state: %s)"
              % (host, port, self.config.state_dir), flush=True)
        try:
            self._shutdown.wait()
        finally:
            self.stop()
        print("repro serve: drained cleanly", flush=True)
        return 0
