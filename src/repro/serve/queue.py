"""Crash-safe persistent job queue — the ``queue-v1`` journal.

The measurement service's durability contract is simple to state: once
a submission has been answered with HTTP 202, a ``kill -9`` of the
daemon at *any* later point loses nothing.  The mechanism is an
append-only journal of JSON records under the state directory::

    queue.journal       one JSON object per line, append-only

Record kinds (``rec`` field):

* ``header`` — written when the journal is created; carries the
  ``queue-v1`` format marker.
* ``submit`` — one accepted job: its id, tenant, and full spec.
  Flushed **and fsynced before the 202 goes out**, so an acknowledged
  submission is durable by construction.
* ``ack`` — the job's single atomic acknowledge: a terminal state
  (``done`` / ``partial`` / ``failed`` / ``cancelled``) plus a summary.
  Also fsynced; a job is complete exactly when its ack record is.
* ``cancel`` — a cancel *request* (informational; the matching ack
  with state ``cancelled`` is what retires the job).

Replay (on every open) folds the journal into a consistent state:

* a torn final line — the one partial write a crash can leave, since
  every record is written in one flushed ``write()`` — is dropped
  silently; malformed interior lines are dropped with a counter;
* ``ack`` for an unknown id and duplicate records are tolerated
  (last writer wins), so replaying any *prefix* of a journal yields a
  consistent state: no accepted job lost, no job double-completed —
  the property test in ``tests/serve/test_queue.py`` holds the line;
* every submitted-but-unacked job comes back ``queued``, in original
  submit order (the ``serve.replayed`` metric counts them).  Whether
  such a job had already started does not matter: per-job progress
  lives in its own journal (see :mod:`repro.serve.daemon`), so a
  replayed job resumes from its completed runs rather than repeating
  them.

The queue object itself is thread-safe (one lock); the HTTP frontend
submits and cancels from handler threads while the dispatcher thread
claims and acknowledges.
"""

from __future__ import annotations

import json
import os
import threading
import time

from .. import obs
from ..errors import ServeError

#: The journal format marker written to (and required of) the header.
QUEUE_FORMAT = "queue-v1"

#: Terminal states an ``ack`` record may carry.
ACK_STATES = ("done", "partial", "failed", "cancelled")

_JOURNAL = "queue.journal"


class JobRecord:
    """One job's live view: journaled facts plus in-memory status.

    ``state`` is one of ``queued`` / ``running`` / the terminal
    :data:`ACK_STATES`.  ``running`` is in-memory only — a crash
    while running replays as ``queued`` and the job resumes from its
    checkpoints.
    """

    __slots__ = ("id", "ts", "tenant", "spec", "state", "summary",
                 "cancel_requested", "replayed")

    def __init__(self, job_id, ts, tenant, spec):
        self.id = job_id
        self.ts = ts
        self.tenant = tenant
        self.spec = spec
        self.state = "queued"
        self.summary = None
        self.cancel_requested = False
        self.replayed = False

    @property
    def terminal(self):
        return self.state in ACK_STATES

    def to_dict(self, spec=False):
        doc = {"id": self.id, "ts": self.ts, "tenant": self.tenant,
               "state": self.state,
               "cancel_requested": self.cancel_requested}
        if self.summary is not None:
            doc["summary"] = self.summary
        if spec:
            doc["spec"] = self.spec
        return doc

    def __repr__(self):
        return "JobRecord(%r, %s)" % (self.id, self.state)


def replay_journal(path):
    """Fold a ``queue-v1`` journal file into ``(jobs, skipped)``.

    ``jobs`` is an id-ordered-by-submission dict of
    :class:`JobRecord`; ``skipped`` counts dropped lines (a torn final
    line is dropped *without* counting — it is the expected crash
    artifact, not damage).  Pure function of the file contents, which
    is what the prefix-truncation property test exercises directly.
    """
    jobs = {}
    skipped = 0
    with open(path, "rb") as handle:
        data = handle.read()
    lines = data.split(b"\n")
    torn_tail = lines and lines[-1] != b""
    if not torn_tail:
        lines = lines[:-1]
    for position, line in enumerate(lines):
        last = position == len(lines) - 1
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError("not an object")
        except (ValueError, UnicodeDecodeError):
            if not (last and torn_tail):
                skipped += 1
            continue
        kind = record.get("rec")
        if kind == "header":
            continue
        job_id = record.get("id")
        if not isinstance(job_id, str) or not job_id:
            skipped += 1
            continue
        if kind == "submit":
            spec = record.get("spec")
            if not isinstance(spec, dict):
                skipped += 1
                continue
            jobs[job_id] = JobRecord(job_id, record.get("ts"),
                                     record.get("tenant") or "default",
                                     spec)
        elif kind == "ack":
            job = jobs.get(job_id)
            state = record.get("state")
            if job is None or state not in ACK_STATES:
                skipped += 1
                continue
            job.state = state
            job.summary = record.get("summary")
        elif kind == "cancel":
            job = jobs.get(job_id)
            if job is None:
                skipped += 1
                continue
            if not job.terminal:
                job.cancel_requested = True
        else:
            skipped += 1
    return jobs, skipped


class JobQueue:
    """The durable queue over one state directory's ``queue.journal``.

    Opening replays the journal (creating it when absent); every
    unacknowledged job is re-enqueued in submit order, counted by the
    ``serve.replayed`` metric and narrated as ``queue.replay`` events.
    """

    def __init__(self, state_dir):
        self.state_dir = os.fspath(state_dir)
        os.makedirs(self.state_dir, exist_ok=True)
        self.path = os.path.join(self.state_dir, _JOURNAL)
        self._lock = threading.Lock()
        self._handle = None
        self.skipped_lines = 0
        self.replayed = 0
        if os.path.exists(self.path):
            self.jobs, self.skipped_lines = replay_journal(self.path)
        else:
            self.jobs = {}
            self._write_record({"rec": "header", "format": QUEUE_FORMAT,
                                "ts": time.time()})
        metrics = obs.get_metrics()
        event_log = obs.get_event_log()
        for job in self.jobs.values():
            if not job.terminal:
                job.replayed = True
                self.replayed += 1
                event_log.event("queue.replay", id=job.id,
                                tenant=job.tenant)
        if metrics.enabled:
            if self.replayed:
                metrics.incr("serve.replayed", self.replayed)
            metrics.gauge("serve.queue_depth", self.depth())

    # ------------------------------------------------------------------
    # Journal writes

    def _write_record(self, record):
        """Append one record durably: single write, flush, fsync."""
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=False) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self):
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # ------------------------------------------------------------------
    # Queue operations

    def submit(self, spec, tenant="default", job_id=None):
        """Durably accept one job; returns its :class:`JobRecord`.

        When this returns, the submit record has been fsynced — the
        202 response the caller is about to send is backed by disk.
        """
        with self._lock:
            if job_id is None:
                job_id = "job-" + os.urandom(8).hex()
            if job_id in self.jobs:
                raise ServeError("duplicate job id %r" % job_id)
            record = JobRecord(job_id, time.time(), tenant, spec)
            self._write_record({"rec": "submit", "id": job_id,
                                "ts": record.ts, "tenant": tenant,
                                "spec": spec})
            self.jobs[job_id] = record
            depth = self._depth_locked()
        obs.get_event_log().event("queue.submit", id=job_id, tenant=tenant)
        metrics = obs.get_metrics()
        if metrics.enabled:
            metrics.gauge("serve.queue_depth", depth)
        return record

    def ack(self, job_id, state, summary=None):
        """Journal a job's terminal state (the atomic acknowledge)."""
        if state not in ACK_STATES:
            raise ValueError("ack state must be one of %r, got %r"
                             % (ACK_STATES, state))
        with self._lock:
            job = self.jobs[job_id]
            if job.terminal:
                raise ServeError("job %s is already %s"
                                 % (job_id, job.state))
            self._write_record({"rec": "ack", "id": job_id,
                                "ts": time.time(), "state": state,
                                "summary": summary})
            job.state = state
            job.summary = summary
            depth = self._depth_locked()
        obs.get_event_log().event("queue.ack", id=job_id, state=state)
        metrics = obs.get_metrics()
        if metrics.enabled:
            metrics.gauge("serve.queue_depth", depth)
        return job

    def request_cancel(self, job_id):
        """Journal a cancel request; returns the job, or ``None`` if
        it is already terminal (nothing to cancel)."""
        with self._lock:
            job = self.jobs[job_id]
            if job.terminal:
                return None
            self._write_record({"rec": "cancel", "id": job_id,
                                "ts": time.time()})
            job.cancel_requested = True
        obs.get_event_log().event("queue.cancel", id=job_id)
        return job

    def claim(self):
        """Pop the oldest queued job into ``running``; ``None`` when
        the queue is empty.  (In-memory transition only — a crash
        while running replays the job as queued.)"""
        with self._lock:
            for job in self.jobs.values():
                if job.state == "queued":
                    job.state = "running"
                    depth = self._depth_locked()
                    break
            else:
                return None
        metrics = obs.get_metrics()
        if metrics.enabled:
            metrics.gauge("serve.queue_depth", depth)
        return job

    def requeue(self, job_id):
        """Put a claimed-but-unfinished job back to ``queued`` (the
        drain path: its checkpoints stay, its ack never happened)."""
        with self._lock:
            job = self.jobs[job_id]
            if not job.terminal:
                job.state = "queued"
            depth = self._depth_locked()
        metrics = obs.get_metrics()
        if metrics.enabled:
            metrics.gauge("serve.queue_depth", depth)
        return job

    # ------------------------------------------------------------------
    # Views

    def get(self, job_id):
        with self._lock:
            return self.jobs.get(job_id)

    def _depth_locked(self):
        return sum(1 for job in self.jobs.values()
                   if job.state == "queued")

    def depth(self):
        """Jobs accepted but not yet running."""
        with self._lock:
            return self._depth_locked()

    def inflight(self, tenant=None):
        """Non-terminal jobs, optionally for one tenant."""
        with self._lock:
            return sum(1 for job in self.jobs.values()
                       if not job.terminal
                       and (tenant is None or job.tenant == tenant))

    def counts(self):
        """``{state: count}`` over every journaled job."""
        with self._lock:
            counts = {}
            for job in self.jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
            return counts

    def snapshot(self):
        """Queue view for ``GET /v1/queue``."""
        with self._lock:
            queued = [job.id for job in self.jobs.values()
                      if job.state == "queued"]
            running = [job.id for job in self.jobs.values()
                       if job.state == "running"]
            quarantine = [job.id for job in self.jobs.values()
                          if job.state == "failed"]
            tenants = {}
            for job in self.jobs.values():
                if not job.terminal:
                    tenants[job.tenant] = tenants.get(job.tenant, 0) + 1
        return {"depth": len(queued), "queued": queued,
                "running": running, "quarantine": quarantine,
                "inflight_by_tenant": tenants,
                "replayed": self.replayed,
                "skipped_lines": self.skipped_lines}
