"""A fault-tolerant measurement service over the batch layer.

``repro serve`` runs the §5 measurement pipeline as a long-lived
daemon: an HTTP/JSON frontend (:mod:`repro.serve.api`) accepts jobs
into a crash-safe persistent queue (:mod:`repro.serve.queue`), an
admission controller applies backpressure before work is accepted
(:mod:`repro.serve.admission`), and a dispatcher executes jobs over
the existing :class:`~repro.batch.engine.BatchEngine` pool with
per-run checkpoints (:mod:`repro.serve.daemon`) — so a ``kill -9`` at
any instant loses no accepted job, and a restart resumes half-finished
jobs from their stored shard digests with bit-identical final bounds.

Zero third-party dependencies, like everything else in the package:
the frontend is the stdlib's threaded ``http.server``, durability is
``fsync`` on an append-only journal, and the measurement math is the
same Kraft-sound accounting (:class:`~repro.core.combine
.IncrementalKraft`) the offline paths use.
"""

from __future__ import annotations

from .admission import REASONS, AdmissionController, Decision
from .api import MAX_BODY_BYTES, make_server
from .daemon import (MeasurementDaemon, ServeConfig, load_progress,
                     validate_spec)
from .queue import (ACK_STATES, QUEUE_FORMAT, JobQueue, JobRecord,
                    replay_journal)

__all__ = [
    "ACK_STATES", "QUEUE_FORMAT", "JobQueue", "JobRecord",
    "replay_journal",
    "REASONS", "AdmissionController", "Decision",
    "MAX_BODY_BYTES", "make_server",
    "MeasurementDaemon", "ServeConfig", "load_progress", "validate_spec",
]
