"""The HTTP/JSON frontend of the measurement service.

A deliberately small, zero-dependency API over the stdlib's threaded
``http.server``.  Handler threads only touch thread-safe daemon
surfaces (the queue's lock, the admission controller's lock, the
live-progress map); all measurement work happens on the dispatcher
thread, so a slow job never blocks a health check.

Routes (see ``docs/service.md`` for the full contract):

=========================  ==========================================
``POST /v1/jobs``          submit a job spec; ``202`` + id, or
                           ``429``/``503`` + ``Retry-After`` when
                           refused, ``400`` on a malformed spec
``GET /v1/jobs/<id>``      status + anytime bounds (+ final result)
``DELETE /v1/jobs/<id>``   request cancellation (``202``; ``409`` if
                           the job is already terminal)
``GET /v1/queue``          depth, inflight, quarantine, limits
``GET /healthz``           liveness (``ok`` / ``draining``)
``GET /metrics``           OpenMetrics exposition for scraping
=========================  ==========================================

Error responses are JSON: ``{"error": reason, ...}``.  Request bodies
are capped (8 MiB → ``413``); anything that is not valid JSON is a
``400``.  The tenant is taken from the spec's ``tenant`` field or the
``X-Tenant`` header (spec wins).
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

#: Submission bodies larger than this are refused with HTTP 413.
MAX_BODY_BYTES = 8 * 1024 * 1024

_OPENMETRICS_TYPE = ("application/openmetrics-text; version=1.0.0; "
                     "charset=utf-8")


class _Handler(BaseHTTPRequestHandler):
    """One request; ``daemon`` is injected via the server instance."""

    server_version = "repro-serve/1"

    # ------------------------------------------------------------------
    # Plumbing

    @property
    def daemon(self):
        return self.server.daemon

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        pass  # the event log narrates; stderr chatter helps nobody

    def _send_json(self, status, doc, headers=()):
        body = (json.dumps(doc, sort_keys=False) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self):
        """The request body as JSON, or ``None`` after an error reply."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0:
            self._send_json(411, {"error": "length_required"})
            return None
        if length > MAX_BODY_BYTES:
            self._send_json(413, {"error": "body_too_large",
                                  "limit_bytes": MAX_BODY_BYTES})
            return None
        body = self.rfile.read(length) if length else b""
        try:
            return json.loads(body) if body else {}
        except (ValueError, UnicodeDecodeError):
            self._send_json(400, {"error": "invalid_json"})
            return None

    # ------------------------------------------------------------------
    # Routes

    def do_POST(self):
        if self.path != "/v1/jobs":
            self._send_json(404, {"error": "not_found"})
            return
        spec = self._read_json()
        if spec is None:
            return
        tenant = self.headers.get("X-Tenant")
        decision, job, message = self.daemon.submit_job(spec,
                                                        tenant=tenant)
        if message is not None:
            self._send_json(400, {"error": "invalid_spec",
                                  "detail": message})
            return
        if not decision.admitted:
            self._send_json(
                decision.status,
                {"error": decision.reason,
                 "retry_after": decision.retry_after},
                headers=[("Retry-After", str(decision.retry_after))])
            return
        self._send_json(202, {"id": job.id, "state": job.state,
                              "tenant": job.tenant})

    def do_GET(self):
        if self.path == "/healthz":
            doc = self.daemon.health()
            self._send_json(200 if doc["status"] == "ok" else 503, doc)
        elif self.path == "/metrics":
            body = self.daemon.metrics_text().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", _OPENMETRICS_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif self.path == "/v1/queue":
            self._send_json(200, self.daemon.queue_status())
        elif self.path.startswith("/v1/jobs/"):
            job_id = self.path[len("/v1/jobs/"):]
            doc = self.daemon.job_status(job_id)
            if doc is None:
                self._send_json(404, {"error": "unknown_job",
                                      "id": job_id})
            else:
                self._send_json(200, doc)
        else:
            self._send_json(404, {"error": "not_found"})

    def do_DELETE(self):
        if not self.path.startswith("/v1/jobs/"):
            self._send_json(404, {"error": "not_found"})
            return
        job_id = self.path[len("/v1/jobs/"):]
        if self.daemon.queue.get(job_id) is None:
            self._send_json(404, {"error": "unknown_job", "id": job_id})
            return
        job = self.daemon.cancel_job(job_id)
        if job is None:
            terminal = self.daemon.queue.get(job_id)
            self._send_json(409, {"error": "already_terminal",
                                  "id": job_id,
                                  "state": terminal.state})
            return
        self._send_json(202, {"id": job_id, "state": job.state,
                              "cancel_requested": True})


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, daemon, address):
        self.daemon = daemon
        super().__init__(address, _Handler)

    def handle_error(self, request, client_address):
        pass  # a client hanging up mid-reply is routine, not a crash


def make_server(daemon, host, port):
    """Bind the frontend (``port=0`` picks an ephemeral port)."""
    return _Server(daemon, (host, port))
