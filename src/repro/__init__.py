"""Quantitative information flow as network flow capacity.

A from-scratch reproduction of McCamant & Ernst, PLDI 2008: measure how
many bits of a program's secret inputs its public outputs reveal, by
modelling an execution as a capacitated flow network and computing a
maximum flow (the bound) and minimum cut (a checkable policy).

Quick start::

    from repro.pytrace import Session

    session = Session()
    pin = session.secret_int(1234, width=16, name="pin")
    ok = pin == 1234            # comparisons stay tracked
    if ok:                      # branching on a secret records 1 bit
        session.output_str("welcome")
    else:
        session.output_str("denied")
    report = session.measure()
    print(report.bits)          # -> 1

The FlowLang frontend (``repro.lang``) runs C-like programs on an
instrumented VM -- the stand-in for the paper's Valgrind-based tool --
and ``repro.apps`` contains re-implementations of the paper's case
studies (battleship, ssh-style auth, image transforms, scheduling,
text drawing, and a block-sorting compressor).
"""

__version__ = "1.0.0"

from . import core, graph, obs, shadow
from .core import (CheckTracker, CutPolicy, FlowPolicy, FlowReport,
                   Location, TraceBuilder, measure_graph, measure_runs)
from .errors import (CompileError, GraphError, LangError, LexError,
                     ParseError, PolicyViolation, RegionError, ReproError,
                     StoreError, TraceError, TypeCheckError, VMError)
from .store import ShardStore

__all__ = [
    "core", "graph", "obs", "shadow",
    "CheckTracker", "CutPolicy", "FlowPolicy", "FlowReport", "Location",
    "ShardStore", "TraceBuilder", "measure_graph", "measure_runs",
    "CompileError", "GraphError", "LangError", "LexError", "ParseError",
    "PolicyViolation", "RegionError", "ReproError", "StoreError",
    "TraceError", "TypeCheckError", "VMError",
]
