"""Python tracing frontend: measure plain Python code.

The paper analyzes binaries; this frontend brings the same analysis to
Python programs (the lower-fidelity path): wrap secret inputs in tracked
values and run ordinary code.  Branching on a secret (``if``, ``while``,
``sorted``...), indexing with it, and every arithmetic operation are
reported to the measurement core automatically.

    from repro.pytrace import Session

    session = Session()
    data = session.secret_bytes(b"hello")
    total = 0
    for byte in data:
        if byte > 96:              # 1-bit implicit flow each
            total += 1
    session.output(total & 0x7)
    print(session.measure().bits)
"""

from .session import Region, Session
from .values import SecretInt, concrete_of, mask_of, width_of

__all__ = ["Region", "Session", "SecretInt", "concrete_of", "mask_of",
           "width_of"]
