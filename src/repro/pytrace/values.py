"""Tracked values for the Python frontend.

A :class:`SecretInt` wraps a concrete unsigned integer together with its
shadow secrecy mask and flow-graph provenance.  Operator overloading
keeps ordinary Python code working unchanged while reporting every
operation to the session's tracker:

* arithmetic/bitwise operators apply the Section 2.3 transfer functions
  and create graph nodes;
* ``__bool__`` fires when a secret value is used as a branch condition
  (``if``, ``while``, ``and``/``or``, ``sorted`` comparisons...) and
  records a 1-bit implicit flow -- the Section 2.2 branch rule;
* ``__index__`` fires when a secret value indexes a list or bytes and
  records an implicit flow of ``popcount(mask)`` bits -- the pointer
  rule.

Results whose mask becomes fully public are returned as plain ``int``,
so untainted computation continues at native speed.
"""

from __future__ import annotations

from ..shadow import transfer
from ..shadow.bitmask import popcount, width_mask


class SecretInt:
    """An unsigned integer with shadow secrecy state.

    Do not construct directly; use :meth:`Session.secret_int` (for
    inputs) -- operations produce further instances automatically.
    """

    __slots__ = ("value", "width", "mask", "prov", "session")

    def __init__(self, session, value, width, mask, prov):
        self.session = session
        w = (1 << width) - 1
        self.value = value & w
        self.width = width
        self.mask = mask & w
        self.prov = prov

    # ------------------------------------------------------------------
    # Introspection

    @property
    def secret_bits(self):
        """Number of possibly-secret bits."""
        return popcount(self.mask)

    def concrete(self):
        """The concrete value, *without* any flow accounting.

        Deliberately named (not ``__int__``) so that accidental
        unwrapping is visible in code review; prefer
        :meth:`~repro.pytrace.session.Session.declassify` when the
        unwrapping is a real policy decision.
        """
        return self.value

    def __repr__(self):
        return "SecretInt(%d, width=%d, secret_bits=%d)" % (
            self.value, self.width, self.secret_bits)

    # ------------------------------------------------------------------
    # Implicit-flow surfaces

    def __bool__(self):
        """Using a secret as a truth value is a 1-bit implicit flow."""
        self.session.branch_on(self)
        return self.value != 0

    def __index__(self):
        """Using a secret as an index is a pointer-style implicit flow."""
        self.session.index_on(self)
        return self.value

    def __hash__(self):
        # Hash-based container lookups probe by value: treat like an
        # indexed access revealing up to all secret bits.
        self.session.index_on(self)
        return hash(self.value)

    # ------------------------------------------------------------------
    # Arithmetic operators

    def _binary(self, other, op, reflected=False):
        return self.session.binary_op(op, self, other, reflected=reflected)

    def __add__(self, other):
        return self._binary(other, "add")

    def __radd__(self, other):
        return self._binary(other, "add", reflected=True)

    def __sub__(self, other):
        return self._binary(other, "sub")

    def __rsub__(self, other):
        return self._binary(other, "sub", reflected=True)

    def __mul__(self, other):
        return self._binary(other, "mul")

    def __rmul__(self, other):
        return self._binary(other, "mul", reflected=True)

    def __floordiv__(self, other):
        return self._binary(other, "div")

    def __rfloordiv__(self, other):
        return self._binary(other, "div", reflected=True)

    def __mod__(self, other):
        return self._binary(other, "mod")

    def __rmod__(self, other):
        return self._binary(other, "mod", reflected=True)

    def __and__(self, other):
        return self._binary(other, "and")

    def __rand__(self, other):
        return self._binary(other, "and", reflected=True)

    def __or__(self, other):
        return self._binary(other, "or")

    def __ror__(self, other):
        return self._binary(other, "or", reflected=True)

    def __xor__(self, other):
        return self._binary(other, "xor")

    def __rxor__(self, other):
        return self._binary(other, "xor", reflected=True)

    def __lshift__(self, other):
        return self._binary(other, "shl")

    def __rlshift__(self, other):
        return self._binary(other, "shl", reflected=True)

    def __rshift__(self, other):
        return self._binary(other, "shr")

    def __rrshift__(self, other):
        return self._binary(other, "shr", reflected=True)

    def __neg__(self):
        return self.session.unary_op("neg", self)

    def __invert__(self):
        return self.session.unary_op("not", self)

    # ------------------------------------------------------------------
    # Comparisons (1-bit results; stay tracked so that branching on the
    # outcome records the implicit flow)

    def __eq__(self, other):
        return self._binary(other, "eq")

    def __ne__(self, other):
        return self._binary(other, "ne")

    def __lt__(self, other):
        return self._binary(other, "ult")

    def __le__(self, other):
        return self._binary(other, "ule")

    def __gt__(self, other):
        return self._binary(other, "ugt")

    def __ge__(self, other):
        return self._binary(other, "uge")


def concrete_of(value):
    """The plain int behind either a SecretInt or an int."""
    if isinstance(value, SecretInt):
        return value.value
    return int(value)


def mask_of(value):
    """The secrecy mask of either a SecretInt or a (public) int."""
    if isinstance(value, SecretInt):
        return value.mask
    return 0


class _WidthInt(int):
    """A plain (public) int carrying an explicit width.

    Produced by :meth:`Session.widen` on public values so that a later
    mixed operation adopts the wider result width.  Arithmetic on it
    degrades to plain ``int`` (width travels through tracked operands).
    """

    width = 0

    def __new__(cls, value, width):
        self = super().__new__(cls, value)
        self.width = width
        return self


def width_of(value, default=0):
    """The width of a tracked/widened value, or a plain int's bit length."""
    explicit = getattr(value, "width", None)
    if explicit is not None:
        return explicit
    return max(int(value).bit_length(), default, 1)


# Re-exported for sessions; keeps `transfer` a private detail of values.
TRANSFER = transfer
