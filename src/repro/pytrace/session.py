"""Trace sessions: the Python frontend's connection to the analysis core.

A :class:`Session` owns a tracker (a
:class:`~repro.core.tracker.TraceBuilder` by default) and hands out
:class:`~repro.pytrace.values.SecretInt` values whose operations report
back to it.  Code locations are derived from the caller's Python source
position, so loops collapse by source line exactly as FlowLang loops
collapse by bytecode location.

Example (the login check from the package docstring)::

    session = Session()
    pin = session.secret_int(1234, width=16)
    if pin == 1234:
        session.output_str("welcome")
    report = session.measure()   # report.bits == 1
"""

from __future__ import annotations

import sys
import time

from .. import obs
from ..core.checking import CheckTracker
from ..core.locations import Location
from ..core.measure import measure_graph
from ..core.tracker import PUBLIC, CollapsingTraceBuilder, TraceBuilder
from ..errors import TraceError
from ..graph.flowgraph import INF
from ..shadow import resolve_backend, transfer
from ..shadow.fast import native_kernels
from ..shadow.bitmask import popcount, width_mask
from .values import SecretInt, _WidthInt, concrete_of, mask_of, width_of

#: Fast-backend binary evaluators: one closure per op instead of the
#: :meth:`Session._eval` string-comparison chain.  Each computes exactly
#: what the reference chain computes for that op (``w`` is the result
#: width mask).
_BIN_EVAL = {
    "add": lambda av, bv, w: (av + bv) & w,
    "sub": lambda av, bv, w: (av - bv) & w,
    "mul": lambda av, bv, w: (av * bv) & w,
    "div": lambda av, bv, w: (av // bv) & w,
    "mod": lambda av, bv, w: (av % bv) & w,
    "and": lambda av, bv, w: av & bv,
    "or": lambda av, bv, w: (av | bv) & w,
    "xor": lambda av, bv, w: (av ^ bv) & w,
    "shl": lambda av, bv, w: (av << bv) & w if bv < 4096 else 0,
    "shr": lambda av, bv, w: (av >> bv) if bv < 4096 else 0,
}

#: Fast-backend comparison evaluators; results are 1-bit, so the fast
#: path can skip result-width computation entirely when both operands
#: are public.
_CMP_EVAL = {
    "eq": lambda av, bv: av == bv,
    "ne": lambda av, bv: av != bv,
    "ult": lambda av, bv: av < bv,
    "ule": lambda av, bv: av <= bv,
    "ugt": lambda av, bv: av > bv,
    "uge": lambda av, bv: av >= bv,
}

#: Evaluator paired with its transfer function, so the fast binary-op
#: path resolves both with a single dict probe.
_CMP_PAIRS = {op: (fn, transfer.BINARY[op]) for op, fn in _CMP_EVAL.items()}
_BIN_PAIRS = {op: (fn, transfer.BINARY[op]) for op, fn in _BIN_EVAL.items()}


class Region:
    """Handle for an enclosure region opened with :meth:`Session.enclose`.

    Inside the ``with`` block, branches and indexed accesses on secrets
    are charged to the region.  After the block, :meth:`wrap` declares a
    value as a region output, returning its post-region tracked form.
    """

    def __init__(self, session, location):
        self._session = session
        self._location = location
        self._exit = None

    @property
    def closed(self):
        return self._exit is not None

    @property
    def had_implicit_flows(self):
        if self._exit is None:
            return False
        return self._exit.had_implicit_flows

    def wrap(self, value, width=None, name=None):
        """Declare ``value`` as an output of this (closed) region.

        Returns a :class:`SecretInt` whose provenance includes the
        region's implicit flows; if no implicit flow occurred the value
        is returned as-is.
        """
        if self._exit is None:
            raise TraceError("Region.wrap() before the with-block closed")
        session = self._session
        width = width if width is not None else width_of(value, default=8)
        old_prov = value.prov if isinstance(value, SecretInt) else PUBLIC
        loc = Location(self._location.unit, self._location.point,
                       name or "out")
        new_prov = session.tracker.region_output(loc, self._exit, old_prov,
                                                 width)
        concrete = concrete_of(value)
        if session.interceptor is not None:
            concrete = session.intercept_value(loc, concrete, width)
        if new_prov is old_prov and not self._exit.had_implicit_flows:
            if (session.interceptor is not None
                    and isinstance(value, SecretInt)):
                return SecretInt(session, concrete, width, value.mask,
                                 value.prov)
            if session.interceptor is not None:
                return concrete
            return value
        if new_prov.mask == 0:
            return concrete
        return SecretInt(session, concrete, width, new_prov.mask, new_prov)

    def wrap_all(self, values, width=8, name=None):
        """:meth:`wrap` applied to a list.

        All elements share one output location (like one store
        instruction executing per element), so collapsed graph size
        stays independent of the list length.
        """
        return [self.wrap(v, width=width, name=name or "out")
                for v in values]


class _RegionContext:
    __slots__ = ("session", "region")

    def __init__(self, session, region):
        self.session = session
        self.region = region

    def __enter__(self):
        session = self.session
        session.tracker.enter_region(self.region._location)
        depth = session.tracker.region_depth
        if depth > session._max_region_depth:
            session._max_region_depth = depth
        return self.region

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None:
            # Unwind without validating: the exception already aborts
            # the analysis; leaving the tracker region keeps it usable.
            try:
                self.region._exit = self.session.tracker.leave_region(
                    self.region._location)
            except TraceError:
                pass
            return False
        self.region._exit = self.session.tracker.leave_region(
            self.region._location)
        return False


class _Scope:
    __slots__ = ("session", "name")

    def __init__(self, session, name):
        self.session = session
        self.name = name

    def __enter__(self):
        self.session.tracker.push_call(self.name)
        return self

    def __exit__(self, exc_type, exc, tb):
        self.session.tracker.pop_call()
        return False


class Session:
    """A tracing session for plain Python code.

    Args:
        tracker: defaults to a fresh :class:`TraceBuilder`; pass a
            :class:`~repro.core.checking.CheckTracker` for deployment
            checking or a ``NullTracker`` for lockstep runs.
        interceptor: optional lockstep interceptor (Section 6.3).
        online_collapse: collapse the graph by code location *while
            tracing* (Section 5.2 online): ``"context"`` (or ``True``)
            merges by (location, calling-context hash), ``"location"``
            by location only, so the live graph stays coverage-sized on
            long runs.  Mutually exclusive with ``tracker``.
        location_depth: how many frames up to look for the caller's
            source position (the default suits direct use).
        backend: ``"reference"``, ``"fast"``, ``"native"``, or
            ``"auto"``/``None`` (consult ``REPRO_BACKEND``, then
            auto-detect).  The fast backend swaps in dict-dispatched
            operator evaluation and bulk secret introduction; the
            native backend additionally evaluates each binary
            operation and its transfer function as one compiled
            :mod:`repro._native` kernel call (operands outside the
            machine-word fast path fall back to the pure pairs,
            counted as ``shadow.native.fallbacks``).  Reports are
            bit-identical across backends (see ``docs/backends.md``).
    """

    def __init__(self, tracker=None, interceptor=None, online_collapse=None,
                 backend=None):
        if online_collapse:
            if tracker is not None:
                raise TraceError(
                    "pass either tracker or online_collapse, not both")
            mode = "context" if online_collapse is True else online_collapse
            if mode not in ("context", "location"):
                raise TraceError(
                    "online_collapse must be 'context' or 'location', "
                    "got %r" % (online_collapse,))
            tracker = CollapsingTraceBuilder(
                context_sensitive=(mode == "context"), backend=backend)
        self.tracker = tracker if tracker is not None else TraceBuilder()
        self.interceptor = interceptor
        self.backend = resolve_backend(backend)
        self._location_sites = {}
        self._fused_sites = {}
        if self.backend in ("fast", "native"):
            # Bound-method swap: callers (SecretInt dunders, user code)
            # keep identical call depths, so location derivation is
            # unchanged.
            self.binary_op = self._binary_op_fast
            self.secret_bytes = self._secret_bytes_fast
            self._caller_location = self._caller_location_fast
            if self.backend == "native":
                kern = native_kernels()
                if kern is not None:
                    self._nk_binary = kern.binary_kernel
                    self._nk_op_ids = kern.OP_IDS
                    self.binary_op = self._binary_op_native
                    self.secret_bytes = self._secret_bytes_native
            if isinstance(self.tracker, TraceBuilder):
                # These inline the TraceBuilder delegations (indexed /
                # branch are defined as implicit_flow calls), so they
                # only apply to trackers with those semantics.  With a
                # fast collapsing tracker the fused variants also
                # inline its repeat-cache hit path.
                fused = (isinstance(self.tracker, CollapsingTraceBuilder)
                         and self.tracker._fast)
                self.index_on = (self._index_on_fused if fused
                                 else self._index_on_fast)
                if interceptor is None:
                    self.branch_on = (self._branch_on_fused if fused
                                      else self._branch_on_fast)
        self.outputs = []
        self._locations = {}
        self._finished = False
        # Always-on frontend counters (plain int bumps are cheap enough
        # to keep unconditionally); published to repro.obs at finish().
        self._shadow_ops = 0
        self._implicit_events = 0
        self._max_region_depth = 0
        self._native_calls = 0
        self._native_fallbacks = 0
        # Session lifetime, recorded retroactively as a pytrace.session
        # span at finish() (the span covers __init__ through finish).
        self._t0_epoch = time.time()
        self._t0_perf = time.perf_counter()

    # ------------------------------------------------------------------
    # Locations

    def _caller_location(self, depth, detail=None):
        frame = sys._getframe(depth)
        key = (frame.f_code.co_filename, frame.f_lineno, detail)
        loc = self._locations.get(key)
        if loc is None:
            loc = Location(frame.f_code.co_filename.rsplit("/", 1)[-1],
                           frame.f_lineno, detail)
            self._locations[key] = loc
        return loc

    def _caller_location_fast(self, depth, detail=None):
        # Keyed by (code object, bytecode offset) instead of
        # (filename, line): avoids the lazy f_lineno computation on
        # hits.  Distinct sites on one line intern to equal Locations,
        # so labels and buckets are unchanged.
        frame = sys._getframe(depth)
        key = (frame.f_code, frame.f_lasti, detail)
        loc = self._location_sites.get(key)
        if loc is None:
            loc = Location(frame.f_code.co_filename.rsplit("/", 1)[-1],
                           frame.f_lineno, detail)
            self._location_sites[key] = loc
        return loc

    def scope(self, name):
        """Context manager adding ``name`` to the calling-context hash."""
        return _Scope(self, name)

    # ------------------------------------------------------------------
    # Inputs

    def secret_int(self, value, width=8, name=None, category=None):
        """Introduce a secret input value of ``width`` bits.

        ``category`` optionally tags the secret's class (e.g.
        ``"alice"`` vs ``"bob"``) for the §10.1 per-category analysis;
        see :meth:`measure_by_category`.
        """
        loc = self._caller_location(2, name or "secret")
        prov = self.tracker.secret_value(loc, width, category=category)
        if prov.mask == 0:
            # A checking tracker may declassify at the cut right away.
            return value & width_mask(width)
        return SecretInt(self, value, width, prov.mask, prov)

    def secret_bytes(self, data, name=None, category=None):
        """Introduce a secret byte string as a list of tracked u8s."""
        loc = self._caller_location(2, name or "secret_bytes")
        out = []
        for byte in data:
            prov = self.tracker.secret_value(loc, 8, category=category)
            if prov.mask == 0:
                out.append(byte)
            else:
                out.append(SecretInt(self, byte, 8, prov.mask, prov))
        return out

    def _secret_bytes_fast(self, data, name=None, category=None):
        """Fast-backend :meth:`secret_bytes`: one bulk tracker call.

        Produces the same tracked values and the same graph as the
        per-byte reference loop; with a collapsing tracker the bulk
        call is O(1) in ``len(data)``.  Counted under
        ``shadow.fast.batch_ops`` / ``shadow.fast.batch_values``.
        """
        loc = self._caller_location(2, name or "secret_bytes")
        secret_values = getattr(self.tracker, "secret_values", None)
        if secret_values is None:
            # Checking trackers have no bulk entry point; take the
            # reference path event by event.
            out = []
            for byte in data:
                prov = self.tracker.secret_value(loc, 8, category=category)
                if prov.mask == 0:
                    out.append(byte)
                else:
                    out.append(SecretInt(self, byte, 8, prov.mask, prov))
            return out
        provs = secret_values(loc, 8, len(data), category=category)
        metrics = obs.get_metrics()
        if metrics.enabled:
            metrics.incr("shadow.fast.batch_ops")
            metrics.incr("shadow.fast.batch_values", len(provs))
        return [byte if prov.mask == 0
                else SecretInt(self, byte, 8, prov.mask, prov)
                for byte, prov in zip(data, provs)]

    def _secret_bytes_native(self, data, name=None, category=None):
        """Native-backend :meth:`secret_bytes`.

        Identical events to the fast path (the bulk work happens in
        the tracker, which is shared by both backends); additionally
        sizes the batch into the ``shadow.native.batch_size``
        histogram.
        """
        loc = self._caller_location(2, name or "secret_bytes")
        secret_values = getattr(self.tracker, "secret_values", None)
        if secret_values is None:
            # Checking trackers have no bulk entry point; take the
            # reference path event by event.
            out = []
            for byte in data:
                prov = self.tracker.secret_value(loc, 8, category=category)
                if prov.mask == 0:
                    out.append(byte)
                else:
                    out.append(SecretInt(self, byte, 8, prov.mask, prov))
            return out
        provs = secret_values(loc, 8, len(data), category=category)
        metrics = obs.get_metrics()
        if metrics.enabled:
            metrics.incr("shadow.fast.batch_ops")
            metrics.incr("shadow.fast.batch_values", len(provs))
            metrics.observe("shadow.native.batch_size", len(provs))
        return [byte if prov.mask == 0
                else SecretInt(self, byte, 8, prov.mask, prov)
                for byte, prov in zip(data, provs)]

    def public(self, value):
        """Explicitly mark a plain value as public (identity helper)."""
        return concrete_of(value)

    def widen(self, value, width):
        """Zero-extend a value to ``width`` bits (a free copy).

        Use before accumulating sums that must not wrap at the operand
        width: ``total = session.widen(0, 16)`` then ``total += byte``.
        """
        if isinstance(value, SecretInt):
            if width < value.width:
                raise TraceError("widen() cannot narrow %d -> %d bits"
                                 % (value.width, width))
            return SecretInt(self, value.value, width, value.mask,
                             value.prov)
        return _WidthInt(int(value), width)

    # ------------------------------------------------------------------
    # Operations (called from SecretInt)

    #: Upper bound on how far a left shift may widen a value.
    MAX_WIDTH = 4096

    @staticmethod
    def _result_width(op, a, b, av, bv):
        """Width of the result under FlowLang-like unsigned semantics.

        Python-frontend arithmetic is *non-wrapping* where Python's own
        semantics would be (sums and products widen; left shifts widen
        by the public shift amount), while masking with a plain
        constant narrows to the constant's width and a plain modulus
        narrows to the modulus's width.  Subtraction keeps the max
        operand width and wraps there (unsigned underflow), so C-style
        down-counters behave; truncate explicitly (``& mask``) for
        C-style wrapping elsewhere.
        """
        wa = width_of(a)
        wb = width_of(b, default=1)
        width = max(wa, wb)
        cap = Session.MAX_WIDTH
        if op == "add":
            return min(width + 1, cap)
        if op == "mul":
            return min(wa + wb, cap)
        if op == "shl":
            if isinstance(b, SecretInt):
                return min(wa + (1 << wb) - 1, cap)
            return min(wa + bv, cap)
        if op == "and" and not isinstance(b, SecretInt):
            return max(min(width, bv.bit_length()), 1)
        if op == "and" and not isinstance(a, SecretInt):
            return max(min(width, av.bit_length()), 1)
        if op == "mod" and not isinstance(b, SecretInt) and bv > 0:
            return max(min(width, (bv - 1).bit_length()), 1)
        return width

    def binary_op(self, op, a, b, reflected=False):
        if reflected:
            a, b = b, a
        self._shadow_ops += 1
        av, bv = concrete_of(a), concrete_of(b)
        am, bm = mask_of(a), mask_of(b)
        width = self._result_width(op, a, b, av, bv)
        value = self._eval(op, av, bv, width)
        mask = transfer.binary_mask(op, av, am, bv, bm, width)
        result_width = 1 if op in transfer.COMPARISONS else width
        mask &= width_mask(result_width)
        loc = self._caller_location(3, op)
        if mask == 0:
            if self.interceptor is not None:
                value = self.intercept_value(loc, value, result_width)
            return value
        operands = []
        if isinstance(a, SecretInt):
            operands.append(a.prov)
        if isinstance(b, SecretInt):
            operands.append(b.prov)
        prov = self.tracker.operation(loc, mask, operands)
        if prov.mask == 0:
            return value  # declassified at a cut (checking mode)
        return SecretInt(self, value, result_width, mask, prov)

    def _binary_op_fast(self, op, a, b, reflected=False):
        """Fast-backend :meth:`binary_op`.

        Identical results to the reference: same concrete values, same
        transfer masks, same tracker events.  The speedups are dict
        dispatch instead of the ``_eval`` if-chain, operand unwrapping
        and caller-site lookup inlined, skipping the transfer function
        when both operands are public (it returns 0 there), and
        skipping result-width computation for all-public comparisons
        (their result is 1-bit regardless).
        """
        if reflected:
            a, b = b, a
        self._shadow_ops += 1
        sa = isinstance(a, SecretInt)
        sb = isinstance(b, SecretInt)
        if sa:
            av, am = a.value, a.mask
        else:
            av, am = int(a), 0
        if sb:
            bv, bm = b.value, b.mask
        else:
            bv, bm = int(b), 0
        pair = _CMP_PAIRS.get(op)
        if pair is not None:
            value = int(pair[0](av, bv))
            if am == 0 and bm == 0:
                if self.interceptor is None:
                    return value
                return self.intercept_value(
                    self._caller_location(3, op), value, 1)
            # Comparisons take the transfer width from the widest
            # operand (``_result_width`` falls through to that).
            if sa:
                wa = a.width
            else:
                wa = getattr(a, "width", None)
                if wa is None:
                    wa = max(av.bit_length(), 1)
            if sb:
                wb = b.width
            else:
                wb = getattr(b, "width", None)
                if wb is None:
                    wb = max(bv.bit_length(), 1)
            mask = pair[1](av, am, bv, bm, wa if wa >= wb else wb) & 1
            result_width = 1
        else:
            pair = _BIN_PAIRS.get(op)
            if pair is None:
                raise TraceError("unsupported operation %r" % op)
            width = self._result_width(op, a, b, av, bv)
            w = width_mask(width)
            value = pair[0](av, bv, w)
            if am == 0 and bm == 0:
                if self.interceptor is None:
                    return value
                return self.intercept_value(
                    self._caller_location(3, op), value, width)
            mask = pair[1](av, am, bv, bm, width) & w
            result_width = width
        # Inline _caller_location_fast (same frame as the reference's
        # ``_caller_location(3, op)`` resolves: the operator dunder).
        frame = sys._getframe(2)
        site = (frame.f_code, frame.f_lasti, op)
        loc = self._location_sites.get(site)
        if loc is None:
            loc = Location(frame.f_code.co_filename.rsplit("/", 1)[-1],
                           frame.f_lineno, op)
            self._location_sites[site] = loc
        if mask == 0:
            if self.interceptor is not None:
                value = self.intercept_value(loc, value, result_width)
            return value
        if sa:
            operands = [a.prov, b.prov] if sb else [a.prov]
        else:
            operands = [b.prov] if sb else []
        prov = self.tracker.operation(loc, mask, operands)
        if prov.mask == 0:
            return value  # declassified at a cut (checking mode)
        return SecretInt(self, value, result_width, mask, prov)

    def _binary_op_native(self, op, a, b, reflected=False):
        """Native-backend :meth:`binary_op`.

        The fast path's structure with the evaluate+transfer pair
        fused into one compiled :mod:`repro._native` kernel call.
        Operands or widths outside the machine-word fast path punt
        back to the pure-Python pairs (counted as
        ``shadow.native.fallbacks``), including division by zero, so
        every exception is raised by the same code as the reference.
        The kernel is bit-identical where it applies, so values,
        masks, and tracker events match the other backends exactly.
        """
        if reflected:
            a, b = b, a
        self._shadow_ops += 1
        self._native_calls += 1
        sa = isinstance(a, SecretInt)
        sb = isinstance(b, SecretInt)
        if sa:
            av, am = a.value, a.mask
        else:
            av, am = int(a), 0
        if sb:
            bv, bm = b.value, b.mask
        else:
            bv, bm = int(b), 0
        pair = _CMP_PAIRS.get(op)
        if pair is not None:
            res = self._nk_binary(self._nk_op_ids[op], av, am, bv, bm, 1)
            if res is None:
                self._native_fallbacks += 1
                value = int(pair[0](av, bv))
                mask = (pair[1](av, am, bv, bm, 1) & 1) if (am or bm) else 0
            else:
                value, mask = res
            if am == 0 and bm == 0:
                if self.interceptor is None:
                    return value
                return self.intercept_value(
                    self._caller_location(3, op), value, 1)
            result_width = 1
        else:
            pair = _BIN_PAIRS.get(op)
            if pair is None:
                raise TraceError("unsupported operation %r" % op)
            width = self._result_width(op, a, b, av, bv)
            res = self._nk_binary(self._nk_op_ids[op], av, am, bv, bm,
                                  width)
            if res is None:
                self._native_fallbacks += 1
                w = width_mask(width)
                value = pair[0](av, bv, w)
                mask = (pair[1](av, am, bv, bm, width) & w) if (am or bm) \
                    else 0
            else:
                value, mask = res
            if am == 0 and bm == 0:
                if self.interceptor is None:
                    return value
                return self.intercept_value(
                    self._caller_location(3, op), value, width)
            result_width = width
        # Inline _caller_location_fast (same frame as the reference's
        # ``_caller_location(3, op)`` resolves: the operator dunder).
        frame = sys._getframe(2)
        site = (frame.f_code, frame.f_lasti, op)
        loc = self._location_sites.get(site)
        if loc is None:
            loc = Location(frame.f_code.co_filename.rsplit("/", 1)[-1],
                           frame.f_lineno, op)
            self._location_sites[site] = loc
        if mask == 0:
            if self.interceptor is not None:
                value = self.intercept_value(loc, value, result_width)
            return value
        if sa:
            operands = [a.prov, b.prov] if sb else [a.prov]
        else:
            operands = [b.prov] if sb else []
        prov = self.tracker.operation(loc, mask, operands)
        if prov.mask == 0:
            return value  # declassified at a cut (checking mode)
        return SecretInt(self, value, result_width, mask, prov)

    def unary_op(self, op, a):
        self._shadow_ops += 1
        av, am = concrete_of(a), mask_of(a)
        width = width_of(a)
        w = width_mask(width)
        value = ((-av) & w) if op == "neg" else ((~av) & w)
        mask = transfer.unary_mask(op, av, am, width)
        loc = self._caller_location(3, op)
        if mask == 0:
            return value
        prov = self.tracker.operation(loc, mask, [a.prov])
        if prov.mask == 0:
            return value
        return SecretInt(self, value, width, mask, prov)

    @staticmethod
    def _eval(op, av, bv, width):
        w = width_mask(width)
        if op == "add":
            return (av + bv) & w
        if op == "sub":
            return (av - bv) & w
        if op == "mul":
            return (av * bv) & w
        if op == "div":
            return (av // bv) & w
        if op == "mod":
            return (av % bv) & w
        if op == "and":
            return av & bv
        if op == "or":
            return (av | bv) & w
        if op == "xor":
            return (av ^ bv) & w
        if op == "shl":
            return (av << bv) & w if bv < 4096 else 0
        if op == "shr":
            return av >> bv if bv < 4096 else 0
        if op == "eq":
            return int(av == bv)
        if op == "ne":
            return int(av != bv)
        if op == "ult":
            return int(av < bv)
        if op == "ule":
            return int(av <= bv)
        if op == "ugt":
            return int(av > bv)
        if op == "uge":
            return int(av >= bv)
        raise TraceError("unsupported operation %r" % op)

    # ------------------------------------------------------------------
    # Implicit flows (called from SecretInt dunders)

    def branch_on(self, secret):
        if secret.mask == 0:
            return
        self._implicit_events += 1
        loc = self._caller_location(3, "branch")
        if self.interceptor is not None:
            # Lockstep: substitute the recorded branch outcome.
            new_value = self.intercept_branch(loc, secret.value)
            secret.value = new_value
        self.tracker.branch(loc, secret.prov)

    def index_on(self, secret):
        if secret.mask == 0:
            return
        self._implicit_events += 1
        loc = self._caller_location(3, "index")
        self.tracker.indexed(loc, secret.prov)

    def _branch_on_fast(self, secret):
        # branch_on with TraceBuilder.branch inlined (one implicit flow
        # of ``bits_for_arms(2) == 1`` bit); bound only when no
        # interceptor is installed.
        if secret.mask == 0:
            return
        self._implicit_events += 1
        frame = sys._getframe(2)
        key = (frame.f_code, frame.f_lasti, "branch")
        loc = self._location_sites.get(key)
        if loc is None:
            loc = Location(frame.f_code.co_filename.rsplit("/", 1)[-1],
                           frame.f_lineno, "branch")
            self._location_sites[key] = loc
        self.tracker.implicit_flow(loc, secret.prov, 1)

    def _index_on_fast(self, secret):
        # index_on with _caller_location and TraceBuilder.indexed
        # (an implicit flow of the index's secret bits) inlined.
        if secret.mask == 0:
            return
        self._implicit_events += 1
        frame = sys._getframe(2)
        key = (frame.f_code, frame.f_lasti, "index")
        loc = self._location_sites.get(key)
        if loc is None:
            loc = Location(frame.f_code.co_filename.rsplit("/", 1)[-1],
                           frame.f_lineno, "index")
            self._location_sites[key] = loc
        prov = secret.prov
        self.tracker.implicit_flow(loc, prov, prov.bits)

    # The fused handlers inline
    # :meth:`CollapsingTraceBuilder._implicit_flow_fast`'s repeat-cache
    # hit path (bit-identical: same counters, same INF saturation);
    # anything else falls back to the tracker method.  The bodies are
    # duplicated rather than shared -- a helper would re-add the call
    # frame these exist to remove.

    def _branch_on_fused(self, secret):
        if secret.mask == 0:
            return
        self._implicit_events += 1
        frame = sys._getframe(2)
        prov = secret.prov
        tracker = self.tracker
        regions = tracker._regions
        region = regions[-1] if regions else None
        target = region.node if region is not None else tracker._pending
        key = (frame.f_code, frame.f_lasti, prov.node, target,
               tracker._active_ctx)
        entry = self._fused_sites.get(key)
        if entry is not None and not tracker._finished:
            tracker._implicit_events += 1
            tracker._virtual_edges += 1
            tracker._collapser.merge_hits += 1
            if region is not None:
                region.bits += 1
            cap = entry.capacity
            entry.capacity = cap + 1 if cap < INF else INF
            return
        self._fused_fallback(frame, "branch", prov, 1, target, key)

    def _index_on_fused(self, secret):
        if secret.mask == 0:
            return
        self._implicit_events += 1
        frame = sys._getframe(2)
        prov = secret.prov
        tracker = self.tracker
        regions = tracker._regions
        region = regions[-1] if regions else None
        target = region.node if region is not None else tracker._pending
        key = (frame.f_code, frame.f_lasti, prov.node, target,
               tracker._active_ctx)
        entry = self._fused_sites.get(key)
        if entry is not None and not tracker._finished:
            bits = prov.bits
            tracker._implicit_events += 1
            tracker._virtual_edges += 1
            tracker._collapser.merge_hits += 1
            if region is not None:
                region.bits += bits
            cap = entry.capacity
            entry.capacity = (INF if cap >= INF or bits >= INF
                              else cap + bits)
            return
        self._fused_fallback(frame, "index", prov, prov.bits, target, key)

    def _fused_fallback(self, frame, detail, prov, bits, target, fused_key):
        """Cold path of the fused handlers: resolve the location, run
        the full tracker event, then remember the bucket it landed in."""
        site = (frame.f_code, frame.f_lasti, detail)
        loc = self._location_sites.get(site)
        if loc is None:
            loc = Location(frame.f_code.co_filename.rsplit("/", 1)[-1],
                           frame.f_lineno, detail)
            self._location_sites[site] = loc
        tracker = self.tracker
        tracker.implicit_flow(loc, prov, bits)
        if target is not None:
            edge = tracker._implicit_cache.get(
                (loc, prov.node, target, tracker._active_ctx))
            if edge is not None:
                self._fused_sites[fused_key] = edge

    # ------------------------------------------------------------------
    # Regions

    def enclose(self, name=None):
        """Open an enclosure region (a ``with`` context manager).

        Declare the region's outputs after the block with
        :meth:`Region.wrap` / :meth:`Region.wrap_all`.
        """
        loc = self._caller_location(2, name or "enclose")
        return _RegionContext(self, Region(self, loc))

    # ------------------------------------------------------------------
    # Outputs and declassification

    def output(self, *values, name=None):
        """A public output event carrying ``values``."""
        loc = self._caller_location(2, name or "output")
        provs = [v.prov for v in values if isinstance(v, SecretInt)]
        concrete = [concrete_of(v) for v in values]
        self.outputs.extend(concrete)
        if self.interceptor is not None:
            for c in concrete:
                self.interceptor.output(c)
        self.tracker.output(loc, provs)

    def output_bytes(self, data, name=None):
        """Output a byte sequence (possibly of tracked bytes) as one event."""
        loc = self._caller_location(2, name or "output_bytes")
        provs = [v.prov for v in data if isinstance(v, SecretInt)]
        concrete = [concrete_of(v) & 0xFF for v in data]
        self.outputs.extend(concrete)
        if self.interceptor is not None:
            self.interceptor.output(bytes(concrete))
        self.tracker.output(loc, provs)
        return bytes(concrete)

    def output_str(self, text, name=None):
        """Output a constant string (public event; no data flow)."""
        loc = self._caller_location(2, name or "output_str")
        self.outputs.append(text)
        if self.interceptor is not None:
            self.interceptor.output(text)
        self.tracker.output(loc, [])

    def declassify(self, value):
        """Deliberately release a value: returns the plain int."""
        if isinstance(value, SecretInt):
            self.tracker.declassify(value.prov)
            return value.value
        return value

    # ------------------------------------------------------------------
    # Lockstep plumbing

    def intercept_value(self, loc, value, width):
        if self.interceptor.at_cut("value", loc):
            return self.interceptor.intercept("value", loc, value, width)
        return value

    def intercept_branch(self, loc, value):
        if self.interceptor.at_cut("implicit", loc):
            return self.interceptor.intercept("implicit", loc, value, 1)
        return value

    # ------------------------------------------------------------------
    # Finishing

    def finish(self, exit_observable=True):
        """End the trace; returns the tracker's result (graph/result)."""
        if self._finished:
            raise TraceError("session already finished")
        self._finished = True
        metrics = obs.get_metrics()
        if metrics.enabled:
            metrics.incr("pytrace.shadow_ops", self._shadow_ops)
            metrics.incr("pytrace.implicit_events", self._implicit_events)
            metrics.gauge_max("pytrace.enclosure_depth_max",
                              self._max_region_depth)
            if self._native_calls:
                metrics.incr("shadow.native.kernel_calls",
                             self._native_calls)
            if self._native_fallbacks:
                metrics.incr("shadow.native.fallbacks",
                             self._native_fallbacks)
        if self._native_fallbacks:
            obs.get_event_log().event("backend.fallback",
                                      kind="shadow.native",
                                      count=self._native_fallbacks)
        result = self.tracker.finish(exit_observable=exit_observable)
        obs.get_tracer().record(
            "pytrace.session", self._t0_epoch,
            time.perf_counter() - self._t0_perf,
            shadow_ops=self._shadow_ops,
            implicit_events=self._implicit_events)
        return result

    def measure(self, collapse=None, exit_observable=True):
        """Finish and measure; returns a FlowReport.

        ``collapse`` defaults to the tracker's own online-collapse mode
        when one is set (so an ``online_collapse="location"`` session
        measures by location without repeating the mode here) and to
        ``"context"`` otherwise.  Only valid for measuring sessions
        (TraceBuilder-backed).
        """
        if collapse is None:
            collapse = getattr(self.tracker, "collapse_mode", None) or "context"
        graph = self.finish(exit_observable=exit_observable)
        return measure_graph(graph, collapse=collapse,
                             stats=self.tracker.stats)

    def snapshot_bits(self, collapse="location"):
        """The flow bound so far, without finishing the session.

        The pytrace counterpart of the §8.1 real-time mode: call after
        interesting outputs to watch the bound grow.  Only meaningful
        for measuring sessions.
        """
        if self._finished:
            raise TraceError("session already finished")
        return measure_graph(self.tracker.graph, collapse=collapse).bits

    def measure_by_category(self, collapse="none", exit_observable=True,
                            jobs=1):
        """Finish and measure per secret category (§10.1).

        Returns a :class:`~repro.core.multisecret.CategoryBounds`; only
        meaningful when inputs were tagged with ``category=...``.
        ``jobs > 1`` solves the categories in parallel worker processes
        with identical results.
        """
        from ..core.multisecret import measure_by_category
        graph = self.finish(exit_observable=exit_observable)
        return measure_by_category(graph, self.tracker.category_edges,
                                   collapse=collapse,
                                   stats=self.tracker.stats, jobs=jobs)

    def check_result(self, exit_observable=True):
        """Finish a checking session; returns its CheckResult."""
        if not isinstance(self.tracker, CheckTracker):
            raise TraceError("check_result() needs a CheckTracker session")
        return self.finish(exit_observable=exit_observable)
