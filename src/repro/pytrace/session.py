"""Trace sessions: the Python frontend's connection to the analysis core.

A :class:`Session` owns a tracker (a
:class:`~repro.core.tracker.TraceBuilder` by default) and hands out
:class:`~repro.pytrace.values.SecretInt` values whose operations report
back to it.  Code locations are derived from the caller's Python source
position, so loops collapse by source line exactly as FlowLang loops
collapse by bytecode location.

Example (the login check from the package docstring)::

    session = Session()
    pin = session.secret_int(1234, width=16)
    if pin == 1234:
        session.output_str("welcome")
    report = session.measure()   # report.bits == 1
"""

from __future__ import annotations

import sys
import time

from .. import obs
from ..core.checking import CheckTracker
from ..core.locations import Location
from ..core.measure import measure_graph
from ..core.tracker import PUBLIC, CollapsingTraceBuilder, TraceBuilder
from ..errors import TraceError
from ..shadow import transfer
from ..shadow.bitmask import popcount, width_mask
from .values import SecretInt, _WidthInt, concrete_of, mask_of, width_of


class Region:
    """Handle for an enclosure region opened with :meth:`Session.enclose`.

    Inside the ``with`` block, branches and indexed accesses on secrets
    are charged to the region.  After the block, :meth:`wrap` declares a
    value as a region output, returning its post-region tracked form.
    """

    def __init__(self, session, location):
        self._session = session
        self._location = location
        self._exit = None

    @property
    def closed(self):
        return self._exit is not None

    @property
    def had_implicit_flows(self):
        if self._exit is None:
            return False
        return self._exit.had_implicit_flows

    def wrap(self, value, width=None, name=None):
        """Declare ``value`` as an output of this (closed) region.

        Returns a :class:`SecretInt` whose provenance includes the
        region's implicit flows; if no implicit flow occurred the value
        is returned as-is.
        """
        if self._exit is None:
            raise TraceError("Region.wrap() before the with-block closed")
        session = self._session
        width = width if width is not None else width_of(value, default=8)
        old_prov = value.prov if isinstance(value, SecretInt) else PUBLIC
        loc = Location(self._location.unit, self._location.point,
                       name or "out")
        new_prov = session.tracker.region_output(loc, self._exit, old_prov,
                                                 width)
        concrete = concrete_of(value)
        if session.interceptor is not None:
            concrete = session.intercept_value(loc, concrete, width)
        if new_prov is old_prov and not self._exit.had_implicit_flows:
            if (session.interceptor is not None
                    and isinstance(value, SecretInt)):
                return SecretInt(session, concrete, width, value.mask,
                                 value.prov)
            if session.interceptor is not None:
                return concrete
            return value
        if new_prov.mask == 0:
            return concrete
        return SecretInt(session, concrete, width, new_prov.mask, new_prov)

    def wrap_all(self, values, width=8, name=None):
        """:meth:`wrap` applied to a list.

        All elements share one output location (like one store
        instruction executing per element), so collapsed graph size
        stays independent of the list length.
        """
        return [self.wrap(v, width=width, name=name or "out")
                for v in values]


class _RegionContext:
    __slots__ = ("session", "region")

    def __init__(self, session, region):
        self.session = session
        self.region = region

    def __enter__(self):
        session = self.session
        session.tracker.enter_region(self.region._location)
        depth = session.tracker.region_depth
        if depth > session._max_region_depth:
            session._max_region_depth = depth
        return self.region

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None:
            # Unwind without validating: the exception already aborts
            # the analysis; leaving the tracker region keeps it usable.
            try:
                self.region._exit = self.session.tracker.leave_region(
                    self.region._location)
            except TraceError:
                pass
            return False
        self.region._exit = self.session.tracker.leave_region(
            self.region._location)
        return False


class _Scope:
    __slots__ = ("session", "name")

    def __init__(self, session, name):
        self.session = session
        self.name = name

    def __enter__(self):
        self.session.tracker.push_call(self.name)
        return self

    def __exit__(self, exc_type, exc, tb):
        self.session.tracker.pop_call()
        return False


class Session:
    """A tracing session for plain Python code.

    Args:
        tracker: defaults to a fresh :class:`TraceBuilder`; pass a
            :class:`~repro.core.checking.CheckTracker` for deployment
            checking or a ``NullTracker`` for lockstep runs.
        interceptor: optional lockstep interceptor (Section 6.3).
        online_collapse: collapse the graph by code location *while
            tracing* (Section 5.2 online): ``"context"`` (or ``True``)
            merges by (location, calling-context hash), ``"location"``
            by location only, so the live graph stays coverage-sized on
            long runs.  Mutually exclusive with ``tracker``.
        location_depth: how many frames up to look for the caller's
            source position (the default suits direct use).
    """

    def __init__(self, tracker=None, interceptor=None, online_collapse=None):
        if online_collapse:
            if tracker is not None:
                raise TraceError(
                    "pass either tracker or online_collapse, not both")
            mode = "context" if online_collapse is True else online_collapse
            if mode not in ("context", "location"):
                raise TraceError(
                    "online_collapse must be 'context' or 'location', "
                    "got %r" % (online_collapse,))
            tracker = CollapsingTraceBuilder(
                context_sensitive=(mode == "context"))
        self.tracker = tracker if tracker is not None else TraceBuilder()
        self.interceptor = interceptor
        self.outputs = []
        self._locations = {}
        self._finished = False
        # Always-on frontend counters (plain int bumps are cheap enough
        # to keep unconditionally); published to repro.obs at finish().
        self._shadow_ops = 0
        self._implicit_events = 0
        self._max_region_depth = 0
        # Session lifetime, recorded retroactively as a pytrace.session
        # span at finish() (the span covers __init__ through finish).
        self._t0_epoch = time.time()
        self._t0_perf = time.perf_counter()

    # ------------------------------------------------------------------
    # Locations

    def _caller_location(self, depth, detail=None):
        frame = sys._getframe(depth)
        key = (frame.f_code.co_filename, frame.f_lineno, detail)
        loc = self._locations.get(key)
        if loc is None:
            loc = Location(frame.f_code.co_filename.rsplit("/", 1)[-1],
                           frame.f_lineno, detail)
            self._locations[key] = loc
        return loc

    def scope(self, name):
        """Context manager adding ``name`` to the calling-context hash."""
        return _Scope(self, name)

    # ------------------------------------------------------------------
    # Inputs

    def secret_int(self, value, width=8, name=None, category=None):
        """Introduce a secret input value of ``width`` bits.

        ``category`` optionally tags the secret's class (e.g.
        ``"alice"`` vs ``"bob"``) for the §10.1 per-category analysis;
        see :meth:`measure_by_category`.
        """
        loc = self._caller_location(2, name or "secret")
        prov = self.tracker.secret_value(loc, width, category=category)
        if prov.mask == 0:
            # A checking tracker may declassify at the cut right away.
            return value & width_mask(width)
        return SecretInt(self, value, width, prov.mask, prov)

    def secret_bytes(self, data, name=None, category=None):
        """Introduce a secret byte string as a list of tracked u8s."""
        loc = self._caller_location(2, name or "secret_bytes")
        out = []
        for byte in data:
            prov = self.tracker.secret_value(loc, 8, category=category)
            if prov.mask == 0:
                out.append(byte)
            else:
                out.append(SecretInt(self, byte, 8, prov.mask, prov))
        return out

    def public(self, value):
        """Explicitly mark a plain value as public (identity helper)."""
        return concrete_of(value)

    def widen(self, value, width):
        """Zero-extend a value to ``width`` bits (a free copy).

        Use before accumulating sums that must not wrap at the operand
        width: ``total = session.widen(0, 16)`` then ``total += byte``.
        """
        if isinstance(value, SecretInt):
            if width < value.width:
                raise TraceError("widen() cannot narrow %d -> %d bits"
                                 % (value.width, width))
            return SecretInt(self, value.value, width, value.mask,
                             value.prov)
        return _WidthInt(int(value), width)

    # ------------------------------------------------------------------
    # Operations (called from SecretInt)

    #: Upper bound on how far a left shift may widen a value.
    MAX_WIDTH = 4096

    @staticmethod
    def _result_width(op, a, b, av, bv):
        """Width of the result under FlowLang-like unsigned semantics.

        Python-frontend arithmetic is *non-wrapping* where Python's own
        semantics would be (sums and products widen; left shifts widen
        by the public shift amount), while masking with a plain
        constant narrows to the constant's width and a plain modulus
        narrows to the modulus's width.  Subtraction keeps the max
        operand width and wraps there (unsigned underflow), so C-style
        down-counters behave; truncate explicitly (``& mask``) for
        C-style wrapping elsewhere.
        """
        wa = width_of(a)
        wb = width_of(b, default=1)
        width = max(wa, wb)
        cap = Session.MAX_WIDTH
        if op == "add":
            return min(width + 1, cap)
        if op == "mul":
            return min(wa + wb, cap)
        if op == "shl":
            if isinstance(b, SecretInt):
                return min(wa + (1 << wb) - 1, cap)
            return min(wa + bv, cap)
        if op == "and" and not isinstance(b, SecretInt):
            return max(min(width, bv.bit_length()), 1)
        if op == "and" and not isinstance(a, SecretInt):
            return max(min(width, av.bit_length()), 1)
        if op == "mod" and not isinstance(b, SecretInt) and bv > 0:
            return max(min(width, (bv - 1).bit_length()), 1)
        return width

    def binary_op(self, op, a, b, reflected=False):
        if reflected:
            a, b = b, a
        self._shadow_ops += 1
        av, bv = concrete_of(a), concrete_of(b)
        am, bm = mask_of(a), mask_of(b)
        width = self._result_width(op, a, b, av, bv)
        value = self._eval(op, av, bv, width)
        mask = transfer.binary_mask(op, av, am, bv, bm, width)
        result_width = 1 if op in transfer.COMPARISONS else width
        mask &= width_mask(result_width)
        loc = self._caller_location(3, op)
        if mask == 0:
            if self.interceptor is not None:
                value = self.intercept_value(loc, value, result_width)
            return value
        operands = []
        if isinstance(a, SecretInt):
            operands.append(a.prov)
        if isinstance(b, SecretInt):
            operands.append(b.prov)
        prov = self.tracker.operation(loc, mask, operands)
        if prov.mask == 0:
            return value  # declassified at a cut (checking mode)
        return SecretInt(self, value, result_width, mask, prov)

    def unary_op(self, op, a):
        self._shadow_ops += 1
        av, am = concrete_of(a), mask_of(a)
        width = width_of(a)
        w = width_mask(width)
        value = ((-av) & w) if op == "neg" else ((~av) & w)
        mask = transfer.unary_mask(op, av, am, width)
        loc = self._caller_location(3, op)
        if mask == 0:
            return value
        prov = self.tracker.operation(loc, mask, [a.prov])
        if prov.mask == 0:
            return value
        return SecretInt(self, value, width, mask, prov)

    @staticmethod
    def _eval(op, av, bv, width):
        w = width_mask(width)
        if op == "add":
            return (av + bv) & w
        if op == "sub":
            return (av - bv) & w
        if op == "mul":
            return (av * bv) & w
        if op == "div":
            return (av // bv) & w
        if op == "mod":
            return (av % bv) & w
        if op == "and":
            return av & bv
        if op == "or":
            return (av | bv) & w
        if op == "xor":
            return (av ^ bv) & w
        if op == "shl":
            return (av << bv) & w if bv < 4096 else 0
        if op == "shr":
            return av >> bv if bv < 4096 else 0
        if op == "eq":
            return int(av == bv)
        if op == "ne":
            return int(av != bv)
        if op == "ult":
            return int(av < bv)
        if op == "ule":
            return int(av <= bv)
        if op == "ugt":
            return int(av > bv)
        if op == "uge":
            return int(av >= bv)
        raise TraceError("unsupported operation %r" % op)

    # ------------------------------------------------------------------
    # Implicit flows (called from SecretInt dunders)

    def branch_on(self, secret):
        if secret.mask == 0:
            return
        self._implicit_events += 1
        loc = self._caller_location(3, "branch")
        if self.interceptor is not None:
            # Lockstep: substitute the recorded branch outcome.
            new_value = self.intercept_branch(loc, secret.value)
            secret.value = new_value
        self.tracker.branch(loc, secret.prov)

    def index_on(self, secret):
        if secret.mask == 0:
            return
        self._implicit_events += 1
        loc = self._caller_location(3, "index")
        self.tracker.indexed(loc, secret.prov)

    # ------------------------------------------------------------------
    # Regions

    def enclose(self, name=None):
        """Open an enclosure region (a ``with`` context manager).

        Declare the region's outputs after the block with
        :meth:`Region.wrap` / :meth:`Region.wrap_all`.
        """
        loc = self._caller_location(2, name or "enclose")
        return _RegionContext(self, Region(self, loc))

    # ------------------------------------------------------------------
    # Outputs and declassification

    def output(self, *values, name=None):
        """A public output event carrying ``values``."""
        loc = self._caller_location(2, name or "output")
        provs = [v.prov for v in values if isinstance(v, SecretInt)]
        concrete = [concrete_of(v) for v in values]
        self.outputs.extend(concrete)
        if self.interceptor is not None:
            for c in concrete:
                self.interceptor.output(c)
        self.tracker.output(loc, provs)

    def output_bytes(self, data, name=None):
        """Output a byte sequence (possibly of tracked bytes) as one event."""
        loc = self._caller_location(2, name or "output_bytes")
        provs = [v.prov for v in data if isinstance(v, SecretInt)]
        concrete = [concrete_of(v) & 0xFF for v in data]
        self.outputs.extend(concrete)
        if self.interceptor is not None:
            self.interceptor.output(bytes(concrete))
        self.tracker.output(loc, provs)
        return bytes(concrete)

    def output_str(self, text, name=None):
        """Output a constant string (public event; no data flow)."""
        loc = self._caller_location(2, name or "output_str")
        self.outputs.append(text)
        if self.interceptor is not None:
            self.interceptor.output(text)
        self.tracker.output(loc, [])

    def declassify(self, value):
        """Deliberately release a value: returns the plain int."""
        if isinstance(value, SecretInt):
            self.tracker.declassify(value.prov)
            return value.value
        return value

    # ------------------------------------------------------------------
    # Lockstep plumbing

    def intercept_value(self, loc, value, width):
        if self.interceptor.at_cut("value", loc):
            return self.interceptor.intercept("value", loc, value, width)
        return value

    def intercept_branch(self, loc, value):
        if self.interceptor.at_cut("implicit", loc):
            return self.interceptor.intercept("implicit", loc, value, 1)
        return value

    # ------------------------------------------------------------------
    # Finishing

    def finish(self, exit_observable=True):
        """End the trace; returns the tracker's result (graph/result)."""
        if self._finished:
            raise TraceError("session already finished")
        self._finished = True
        metrics = obs.get_metrics()
        if metrics.enabled:
            metrics.incr("pytrace.shadow_ops", self._shadow_ops)
            metrics.incr("pytrace.implicit_events", self._implicit_events)
            metrics.gauge_max("pytrace.enclosure_depth_max",
                              self._max_region_depth)
        result = self.tracker.finish(exit_observable=exit_observable)
        obs.get_tracer().record(
            "pytrace.session", self._t0_epoch,
            time.perf_counter() - self._t0_perf,
            shadow_ops=self._shadow_ops,
            implicit_events=self._implicit_events)
        return result

    def measure(self, collapse=None, exit_observable=True):
        """Finish and measure; returns a FlowReport.

        ``collapse`` defaults to the tracker's own online-collapse mode
        when one is set (so an ``online_collapse="location"`` session
        measures by location without repeating the mode here) and to
        ``"context"`` otherwise.  Only valid for measuring sessions
        (TraceBuilder-backed).
        """
        if collapse is None:
            collapse = getattr(self.tracker, "collapse_mode", None) or "context"
        graph = self.finish(exit_observable=exit_observable)
        return measure_graph(graph, collapse=collapse,
                             stats=self.tracker.stats)

    def snapshot_bits(self, collapse="location"):
        """The flow bound so far, without finishing the session.

        The pytrace counterpart of the §8.1 real-time mode: call after
        interesting outputs to watch the bound grow.  Only meaningful
        for measuring sessions.
        """
        if self._finished:
            raise TraceError("session already finished")
        return measure_graph(self.tracker.graph, collapse=collapse).bits

    def measure_by_category(self, collapse="none", exit_observable=True,
                            jobs=1):
        """Finish and measure per secret category (§10.1).

        Returns a :class:`~repro.core.multisecret.CategoryBounds`; only
        meaningful when inputs were tagged with ``category=...``.
        ``jobs > 1`` solves the categories in parallel worker processes
        with identical results.
        """
        from ..core.multisecret import measure_by_category
        graph = self.finish(exit_observable=exit_observable)
        return measure_by_category(graph, self.tracker.category_edges,
                                   collapse=collapse,
                                   stats=self.tracker.stats, jobs=jobs)

    def check_result(self, exit_observable=True):
        """Finish a checking session; returns its CheckResult."""
        if not isinstance(self.tracker, CheckTracker):
            raise TraceError("check_result() needs a CheckTracker session")
        return self.finish(exit_observable=exit_observable)
