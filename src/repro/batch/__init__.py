"""Parallel batch measurement (process-pool fan-out).

The measurement workloads of Sections 3.2, 8, and 10.1 are
embarrassingly parallel between executions; this package fans them out
across worker processes while guaranteeing results bit-identical to the
serial pipeline.  See :mod:`repro.batch.engine` for the execution model
and :mod:`repro.batch.runs` for the frontends; the higher-level entry
points are ``measure_runs(..., jobs=N)``, ``combine_runs(...,
jobs=N)``, ``measure_by_category(..., jobs=N)``, and the ``repro
batch`` CLI subcommand.

Fault tolerance is configured with a :class:`FaultPolicy` (per-job
timeouts, bounded retries of transient pool failures, and the
``on_error`` raise/collect switch); failed jobs surface as
:class:`JobFailure` records and partial results are explicitly marked.
"""

from __future__ import annotations

from .engine import (ON_ERROR_MODES, PENDING, BatchEngine, FaultPolicy,
                     JobFailure)
from .runs import (BATCH_COLLAPSE_MODES, BatchResult, ProgramResult,
                   StoreCombineResult, combine_graphs_jobs,
                   combine_store_jobs, measure_by_category_jobs,
                   measure_program_runs, measure_programs)

__all__ = [
    "BatchEngine", "FaultPolicy", "JobFailure", "ON_ERROR_MODES", "PENDING",
    "BATCH_COLLAPSE_MODES", "BatchResult", "ProgramResult",
    "StoreCombineResult", "combine_graphs_jobs", "combine_store_jobs",
    "measure_by_category_jobs", "measure_program_runs",
    "measure_programs",
]
