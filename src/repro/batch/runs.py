"""Batch frontends: multi-run, multi-secret, and corpus measurement.

Each frontend pairs a module-level *job function* (what a worker
process executes) with a parent-side merge.  Workers trace with online
collapse on, so what crosses the process boundary is a coverage-sized
collapsed graph in the ``flowgraph-v1`` text format plus plain-data
summaries — never VM state or label objects.  The parent re-combines
worker graphs with :func:`~repro.graph.collapse.collapse_graphs`, which
keeps the combined bound Kraft-sound across the whole batch exactly as
the serial Section 3.2 pipeline does.

``jobs=1`` runs the very same job functions in-process (including the
dump/load round trip), so the parallel and serial paths cannot drift
apart: the equivalence suite in ``tests/batch`` asserts bit-identical
bounds, cuts, and combined-graph serializations.

Fault tolerance: every frontend accepts ``timeout``/``retries``/
``on_error`` (or a prebuilt :class:`~repro.batch.engine.FaultPolicy`
via ``faults=``).  Under ``on_error="collect"`` a failed run no longer
aborts the batch — but the Section 3 Kraft-inequality merge makes
*silently* skipping a failed run unsound, so degradation is explicit:
failed runs are excluded from the combined graph, reported in a
``failures`` field, the Kraft sum is computed only over the succeeded
runs, and the report is marked ``partial`` so no caller can mistake it
for a complete bound.
"""

from __future__ import annotations

import io
import time

from .. import obs
from ..core.combine import StreamingCombiner, kraft_satisfied, kraft_sum
from ..core.measure import measure_graph, measure_runs
from ..core.multisecret import CategoryBounds, _restricted_copy
from ..core.tracker import CollapsingTraceBuilder
from ..errors import BatchError, GraphError
from ..graph.collapse import CollapseStats, collapse_graphs
from ..graph.maxflow import dinic_max_flow
from ..graph.mincut import MinCut
from ..graph.serialize import dump_graph, load_graph
from ..lang.runner import compile_cached, execute, measure
from ..shadow import resolve_backend
from .engine import BatchEngine, FaultPolicy, JobFailure

#: Collapse modes a batch worker can trace under.  ``"none"`` is
#: excluded on purpose: workers must ship *collapsed* graphs, or the
#: transfer volume would be runtime-sized instead of coverage-sized.
BATCH_COLLAPSE_MODES = ("context", "location")


def _check_collapse(collapse):
    if collapse not in BATCH_COLLAPSE_MODES:
        raise ValueError("batch collapse must be one of %r, got %r"
                         % (BATCH_COLLAPSE_MODES, collapse))


def _fault_policy(faults, timeout, retries, on_error):
    """One :class:`FaultPolicy` from either form of configuration."""
    if faults is not None:
        if timeout is not None or retries or on_error != "raise":
            raise ValueError("pass either faults= or individual "
                             "timeout/retries/on_error kwargs, not both")
        return faults
    return FaultPolicy(timeout=timeout, retries=retries, on_error=on_error)


def _corrupt_graph_failure(index, error, metrics):
    """A worker shipped home an unloadable graph: that is *its* failure.

    Counted under ``batch.failures`` like any other job failure, so the
    parent's accounting stays consistent with what it actually merged.
    """
    if metrics.enabled:
        metrics.incr("batch.failures")
    return JobFailure(index, type(error).__name__,
                      "corrupt worker graph: %s" % error)


def _mark_partial(report, failed, attempted):
    report.partial = True
    report.warnings.append(
        "partial result: %d of %d runs failed and were excluded; the "
        "combined bound covers only the %d surviving runs (the §3 "
        "Kraft guarantee says nothing about the failed runs)"
        % (failed, attempted, attempted - failed))
    return report


def _dump_text(graph, category_edges=None):
    buffer = io.StringIO()
    dump_graph(graph, buffer, category_edges=category_edges)
    return buffer.getvalue()


def _load_text(text):
    return load_graph(io.StringIO(text))


def _chunks(count, parts):
    """Contiguous, order-preserving ``(lo, hi)`` slices of ``range(count)``.

    Sizes differ by at most one.  Contiguity matters for more than
    balance: chunked collapsing is bit-identical to whole-set collapsing
    only when every chunk preserves the original graph order.
    """
    parts = min(parts, count)
    base, extra = divmod(count, parts)
    bounds = []
    lo = 0
    for index in range(parts):
        hi = lo + base + (1 if index < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


# ----------------------------------------------------------------------
# Multi-run measurement of one program (Section 3.2 over a secret list)


class BatchResult:
    """A batch of runs measured together: combined report + per-run bounds.

    ``per_run_bits`` are each *succeeded* run's independent bounds
    (solved on its own collapsed graph); ``report`` is the Kraft-sound
    combined bound over those runs.  ``kraft_sum``/``per_run_sound``
    expose the Section 3.2 arithmetic for the independent bounds, so
    callers can see when the combined bound is doing real work.

    ``failures`` holds one :class:`~repro.batch.engine.JobFailure` per
    failed run (only under ``on_error="collect"``; the default policy
    raises instead).  When any run failed, ``partial`` is ``True``, the
    combined report is marked partial, and every derived quantity —
    ``bits``, ``kraft_sum``, ``per_run_sound`` — covers the surviving
    runs only.
    """

    def __init__(self, report, per_run_bits, jobs, failures=()):
        self.report = report
        self.per_run_bits = list(per_run_bits)
        self.jobs = jobs
        self.failures = list(failures)

    @property
    def bits(self):
        """The combined (Kraft-sound) bound in bits — partial when
        ``failures`` is non-empty."""
        return self.report.bits

    @property
    def runs(self):
        """Succeeded runs (the ones the combined bound covers)."""
        return len(self.per_run_bits)

    @property
    def attempted(self):
        """All runs the batch was asked for, failed ones included."""
        return len(self.per_run_bits) + len(self.failures)

    @property
    def partial(self):
        """Whether any run failed (and was excluded from the bound)."""
        return bool(self.failures)

    @property
    def kraft_sum(self):
        """Exact ``sum_i 2**-k(i)`` over the independent per-run bounds."""
        return kraft_sum(self.per_run_bits)

    @property
    def per_run_sound(self):
        """Whether the independent bounds alone satisfy Kraft (§3.2)."""
        return kraft_satisfied(self.per_run_bits)

    def __repr__(self):
        return "BatchResult(runs=%d, bits=%d, jobs=%d%s)" % (
            self.runs, self.bits, self.jobs,
            ", failures=%d" % len(self.failures) if self.failures else "")


def _trace_run_job(payload):
    """Trace one (secret, public) run; returns a picklable summary.

    Traces with online collapse so the shipped graph is coverage-sized,
    measures the run's independent bound on it, and serializes it for
    the parent-side combination.
    """
    (source, filename, secret, public, collapse, entry, max_steps,
     deadline_seconds, backend) = payload
    compiled = compile_cached(source, filename)
    tracker = CollapsingTraceBuilder(
        context_sensitive=(collapse == "context"), backend=backend)
    with obs.get_metrics().phase("trace"):
        vm, graph = execute(compiled, secret, public, tracker, entry=entry,
                            max_steps=max_steps,
                            deadline_seconds=deadline_seconds,
                            backend=backend)
    report = measure_graph(graph, collapse=collapse, stats=tracker.stats,
                           warnings=vm.warnings)
    return {
        "graph": _dump_text(graph),
        "stats": dict(tracker.stats),
        "warnings": list(vm.warnings),
        "bits": report.bits,
    }


def measure_program_runs(source, secret_inputs, public_input=b"",
                         collapse="context", jobs=1, filename="<source>",
                         entry="main", max_steps=None, deadline_seconds=None,
                         timeout=None, retries=0, on_error="raise",
                         faults=None, warm_start=True, backend=None):
    """Measure one program over many secrets, ``jobs`` runs at a time.

    The batch analogue of :func:`repro.lang.runner.measure_many`: each
    secret is traced (online-collapsed) in a worker, the workers'
    serialized graphs are combined in the parent for the Section 3.2
    Kraft-sound bound.  ``max_steps``/``deadline_seconds`` bound each
    run inside its worker (a run past its deadline raises ``VMTimeout``
    — a non-transient job failure); ``timeout``/``retries``/``on_error``
    configure the engine's :class:`~repro.batch.engine.FaultPolicy`.
    Returns a :class:`BatchResult` — partial, with a ``failures`` list,
    when runs failed under ``on_error="collect"``.

    With ``warm_start`` (the default) the parent merge folds the worker
    graphs in one at a time through a
    :class:`~repro.core.combine.StreamingCombiner`, re-solving each
    intermediate combined graph from the previous residual — the
    ``maxflow.warm_start.*`` counters report the reuse.  The final
    bound and combined graph are identical to the one-shot combination
    (``warm_start=False``, the ``repro batch --no-warm-start`` path);
    only the tie-broken placement of the minimum cut may differ.

    ``backend`` selects each worker's VM execution backend
    (``"reference"``/``"fast"``/``"auto"``; see ``docs/backends.md``).
    It is resolved once in the parent so every worker runs the same
    backend regardless of per-process environment.
    """
    _check_collapse(collapse)
    backend = resolve_backend(backend)
    secrets = [bytes(secret) for secret in secret_inputs]
    payloads = [(source, filename, secret, bytes(public_input), collapse,
                 entry, max_steps, deadline_seconds, backend)
                for secret in secrets]
    engine = BatchEngine(jobs, faults=_fault_policy(faults, timeout,
                                                    retries, on_error))
    outcomes = engine.map(_trace_run_job, payloads)
    metrics = obs.get_metrics()
    t0 = time.perf_counter()
    graphs = []
    stats_list = []
    warnings = []
    bits = []
    failures = []
    shipped_bytes = 0
    with obs.get_tracer().span("batch.merge", runs=len(outcomes)):
        for index, outcome in enumerate(outcomes):
            if isinstance(outcome, JobFailure):
                failures.append(outcome)
                continue
            shipped_bytes += len(outcome["graph"].encode("utf-8"))
            try:
                graph = _load_text(outcome["graph"])
            except GraphError as error:
                if not engine.faults.collecting:
                    raise
                failures.append(_corrupt_graph_failure(index, error,
                                                       metrics))
                continue
            graphs.append(graph)
            stats_list.append(outcome["stats"])
            warnings.extend(outcome["warnings"])
            bits.append(outcome["bits"])
        if not graphs:
            raise BatchError(
                "all %d runs failed; no combined bound exists (first "
                "failure: %s)" % (len(outcomes), failures[0]))
        if warm_start:
            combiner = StreamingCombiner(
                context_sensitive=(collapse == "context"))
            span = obs.get_tracer().span("measure.runs", runs=len(graphs),
                                         collapse=collapse, jobs=1)
            with span, metrics.phase("measure"):
                for graph in graphs:
                    combiner.add(graph)
                span.set(bits=combiner.bits)
                report = combiner.report(stats_list=stats_list,
                                         warnings=warnings)
        else:
            report = measure_runs(graphs, collapse=collapse,
                                  stats_list=stats_list, warnings=warnings)
        if failures:
            _mark_partial(report, len(failures), len(outcomes))
    if metrics.enabled:
        metrics.incr("batch.graphs_bytes", shipped_bytes)
        metrics.add_seconds("batch.merge_seconds",
                            time.perf_counter() - t0)
    return BatchResult(report, bits, engine.jobs, failures)


# ----------------------------------------------------------------------
# Chunked multi-run combination (parallel collapse_graphs)


def _collapse_chunk_job(payload):
    """Combine one contiguous chunk of serialized graphs in a worker."""
    texts, context_sensitive = payload
    chunk = [_load_text(text) for text in texts]
    combined, stats = collapse_graphs(chunk,
                                      context_sensitive=context_sensitive)
    return {
        "graph": _dump_text(combined),
        "original_nodes": stats.original_nodes,
        "original_edges": stats.original_edges,
    }


def combine_graphs_jobs(graphs, context_sensitive=True, jobs=1,
                        timeout=None, retries=0, on_error="raise",
                        faults=None):
    """Parallel :func:`~repro.graph.collapse.collapse_graphs`.

    Splits the graph list into contiguous chunks, combines each chunk
    in a worker, then combines the chunk results in the parent.  The
    union-find construction is associative over ordered contiguous
    chunks, so the result is identical (same node numbering, edge
    order, capacities, and labels-as-serialized) to combining the whole
    list at once; the reported :class:`CollapseStats` count the
    original inputs, as the serial call would.

    Under ``on_error="collect"``, a failed chunk job is *excluded*:
    the combined graph covers only the surviving chunks' inputs, and
    the failures are reported in ``stats.failures`` (callers must
    treat such a combination as partial — the §3 guarantee does not
    cover the excluded runs).  At least one chunk must survive, or a
    :class:`~repro.errors.BatchError` is raised.
    """
    graphs = list(graphs)
    if not graphs:
        raise ValueError("combine_graphs_jobs needs at least one graph")
    engine = BatchEngine(jobs, faults=_fault_policy(faults, timeout,
                                                    retries, on_error))
    parts = min(engine.jobs, len(graphs))
    if parts <= 1:
        return collapse_graphs(graphs, context_sensitive=context_sensitive)
    texts = [_dump_text(graph) for graph in graphs]
    payloads = [(texts[lo:hi], context_sensitive)
                for lo, hi in _chunks(len(texts), parts)]
    outcomes = engine.map(_collapse_chunk_job, payloads)
    metrics = obs.get_metrics()
    t0 = time.perf_counter()
    failures = []
    survivors = []
    with obs.get_tracer().span("batch.merge", chunks=len(outcomes)):
        for index, outcome in enumerate(outcomes):
            if isinstance(outcome, JobFailure):
                failures.append(outcome)
                continue
            try:
                partial = _load_text(outcome["graph"])
            except GraphError as error:
                if not engine.faults.collecting:
                    raise
                failures.append(_corrupt_graph_failure(index, error,
                                                       metrics))
                continue
            survivors.append((partial, outcome))
        if not survivors:
            raise BatchError(
                "all %d combination chunks failed (first failure: %s)"
                % (len(outcomes), failures[0]))
        combined, _ = collapse_graphs([graph for graph, _ in survivors],
                                      context_sensitive=context_sensitive)
    stats = CollapseStats(
        sum(outcome["original_nodes"] for _, outcome in survivors),
        sum(outcome["original_edges"] for _, outcome in survivors),
        combined.num_nodes, combined.num_edges, failures=failures)
    if metrics.enabled:
        shipped = sum(len(text.encode("utf-8")) for text in texts)
        shipped += sum(len(outcome["graph"].encode("utf-8"))
                       for _, outcome in survivors)
        metrics.incr("batch.graphs_bytes", shipped)
        metrics.add_seconds("batch.merge_seconds",
                            time.perf_counter() - t0)
    return combined, stats


# ----------------------------------------------------------------------
# Multi-secret category sweep (Section 10.1)


def _category_solve_job(payload):
    """Solve one category's restricted graph; returns the cut mask.

    Ships back only ``(category, flow_value, source_side_mask)`` — the
    parent rebuilds the :class:`~repro.graph.mincut.MinCut` against its
    own in-memory graph, so the cut carries the caller's original label
    objects, exactly as the serial sweep's does.
    """
    text, category, category_edges = payload
    graph = _load_text(text)
    restricted = _restricted_copy(graph, category_edges, [category])
    value, residual = dinic_max_flow(restricted)
    return category, value, residual.source_side()


def measure_by_category_jobs(graph, category_edges, collapse="none",
                             stats=None, jobs=1, timeout=None, retries=0,
                             on_error="raise", faults=None):
    """Parallel per-category sweep; see
    :func:`repro.core.multisecret.measure_by_category`.

    One job per category solves the restricted graph; the joint bound
    is measured in the parent.  The per-category solves depend only on
    graph structure and capacities, so the serialized copy a worker
    solves yields the same flow value and the same canonical cut mask
    as the in-memory graph would.

    Under ``on_error="collect"``, categories whose solve job failed are
    missing from ``per_category`` and reported in the returned
    :class:`~repro.core.multisecret.CategoryBounds`' ``failures``.
    """
    text = _dump_text(graph)
    categories = sorted(category_edges)
    payloads = [(text, category, dict(category_edges))
                for category in categories]
    engine = BatchEngine(jobs, faults=_fault_policy(faults, timeout,
                                                    retries, on_error))
    outcomes = engine.map(_category_solve_job, payloads)
    metrics = obs.get_metrics()
    t0 = time.perf_counter()
    per_category = {}
    reports = {}
    failures = []
    with obs.get_tracer().span("batch.merge", categories=len(outcomes)):
        for outcome in outcomes:
            if isinstance(outcome, JobFailure):
                failures.append(outcome)
                continue
            category, value, mask = outcome
            restricted = _restricted_copy(graph, category_edges, [category])
            per_category[category] = value
            reports[category] = MinCut(restricted, mask)
        joint = measure_graph(graph, collapse=collapse, stats=stats)
    if metrics.enabled:
        metrics.incr("batch.graphs_bytes",
                     len(text.encode("utf-8")) * len(payloads))
        metrics.add_seconds("batch.merge_seconds",
                            time.perf_counter() - t0)
    return CategoryBounds(per_category, joint.bits,
                          {"joint": joint, **reports}, failures=failures)


# ----------------------------------------------------------------------
# Corpus measurement (one job per program)


class ProgramResult:
    """Picklable summary of one corpus program's measurement."""

    __slots__ = ("name", "bits", "output_bytes", "warnings", "cut",
                 "seconds")

    def __init__(self, name, bits, output_bytes, warnings, cut, seconds):
        self.name = name
        self.bits = bits
        self.output_bytes = output_bytes
        #: run warnings, verbatim
        self.warnings = warnings
        #: the min cut as ``(kind, location, capacity)`` triples
        self.cut = cut
        #: in-worker wall time for this program
        self.seconds = seconds

    def __repr__(self):
        return "ProgramResult(%r, bits=%d, cut=%d)" % (
            self.name, self.bits, len(self.cut))


def _measure_program_job(payload):
    """Measure one program of a corpus (online-collapsed trace)."""
    (name, source, secret, public, collapse, entry, max_steps,
     deadline_seconds) = payload
    t0 = time.perf_counter()
    result = measure(source, secret, public, collapse=collapse,
                     entry=entry, filename=name, online=True,
                     max_steps=max_steps,
                     deadline_seconds=deadline_seconds)
    report = result.report
    cut = []
    for cut_edge in report.mincut.edges:
        label = cut_edge.label
        if label is None:
            cut.append((None, None, cut_edge.capacity))
        else:
            cut.append((label.kind, str(label.location),
                        cut_edge.capacity))
    return ProgramResult(name, report.bits, result.output_bytes,
                         list(report.warnings or []), cut,
                         time.perf_counter() - t0)


def measure_programs(items, collapse="context", jobs=1, entry="main",
                     max_steps=None, deadline_seconds=None, timeout=None,
                     retries=0, on_error="raise", faults=None):
    """Measure a corpus of independent programs, ``jobs`` at a time.

    ``items`` yields ``(name, source, secret_input)`` or ``(name,
    source, secret_input, public_input)`` tuples.  Unlike the multi-run
    frontends nothing is combined — the programs are unrelated, so the
    jobs ship back :class:`ProgramResult` summaries, in input order.
    Under ``on_error="collect"``, a failed program's slot holds its
    :class:`~repro.batch.engine.JobFailure` instead (check with
    ``isinstance``); the other programs' results are unaffected.
    """
    _check_collapse(collapse)
    payloads = []
    for item in items:
        if len(item) == 3:
            name, source, secret = item
            public = b""
        else:
            name, source, secret, public = item
        payloads.append((name, source, bytes(secret), bytes(public),
                         collapse, entry, max_steps, deadline_seconds))
    engine = BatchEngine(jobs, faults=_fault_policy(faults, timeout,
                                                    retries, on_error))
    return engine.map(_measure_program_job, payloads)
