"""Batch frontends: multi-run, multi-secret, and corpus measurement.

Each frontend pairs a module-level *job function* (what a worker
process executes) with a parent-side merge.  Workers trace with online
collapse on, so what crosses the process boundary is a coverage-sized
collapsed graph in the ``flowgraph-v1`` text format plus plain-data
summaries — never VM state or label objects.  The parent re-combines
worker graphs with :func:`~repro.graph.collapse.collapse_graphs`, which
keeps the combined bound Kraft-sound across the whole batch exactly as
the serial Section 3.2 pipeline does.

``jobs=1`` runs the very same job functions in-process (including the
dump/load round trip), so the parallel and serial paths cannot drift
apart: the equivalence suite in ``tests/batch`` asserts bit-identical
bounds, cuts, and combined-graph serializations.

Fault tolerance: every frontend accepts ``timeout``/``retries``/
``on_error`` (or a prebuilt :class:`~repro.batch.engine.FaultPolicy`
via ``faults=``).  Under ``on_error="collect"`` a failed run no longer
aborts the batch — but the Section 3 Kraft-inequality merge makes
*silently* skipping a failed run unsound, so degradation is explicit:
failed runs are excluded from the combined graph, reported in a
``failures`` field, the Kraft sum is computed only over the succeeded
runs, and the report is marked ``partial`` so no caller can mistake it
for a complete bound.
"""

from __future__ import annotations

import io
import time

from .. import obs
from ..core.combine import (IncrementalKraft, StreamingCombiner,
                            kraft_satisfied, kraft_sum)
from ..core.measure import measure_graph, measure_runs
from ..core.multisecret import CategoryBounds, _restricted_copy
from ..core.tracker import CollapsingTraceBuilder
from ..errors import BatchError, GraphError, StoreError
from ..graph.collapse import CollapseStats, collapse_graphs
from ..graph.maxflow import dinic_max_flow
from ..graph.mincut import MinCut
from ..graph.serialize import dump_graph, load_graph
from ..lang.runner import compile_cached, execute, measure
from ..shadow import resolve_backend
from ..store import ShardStore
from .engine import BatchEngine, FaultPolicy, JobFailure

#: Collapse modes a batch worker can trace under.  ``"none"`` is
#: excluded on purpose: workers must ship *collapsed* graphs, or the
#: transfer volume would be runtime-sized instead of coverage-sized.
BATCH_COLLAPSE_MODES = ("context", "location")


def _check_collapse(collapse):
    if collapse not in BATCH_COLLAPSE_MODES:
        raise ValueError("batch collapse must be one of %r, got %r"
                         % (BATCH_COLLAPSE_MODES, collapse))


def _fault_policy(faults, timeout, retries, on_error):
    """One :class:`FaultPolicy` from either form of configuration."""
    if faults is not None:
        if timeout is not None or retries or on_error != "raise":
            raise ValueError("pass either faults= or individual "
                             "timeout/retries/on_error kwargs, not both")
        return faults
    return FaultPolicy(timeout=timeout, retries=retries, on_error=on_error)


def _corrupt_graph_failure(index, error, metrics):
    """A worker shipped home an unloadable graph: that is *its* failure.

    Counted under ``batch.failures`` like any other job failure, so the
    parent's accounting stays consistent with what it actually merged.
    """
    if metrics.enabled:
        metrics.incr("batch.failures")
    return JobFailure(index, type(error).__name__,
                      "corrupt worker graph: %s" % error)


def _mark_partial(report, failed, attempted):
    report.partial = True
    report.warnings.append(
        "partial result: %d of %d runs failed and were excluded; the "
        "combined bound covers only the %d surviving runs (the §3 "
        "Kraft guarantee says nothing about the failed runs)"
        % (failed, attempted, attempted - failed))
    return report


def _dump_text(graph, category_edges=None):
    buffer = io.StringIO()
    dump_graph(graph, buffer, category_edges=category_edges)
    return buffer.getvalue()


def _load_text(text):
    return load_graph(io.StringIO(text))


def _chunks(count, parts):
    """Contiguous, order-preserving ``(lo, hi)`` slices of ``range(count)``.

    Sizes differ by at most one.  Contiguity matters for more than
    balance: chunked collapsing is bit-identical to whole-set collapsing
    only when every chunk preserves the original graph order.
    """
    parts = min(parts, count)
    base, extra = divmod(count, parts)
    bounds = []
    lo = 0
    for index in range(parts):
        hi = lo + base + (1 if index < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


# ----------------------------------------------------------------------
# Multi-run measurement of one program (Section 3.2 over a secret list)


class BatchResult:
    """A batch of runs measured together: combined report + per-run bounds.

    ``per_run_bits`` are each *succeeded* run's independent bounds
    (solved on its own collapsed graph); ``report`` is the Kraft-sound
    combined bound over those runs.  ``kraft_sum``/``per_run_sound``
    expose the Section 3.2 arithmetic for the independent bounds, so
    callers can see when the combined bound is doing real work.

    ``failures`` holds one :class:`~repro.batch.engine.JobFailure` per
    failed run (only under ``on_error="collect"``; the default policy
    raises instead).  When any run failed, ``partial`` is ``True``, the
    combined report is marked partial, and every derived quantity —
    ``bits``, ``kraft_sum``, ``per_run_sound`` — covers the surviving
    runs only.
    """

    def __init__(self, report, per_run_bits, jobs, failures=()):
        self.report = report
        self.per_run_bits = list(per_run_bits)
        self.jobs = jobs
        self.failures = list(failures)

    @property
    def bits(self):
        """The combined (Kraft-sound) bound in bits — partial when
        ``failures`` is non-empty."""
        return self.report.bits

    @property
    def runs(self):
        """Succeeded runs (the ones the combined bound covers)."""
        return len(self.per_run_bits)

    @property
    def attempted(self):
        """All runs the batch was asked for, failed ones included."""
        return len(self.per_run_bits) + len(self.failures)

    @property
    def partial(self):
        """Whether any run failed (and was excluded from the bound)."""
        return bool(self.failures)

    @property
    def kraft_sum(self):
        """Exact ``sum_i 2**-k(i)`` over the independent per-run bounds."""
        return kraft_sum(self.per_run_bits)

    @property
    def per_run_sound(self):
        """Whether the independent bounds alone satisfy Kraft (§3.2)."""
        return kraft_satisfied(self.per_run_bits)

    def __repr__(self):
        return "BatchResult(runs=%d, bits=%d, jobs=%d%s)" % (
            self.runs, self.bits, self.jobs,
            ", failures=%d" % len(self.failures) if self.failures else "")


def _trace_run_job(payload):
    """Trace one (secret, public) run; returns a picklable summary.

    Traces with online collapse so the shipped graph is coverage-sized,
    measures the run's independent bound on it, and serializes it for
    the parent-side combination.
    """
    (source, filename, secret, public, collapse, entry, max_steps,
     deadline_seconds, backend) = payload
    compiled = compile_cached(source, filename)
    tracker = CollapsingTraceBuilder(
        context_sensitive=(collapse == "context"), backend=backend)
    with obs.get_metrics().phase("trace"):
        vm, graph = execute(compiled, secret, public, tracker, entry=entry,
                            max_steps=max_steps,
                            deadline_seconds=deadline_seconds,
                            backend=backend)
    report = measure_graph(graph, collapse=collapse, stats=tracker.stats,
                           warnings=vm.warnings)
    return {
        "graph": _dump_text(graph),
        "stats": dict(tracker.stats),
        "warnings": list(vm.warnings),
        "bits": report.bits,
    }


def measure_program_runs(source, secret_inputs, public_input=b"",
                         collapse="context", jobs=1, filename="<source>",
                         entry="main", max_steps=None, deadline_seconds=None,
                         timeout=None, retries=0, on_error="raise",
                         faults=None, warm_start=True, backend=None,
                         store=None):
    """Measure one program over many secrets, ``jobs`` runs at a time.

    The batch analogue of :func:`repro.lang.runner.measure_many`: each
    secret is traced (online-collapsed) in a worker, and the workers'
    serialized graphs are re-combined for the Section 3.2 Kraft-sound
    bound — streamed through a warm-started
    :class:`~repro.core.combine.StreamingCombiner` by default, or by
    the tree-reduction merge across the pool when a shard ``store`` is
    given.  ``max_steps``/``deadline_seconds`` bound each
    run inside its worker (a run past its deadline raises ``VMTimeout``
    — a non-transient job failure); ``timeout``/``retries``/``on_error``
    configure the engine's :class:`~repro.batch.engine.FaultPolicy`.
    Returns a :class:`BatchResult` — partial, with a ``failures`` list,
    when runs failed under ``on_error="collect"``.

    With ``warm_start`` (the default) the merge folds the worker
    graphs in one at a time through a
    :class:`~repro.core.combine.StreamingCombiner`, re-solving each
    intermediate combined graph from the previous residual — the
    ``maxflow.warm_start.*`` counters report the reuse.  The final
    bound and combined graph are identical to the one-shot combination
    (``warm_start=False``, the ``repro batch --no-warm-start`` path);
    only the tie-broken placement of the minimum cut may differ.

    ``store`` (a :class:`~repro.store.ShardStore` or a directory path,
    created if missing) switches the merge to the corpus pipeline: each
    run's shard is appended to the store content-addressed (identical
    collapsed runs dedup to a multiplicity), and the combined report is
    computed by :func:`combine_store_jobs` — a tree reduction across
    the worker pool in O(coverage) memory per process.  The report then
    covers the *whole* store corpus, including shards from earlier
    batches appended to the same store; ``per_run_bits`` still covers
    only this batch's runs.

    ``backend`` selects each worker's VM execution backend
    (``"reference"``/``"fast"``/``"auto"``; see ``docs/backends.md``).
    It is resolved once in the parent so every worker runs the same
    backend regardless of per-process environment.
    """
    _check_collapse(collapse)
    backend = resolve_backend(backend)
    secrets = [bytes(secret) for secret in secret_inputs]
    payloads = [(source, filename, secret, bytes(public_input), collapse,
                 entry, max_steps, deadline_seconds, backend)
                for secret in secrets]
    engine = BatchEngine(jobs, faults=_fault_policy(faults, timeout,
                                                    retries, on_error))
    outcomes = engine.map(_trace_run_job, payloads)
    metrics = obs.get_metrics()
    t0 = time.perf_counter()
    shard_store = None
    if store is not None:
        shard_store = store if isinstance(store, ShardStore) \
            else ShardStore(store)
    graphs = []
    stats_list = []
    warnings = []
    bits = []
    failures = []
    shipped_bytes = 0
    with obs.get_tracer().span("batch.merge", runs=len(outcomes)):
        for index, outcome in enumerate(outcomes):
            if isinstance(outcome, JobFailure):
                failures.append(outcome)
                continue
            shipped_bytes += len(outcome["graph"].encode("utf-8"))
            try:
                if shard_store is not None:
                    # The parent never materializes the graph: the text
                    # goes straight into the store (parsed only when its
                    # digest is new).
                    shard_store.put_text(outcome["graph"])
                else:
                    graphs.append(_load_text(outcome["graph"]))
            except GraphError as error:
                if not engine.faults.collecting:
                    raise
                failures.append(_corrupt_graph_failure(index, error,
                                                       metrics))
                continue
            stats_list.append(outcome["stats"])
            warnings.extend(outcome["warnings"])
            bits.append(outcome["bits"])
        if not bits:
            raise BatchError(
                "all %d runs failed; no combined bound exists (first "
                "failure: %s)" % (len(outcomes), failures[0]))
        if shard_store is not None:
            result = combine_store_jobs(
                shard_store, context_sensitive=(collapse == "context"),
                jobs=jobs, faults=engine.faults, warm_start=warm_start,
                stats_list=stats_list, warnings=warnings)
            report = result.report
        elif warm_start:
            combiner = StreamingCombiner(
                context_sensitive=(collapse == "context"))
            span = obs.get_tracer().span("measure.runs", runs=len(graphs),
                                         collapse=collapse, jobs=1)
            with span, metrics.phase("measure"):
                for graph in graphs:
                    combiner.add(graph)
                span.set(bits=combiner.bits)
                report = combiner.report(stats_list=stats_list,
                                         warnings=warnings)
        else:
            report = measure_runs(graphs, collapse=collapse,
                                  stats_list=stats_list, warnings=warnings)
        if failures:
            _mark_partial(report, len(failures), len(outcomes))
    if metrics.enabled:
        metrics.incr("batch.graphs_bytes", shipped_bytes)
        metrics.add_seconds("batch.merge_seconds",
                            time.perf_counter() - t0)
    return BatchResult(report, bits, engine.jobs, failures)


# ----------------------------------------------------------------------
# Tree-reduced multi-run combination (parallel collapse_graphs)


def _default_fanin(count, jobs):
    """Default reduction fan-in: one worker-sized chunk per level.

    Chosen so the first level matches the old one-level split into
    ``jobs`` contiguous chunks; further levels keep reducing until one
    chunk remains for the parent-side root fold.
    """
    return max(2, -(-count // max(jobs, 1)))


def _tree_parts(count, jobs, fanin):
    """Chunk count for one reduction level (1 means: root fold next)."""
    if count <= fanin:
        return 1
    return min(jobs, -(-count // fanin))


def _combine_chunk_job(payload):
    """Combine one contiguous chunk of serialized shards in a worker.

    Each item is ``(text, original_nodes, original_edges)``; the
    returned original counts are the *carried* sums, so multi-level
    reduction keeps counting the true corpus size rather than the
    intermediate graphs'.
    """
    items, context_sensitive = payload
    chunk = [_load_text(text) for text, _, _ in items]
    combined, _ = collapse_graphs(chunk,
                                  context_sensitive=context_sensitive)
    return {
        "graph": _dump_text(combined),
        "original_nodes": sum(nodes for _, nodes, _ in items),
        "original_edges": sum(edges for _, _, edges in items),
    }


def combine_graphs_jobs(graphs, context_sensitive=True, jobs=1,
                        timeout=None, retries=0, on_error="raise",
                        faults=None, fanin=None):
    """Tree-reduced parallel :func:`~repro.graph.collapse.collapse_graphs`.

    The graph list is split into contiguous chunks and combined as a
    reduction *tree*: every level sends chunks of at most ``fanin``
    intermediate graphs to the worker pool, until one chunk remains,
    which the parent folds as the root.  No process — parent included —
    ever materializes more than one chunk of coverage-sized graphs at a
    time, which is what lets corpus-scale combines run in O(coverage)
    memory per process.  The union-find construction is associative
    over ordered contiguous chunks, so the result is identical (same
    node numbering, edge order, capacities, and labels-as-serialized)
    to combining the whole list at once, whatever the topology; the
    reported :class:`CollapseStats` count the original inputs, as the
    serial call would.  ``fanin`` defaults to one worker-sized chunk
    per level (the first level then matches the old single-level
    split).

    Under ``on_error="collect"``, a failed chunk job *excludes its
    subtree*: the combined graph covers only the surviving inputs, and
    the failures are reported in ``stats.failures`` (callers must
    treat such a combination as partial — the §3 guarantee does not
    cover the excluded runs).  At least one subtree must survive, or a
    :class:`~repro.errors.BatchError` is raised.
    """
    graphs = list(graphs)
    if not graphs:
        raise ValueError("combine_graphs_jobs needs at least one graph")
    engine = BatchEngine(jobs, faults=_fault_policy(faults, timeout,
                                                    retries, on_error))
    if min(engine.jobs, len(graphs)) <= 1:
        return collapse_graphs(graphs, context_sensitive=context_sensitive)
    if fanin is None:
        fanin = _default_fanin(len(graphs), engine.jobs)
    elif fanin < 2:
        raise ValueError("fanin must be >= 2, got %r" % (fanin,))
    items = [(_dump_text(g), g.num_nodes, g.num_edges) for g in graphs]
    metrics = obs.get_metrics()
    t0 = time.perf_counter()
    failures = []
    levels = 0
    shipped = 0
    with obs.get_tracer().span("batch.merge", chunks=len(items)):
        while True:
            parts = _tree_parts(len(items), engine.jobs, fanin)
            if parts <= 1:
                break
            payloads = [(items[lo:hi], context_sensitive)
                        for lo, hi in _chunks(len(items), parts)]
            outcomes = engine.map(_combine_chunk_job, payloads)
            levels += 1
            next_items = []
            for payload, outcome in zip(payloads, outcomes):
                if isinstance(outcome, JobFailure):
                    failures.append(outcome)
                    continue
                shipped += sum(len(text.encode("utf-8"))
                               for text, _, _ in payload[0])
                shipped += len(outcome["graph"].encode("utf-8"))
                next_items.append((outcome["graph"],
                                   outcome["original_nodes"],
                                   outcome["original_edges"]))
            if not next_items:
                raise BatchError(
                    "all %d combination chunks failed (first failure: %s)"
                    % (len(outcomes), failures[0]))
            items = next_items
        # Root fold, in the parent: at most ``fanin`` survivors.
        survivors = []
        original_nodes = original_edges = 0
        for index, (text, nodes, edges) in enumerate(items):
            try:
                survivors.append(_load_text(text))
            except GraphError as error:
                if not engine.faults.collecting:
                    raise
                failures.append(_corrupt_graph_failure(index, error,
                                                       metrics))
                continue
            original_nodes += nodes
            original_edges += edges
        if not survivors:
            raise BatchError(
                "all %d combination chunks failed (first failure: %s)"
                % (len(items), failures[0]))
        combined, _ = collapse_graphs(survivors,
                                      context_sensitive=context_sensitive)
        levels += 1
    stats = CollapseStats(original_nodes, original_edges,
                          combined.num_nodes, combined.num_edges,
                          failures=failures)
    if metrics.enabled:
        metrics.gauge("combine.tree_levels", levels)
        metrics.incr("batch.graphs_bytes", shipped)
        metrics.add_seconds("batch.merge_seconds",
                            time.perf_counter() - t0)
    return combined, stats


# ----------------------------------------------------------------------
# Store-backed corpus combine (tree reduction over a ShardStore)


class StoreCombineResult:
    """A store-backed corpus combine: report plus anytime-bound trail.

    ``report`` is the usual Kraft-sound combined
    :class:`~repro.core.report.FlowReport` (bit-identical to folding
    the corpus without a store); ``anytime`` is the
    :class:`~repro.core.combine.IncrementalKraft` trail — a monotone
    nonincreasing sequence of sound upper bounds, starting when the
    corpus is sealed and ending at the exact combined bound; ``levels``
    counts reduction levels (parent root fold included).
    """

    def __init__(self, report, anytime, levels, attempted, distinct,
                 covered, failures=()):
        self.report = report
        self.anytime = list(anytime)
        self.levels = levels
        self.attempted = attempted
        self.distinct = distinct
        #: runs the combined bound covers (== ``attempted`` unless partial)
        self.covered = covered
        self.failures = list(failures)

    @property
    def bits(self):
        return self.report.bits

    @property
    def runs(self):
        """Alias of :attr:`covered`."""
        return self.covered

    @property
    def partial(self):
        return bool(self.failures)

    def __repr__(self):
        return ("StoreCombineResult(runs=%d/%d, distinct=%d, bits=%d, "
                "levels=%d%s)"
                % (self.covered, self.attempted, self.distinct, self.bits,
                   self.levels,
                   ", failures=%d" % len(self.failures)
                   if self.failures else ""))


def _store_combine_chunk_job(payload):
    """Left-fold one contiguous chunk of store shards in a worker.

    Streams the chunk one shard at a time (the worker holds the
    running combination plus a single shard — O(coverage) memory,
    whatever the chunk length) and writes the result back to the store
    as a content-addressed object, so only a digest crosses the
    process boundary.  Items are ``(digest, mult, nodes, edges,
    runs)`` with per-repeat original sizes.
    """
    root, items, context_sensitive = payload
    store = ShardStore(root, create=False)
    combined = None
    for digest, mult, _, _, _ in items:
        graph = store.get(digest)
        if combined is None:
            combined, _ = collapse_graphs(
                [graph], context_sensitive=context_sensitive,
                multiplicities=[mult])
        else:
            combined, _ = collapse_graphs(
                [combined, graph], context_sensitive=context_sensitive,
                multiplicities=[1, mult])
    return {
        "digest": store.put_object(combined),
        "source_cap": combined.source_capacity(),
        "sink_cap": combined.sink_capacity(),
        "original_nodes": sum(m * n for _, m, n, _, _ in items),
        "original_edges": sum(m * e for _, m, _, e, _ in items),
        "runs": sum(m * r for _, m, _, _, r in items),
    }


def combine_store_jobs(store, context_sensitive=True, jobs=1, fanin=None,
                       timeout=None, retries=0, on_error="raise",
                       faults=None, warm_start=True, stats_list=None,
                       warnings=None):
    """Combine a :class:`~repro.store.ShardStore` corpus by tree
    reduction; returns a :class:`StoreCombineResult`.

    The corpus is taken in its deduped first-occurrence view (digest +
    multiplicity) when every shard is dedup-safe, falling back to the
    literal manifest order otherwise — either way the combined graph,
    cut, and bound are bit-identical to folding the manifest's graphs
    through the plain :func:`combine_graphs_jobs` /
    :func:`~repro.graph.collapse.collapse_graphs` path.  Reduction
    levels run across the worker pool exchanging only store references;
    the root level streams the surviving subtrees through a
    :class:`~repro.core.combine.StreamingCombiner` with warm-started
    re-solves.  Incremental Kraft accounting
    (:class:`~repro.core.combine.IncrementalKraft`) maintains a sound
    anytime upper bound throughout; the trail is returned as
    ``result.anytime``.

    Under ``on_error="collect"``, a failed subtree is dropped from both
    the combined graph and the anytime account; the report comes back
    partial.
    """
    if not isinstance(store, ShardStore):
        store = ShardStore(store, create=False)
    if not len(store):
        raise ValueError("combine_store_jobs needs a non-empty store "
                         "(no manifest entries in %s)" % store.root)
    engine = BatchEngine(jobs, faults=_fault_policy(faults, timeout,
                                                    retries, on_error))
    entries = store.multiplicities()
    metas = {digest: store.meta(digest) for digest, _ in entries}
    safe_key = ("dedup_safe_context" if context_sensitive
                else "dedup_safe_location")
    if all(metas[digest][safe_key] for digest, _ in entries):
        refs = entries
    else:
        # A shard with unmergeable-only nodes would contribute fresh
        # classes per repeat; keep the literal order so bit-identity
        # with the plain fold holds unconditionally.
        refs = [(digest, 1) for digest in store.order()]
    kraft = IncrementalKraft()
    items = []
    gids = []
    for digest, mult in refs:
        meta = metas[digest]
        gids.append(kraft.admit(meta["source_cap"], meta["sink_cap"], mult))
        items.append((digest, mult, meta["nodes"], meta["edges"], 1))
    if fanin is None:
        fanin = _default_fanin(len(items), engine.jobs)
    elif fanin < 2:
        raise ValueError("fanin must be >= 2, got %r" % (fanin,))
    kraft.seal()
    metrics = obs.get_metrics()
    t0 = time.perf_counter()
    failures = []
    levels = 0
    with obs.get_tracer().span("batch.merge", chunks=len(items)):
        while True:
            parts = _tree_parts(len(items), engine.jobs, fanin)
            if parts <= 1:
                break
            slices = _chunks(len(items), parts)
            payloads = [(store.root, items[lo:hi], context_sensitive)
                        for lo, hi in slices]
            outcomes = engine.map(_store_combine_chunk_job, payloads)
            levels += 1
            next_items = []
            next_gids = []
            for (lo, hi), outcome in zip(slices, outcomes):
                if isinstance(outcome, JobFailure):
                    failures.append(outcome)
                    for gid in gids[lo:hi]:
                        kraft.drop(gid)
                    continue
                next_gids.append(kraft.merge(gids[lo:hi],
                                             outcome["source_cap"],
                                             outcome["sink_cap"]))
                next_items.append((outcome["digest"], 1,
                                   outcome["original_nodes"],
                                   outcome["original_edges"],
                                   outcome["runs"]))
            if not next_items:
                raise BatchError(
                    "all %d combination chunks failed (first failure: %s)"
                    % (len(outcomes), failures[0]))
            items, gids = next_items, next_gids
        # Root level: stream the survivors through warm-started solves.
        combiner = StreamingCombiner(context_sensitive=context_sensitive,
                                     warm_start=warm_start)
        acc_gid = None
        for index, ((digest, mult, nodes, edges, runs), gid) \
                in enumerate(zip(items, gids)):
            try:
                graph = store.get(digest)
            except (StoreError, GraphError) as error:
                if not engine.faults.collecting:
                    raise
                failures.append(_corrupt_graph_failure(index, error,
                                                       metrics))
                kraft.drop(gid)
                continue
            combiner.add(graph, times=mult, original_nodes=nodes,
                         original_edges=edges, run_count=runs)
            if acc_gid is None:
                acc_gid = gid
            else:
                acc_gid = kraft.merge(
                    [acc_gid, gid], combiner.graph.source_capacity(),
                    combiner.graph.sink_capacity())
        if combiner.graph is None:
            raise BatchError(
                "all %d shards failed to combine (first failure: %s)"
                % (len(items), failures[0]))
        levels += 1
        kraft.finalize(combiner.bits)
        report = combiner.report(stats_list=stats_list,
                                 warnings=list(warnings or []),
                                 failures=failures)
    attempted = len(store)
    if failures:
        _mark_partial(report, attempted - combiner.runs, attempted)
    if metrics.enabled:
        metrics.gauge("combine.tree_levels", levels)
        metrics.add_seconds("batch.merge_seconds",
                            time.perf_counter() - t0)
    return StoreCombineResult(report, kraft.trail, levels, attempted,
                              store.distinct, combiner.runs, failures)


# ----------------------------------------------------------------------
# Multi-secret category sweep (Section 10.1)


def _category_solve_job(payload):
    """Solve one category's restricted graph; returns the cut mask.

    Ships back only ``(category, flow_value, source_side_mask)`` — the
    parent rebuilds the :class:`~repro.graph.mincut.MinCut` against its
    own in-memory graph, so the cut carries the caller's original label
    objects, exactly as the serial sweep's does.
    """
    text, category, category_edges = payload
    graph = _load_text(text)
    restricted = _restricted_copy(graph, category_edges, [category])
    value, residual = dinic_max_flow(restricted)
    return category, value, residual.source_side()


def measure_by_category_jobs(graph, category_edges, collapse="none",
                             stats=None, jobs=1, timeout=None, retries=0,
                             on_error="raise", faults=None):
    """Parallel per-category sweep; see
    :func:`repro.core.multisecret.measure_by_category`.

    One job per category solves the restricted graph; the joint bound
    is measured in the parent.  The per-category solves depend only on
    graph structure and capacities, so the serialized copy a worker
    solves yields the same flow value and the same canonical cut mask
    as the in-memory graph would.

    Under ``on_error="collect"``, categories whose solve job failed are
    missing from ``per_category`` and reported in the returned
    :class:`~repro.core.multisecret.CategoryBounds`' ``failures``.
    """
    text = _dump_text(graph)
    categories = sorted(category_edges)
    payloads = [(text, category, dict(category_edges))
                for category in categories]
    engine = BatchEngine(jobs, faults=_fault_policy(faults, timeout,
                                                    retries, on_error))
    outcomes = engine.map(_category_solve_job, payloads)
    metrics = obs.get_metrics()
    t0 = time.perf_counter()
    per_category = {}
    reports = {}
    failures = []
    with obs.get_tracer().span("batch.merge", categories=len(outcomes)):
        for outcome in outcomes:
            if isinstance(outcome, JobFailure):
                failures.append(outcome)
                continue
            category, value, mask = outcome
            restricted = _restricted_copy(graph, category_edges, [category])
            per_category[category] = value
            reports[category] = MinCut(restricted, mask)
        joint = measure_graph(graph, collapse=collapse, stats=stats)
    if metrics.enabled:
        metrics.incr("batch.graphs_bytes",
                     len(text.encode("utf-8")) * len(payloads))
        metrics.add_seconds("batch.merge_seconds",
                            time.perf_counter() - t0)
    return CategoryBounds(per_category, joint.bits,
                          {"joint": joint, **reports}, failures=failures)


# ----------------------------------------------------------------------
# Corpus measurement (one job per program)


class ProgramResult:
    """Picklable summary of one corpus program's measurement."""

    __slots__ = ("name", "bits", "output_bytes", "warnings", "cut",
                 "seconds")

    def __init__(self, name, bits, output_bytes, warnings, cut, seconds):
        self.name = name
        self.bits = bits
        self.output_bytes = output_bytes
        #: run warnings, verbatim
        self.warnings = warnings
        #: the min cut as ``(kind, location, capacity)`` triples
        self.cut = cut
        #: in-worker wall time for this program
        self.seconds = seconds

    def __repr__(self):
        return "ProgramResult(%r, bits=%d, cut=%d)" % (
            self.name, self.bits, len(self.cut))


def _measure_program_job(payload):
    """Measure one program of a corpus (online-collapsed trace)."""
    (name, source, secret, public, collapse, entry, max_steps,
     deadline_seconds) = payload
    t0 = time.perf_counter()
    result = measure(source, secret, public, collapse=collapse,
                     entry=entry, filename=name, online=True,
                     max_steps=max_steps,
                     deadline_seconds=deadline_seconds)
    report = result.report
    cut = []
    for cut_edge in report.mincut.edges:
        label = cut_edge.label
        if label is None:
            cut.append((None, None, cut_edge.capacity))
        else:
            cut.append((label.kind, str(label.location),
                        cut_edge.capacity))
    return ProgramResult(name, report.bits, result.output_bytes,
                         list(report.warnings or []), cut,
                         time.perf_counter() - t0)


def measure_programs(items, collapse="context", jobs=1, entry="main",
                     max_steps=None, deadline_seconds=None, timeout=None,
                     retries=0, on_error="raise", faults=None):
    """Measure a corpus of independent programs, ``jobs`` at a time.

    ``items`` yields ``(name, source, secret_input)`` or ``(name,
    source, secret_input, public_input)`` tuples.  Unlike the multi-run
    frontends nothing is combined — the programs are unrelated, so the
    jobs ship back :class:`ProgramResult` summaries, in input order.
    Under ``on_error="collect"``, a failed program's slot holds its
    :class:`~repro.batch.engine.JobFailure` instead (check with
    ``isinstance``); the other programs' results are unaffected.
    """
    _check_collapse(collapse)
    payloads = []
    for item in items:
        if len(item) == 3:
            name, source, secret = item
            public = b""
        else:
            name, source, secret, public = item
        payloads.append((name, source, bytes(secret), bytes(public),
                         collapse, entry, max_steps, deadline_seconds))
    engine = BatchEngine(jobs, faults=_fault_policy(faults, timeout,
                                                    retries, on_error))
    return engine.map(_measure_program_job, payloads)
