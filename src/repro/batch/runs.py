"""Batch frontends: multi-run, multi-secret, and corpus measurement.

Each frontend pairs a module-level *job function* (what a worker
process executes) with a parent-side merge.  Workers trace with online
collapse on, so what crosses the process boundary is a coverage-sized
collapsed graph in the ``flowgraph-v1`` text format plus plain-data
summaries — never VM state or label objects.  The parent re-combines
worker graphs with :func:`~repro.graph.collapse.collapse_graphs`, which
keeps the combined bound Kraft-sound across the whole batch exactly as
the serial Section 3.2 pipeline does.

``jobs=1`` runs the very same job functions in-process (including the
dump/load round trip), so the parallel and serial paths cannot drift
apart: the equivalence suite in ``tests/batch`` asserts bit-identical
bounds, cuts, and combined-graph serializations.
"""

from __future__ import annotations

import io
import time

from .. import obs
from ..core.combine import kraft_satisfied, kraft_sum
from ..core.measure import measure_graph, measure_runs
from ..core.multisecret import CategoryBounds, _restricted_copy
from ..core.tracker import CollapsingTraceBuilder
from ..graph.collapse import CollapseStats, collapse_graphs
from ..graph.maxflow import dinic_max_flow
from ..graph.mincut import MinCut
from ..graph.serialize import dump_graph, load_graph
from ..lang.runner import compile_cached, execute, measure
from .engine import BatchEngine

#: Collapse modes a batch worker can trace under.  ``"none"`` is
#: excluded on purpose: workers must ship *collapsed* graphs, or the
#: transfer volume would be runtime-sized instead of coverage-sized.
BATCH_COLLAPSE_MODES = ("context", "location")


def _check_collapse(collapse):
    if collapse not in BATCH_COLLAPSE_MODES:
        raise ValueError("batch collapse must be one of %r, got %r"
                         % (BATCH_COLLAPSE_MODES, collapse))


def _dump_text(graph, category_edges=None):
    buffer = io.StringIO()
    dump_graph(graph, buffer, category_edges=category_edges)
    return buffer.getvalue()


def _load_text(text):
    return load_graph(io.StringIO(text))


def _chunks(count, parts):
    """Contiguous, order-preserving ``(lo, hi)`` slices of ``range(count)``.

    Sizes differ by at most one.  Contiguity matters for more than
    balance: chunked collapsing is bit-identical to whole-set collapsing
    only when every chunk preserves the original graph order.
    """
    parts = min(parts, count)
    base, extra = divmod(count, parts)
    bounds = []
    lo = 0
    for index in range(parts):
        hi = lo + base + (1 if index < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


# ----------------------------------------------------------------------
# Multi-run measurement of one program (Section 3.2 over a secret list)


class BatchResult:
    """A batch of runs measured together: combined report + per-run bounds.

    ``per_run_bits`` are each run's *independent* bounds (solved on its
    own collapsed graph); ``report`` is the Kraft-sound combined bound
    over the whole batch.  ``kraft_sum``/``per_run_sound`` expose the
    Section 3.2 arithmetic for the independent bounds, so callers can
    see when the combined bound is doing real work.
    """

    def __init__(self, report, per_run_bits, jobs):
        self.report = report
        self.per_run_bits = list(per_run_bits)
        self.jobs = jobs

    @property
    def bits(self):
        """The combined (Kraft-sound) bound in bits."""
        return self.report.bits

    @property
    def runs(self):
        return len(self.per_run_bits)

    @property
    def kraft_sum(self):
        """Exact ``sum_i 2**-k(i)`` over the independent per-run bounds."""
        return kraft_sum(self.per_run_bits)

    @property
    def per_run_sound(self):
        """Whether the independent bounds alone satisfy Kraft (§3.2)."""
        return kraft_satisfied(self.per_run_bits)

    def __repr__(self):
        return "BatchResult(runs=%d, bits=%d, jobs=%d)" % (
            self.runs, self.bits, self.jobs)


def _trace_run_job(payload):
    """Trace one (secret, public) run; returns a picklable summary.

    Traces with online collapse so the shipped graph is coverage-sized,
    measures the run's independent bound on it, and serializes it for
    the parent-side combination.
    """
    source, filename, secret, public, collapse, entry = payload
    compiled = compile_cached(source, filename)
    tracker = CollapsingTraceBuilder(
        context_sensitive=(collapse == "context"))
    with obs.get_metrics().phase("trace"):
        vm, graph = execute(compiled, secret, public, tracker, entry=entry)
    report = measure_graph(graph, collapse=collapse, stats=tracker.stats,
                           warnings=vm.warnings)
    return {
        "graph": _dump_text(graph),
        "stats": dict(tracker.stats),
        "warnings": list(vm.warnings),
        "bits": report.bits,
    }


def measure_program_runs(source, secret_inputs, public_input=b"",
                         collapse="context", jobs=1, filename="<source>",
                         entry="main"):
    """Measure one program over many secrets, ``jobs`` runs at a time.

    The batch analogue of :func:`repro.lang.runner.measure_many`: each
    secret is traced (online-collapsed) in a worker, the workers'
    serialized graphs are combined in the parent for the Section 3.2
    Kraft-sound bound.  Returns a :class:`BatchResult`.
    """
    _check_collapse(collapse)
    secrets = [bytes(secret) for secret in secret_inputs]
    payloads = [(source, filename, secret, bytes(public_input), collapse,
                 entry) for secret in secrets]
    engine = BatchEngine(jobs)
    outcomes = engine.map(_trace_run_job, payloads)
    metrics = obs.get_metrics()
    t0 = time.perf_counter()
    graphs = []
    stats_list = []
    warnings = []
    shipped_bytes = 0
    with obs.get_tracer().span("batch.merge", runs=len(outcomes)):
        for outcome in outcomes:
            shipped_bytes += len(outcome["graph"].encode("utf-8"))
            graphs.append(_load_text(outcome["graph"]))
            stats_list.append(outcome["stats"])
            warnings.extend(outcome["warnings"])
        report = measure_runs(graphs, collapse=collapse,
                              stats_list=stats_list, warnings=warnings)
    if metrics.enabled:
        metrics.incr("batch.graphs_bytes", shipped_bytes)
        metrics.add_seconds("batch.merge_seconds",
                            time.perf_counter() - t0)
    return BatchResult(report, [o["bits"] for o in outcomes], engine.jobs)


# ----------------------------------------------------------------------
# Chunked multi-run combination (parallel collapse_graphs)


def _collapse_chunk_job(payload):
    """Combine one contiguous chunk of serialized graphs in a worker."""
    texts, context_sensitive = payload
    chunk = [_load_text(text) for text in texts]
    combined, stats = collapse_graphs(chunk,
                                      context_sensitive=context_sensitive)
    return {
        "graph": _dump_text(combined),
        "original_nodes": stats.original_nodes,
        "original_edges": stats.original_edges,
    }


def combine_graphs_jobs(graphs, context_sensitive=True, jobs=1):
    """Parallel :func:`~repro.graph.collapse.collapse_graphs`.

    Splits the graph list into contiguous chunks, combines each chunk
    in a worker, then combines the chunk results in the parent.  The
    union-find construction is associative over ordered contiguous
    chunks, so the result is identical (same node numbering, edge
    order, capacities, and labels-as-serialized) to combining the whole
    list at once; the reported :class:`CollapseStats` count the
    original inputs, as the serial call would.
    """
    graphs = list(graphs)
    if not graphs:
        raise ValueError("combine_graphs_jobs needs at least one graph")
    engine = BatchEngine(jobs)
    parts = min(engine.jobs, len(graphs))
    if parts <= 1:
        return collapse_graphs(graphs, context_sensitive=context_sensitive)
    texts = [_dump_text(graph) for graph in graphs]
    payloads = [(texts[lo:hi], context_sensitive)
                for lo, hi in _chunks(len(texts), parts)]
    outcomes = engine.map(_collapse_chunk_job, payloads)
    metrics = obs.get_metrics()
    t0 = time.perf_counter()
    with obs.get_tracer().span("batch.merge", chunks=len(outcomes)):
        partials = [_load_text(outcome["graph"]) for outcome in outcomes]
        combined, _ = collapse_graphs(partials,
                                      context_sensitive=context_sensitive)
    stats = CollapseStats(
        sum(outcome["original_nodes"] for outcome in outcomes),
        sum(outcome["original_edges"] for outcome in outcomes),
        combined.num_nodes, combined.num_edges)
    if metrics.enabled:
        shipped = sum(len(text.encode("utf-8")) for text in texts)
        shipped += sum(len(outcome["graph"].encode("utf-8"))
                       for outcome in outcomes)
        metrics.incr("batch.graphs_bytes", shipped)
        metrics.add_seconds("batch.merge_seconds",
                            time.perf_counter() - t0)
    return combined, stats


# ----------------------------------------------------------------------
# Multi-secret category sweep (Section 10.1)


def _category_solve_job(payload):
    """Solve one category's restricted graph; returns the cut mask.

    Ships back only ``(category, flow_value, source_side_mask)`` — the
    parent rebuilds the :class:`~repro.graph.mincut.MinCut` against its
    own in-memory graph, so the cut carries the caller's original label
    objects, exactly as the serial sweep's does.
    """
    text, category, category_edges = payload
    graph = _load_text(text)
    restricted = _restricted_copy(graph, category_edges, [category])
    value, residual = dinic_max_flow(restricted)
    return category, value, residual.source_side()


def measure_by_category_jobs(graph, category_edges, collapse="none",
                             stats=None, jobs=1):
    """Parallel per-category sweep; see
    :func:`repro.core.multisecret.measure_by_category`.

    One job per category solves the restricted graph; the joint bound
    is measured in the parent.  The per-category solves depend only on
    graph structure and capacities, so the serialized copy a worker
    solves yields the same flow value and the same canonical cut mask
    as the in-memory graph would.
    """
    text = _dump_text(graph)
    payloads = [(text, category, dict(category_edges))
                for category in sorted(category_edges)]
    engine = BatchEngine(jobs)
    outcomes = engine.map(_category_solve_job, payloads)
    metrics = obs.get_metrics()
    t0 = time.perf_counter()
    per_category = {}
    reports = {}
    with obs.get_tracer().span("batch.merge", categories=len(outcomes)):
        for category, value, mask in outcomes:
            restricted = _restricted_copy(graph, category_edges, [category])
            per_category[category] = value
            reports[category] = MinCut(restricted, mask)
        joint = measure_graph(graph, collapse=collapse, stats=stats)
    if metrics.enabled:
        metrics.incr("batch.graphs_bytes",
                     len(text.encode("utf-8")) * len(payloads))
        metrics.add_seconds("batch.merge_seconds",
                            time.perf_counter() - t0)
    return CategoryBounds(per_category, joint.bits,
                          {"joint": joint, **reports})


# ----------------------------------------------------------------------
# Corpus measurement (one job per program)


class ProgramResult:
    """Picklable summary of one corpus program's measurement."""

    __slots__ = ("name", "bits", "output_bytes", "warnings", "cut",
                 "seconds")

    def __init__(self, name, bits, output_bytes, warnings, cut, seconds):
        self.name = name
        self.bits = bits
        self.output_bytes = output_bytes
        #: run warnings, verbatim
        self.warnings = warnings
        #: the min cut as ``(kind, location, capacity)`` triples
        self.cut = cut
        #: in-worker wall time for this program
        self.seconds = seconds

    def __repr__(self):
        return "ProgramResult(%r, bits=%d, cut=%d)" % (
            self.name, self.bits, len(self.cut))


def _measure_program_job(payload):
    """Measure one program of a corpus (online-collapsed trace)."""
    name, source, secret, public, collapse, entry = payload
    t0 = time.perf_counter()
    result = measure(source, secret, public, collapse=collapse,
                     entry=entry, filename=name, online=True)
    report = result.report
    cut = []
    for cut_edge in report.mincut.edges:
        label = cut_edge.label
        if label is None:
            cut.append((None, None, cut_edge.capacity))
        else:
            cut.append((label.kind, str(label.location),
                        cut_edge.capacity))
    return ProgramResult(name, report.bits, result.output_bytes,
                         list(report.warnings or []), cut,
                         time.perf_counter() - t0)


def measure_programs(items, collapse="context", jobs=1, entry="main"):
    """Measure a corpus of independent programs, ``jobs`` at a time.

    ``items`` yields ``(name, source, secret_input)`` or ``(name,
    source, secret_input, public_input)`` tuples.  Unlike the multi-run
    frontends nothing is combined — the programs are unrelated, so the
    jobs ship back :class:`ProgramResult` summaries, in input order.
    """
    _check_collapse(collapse)
    payloads = []
    for item in items:
        if len(item) == 3:
            name, source, secret = item
            public = b""
        else:
            name, source, secret, public = item
        payloads.append((name, source, bytes(secret), bytes(public),
                         collapse, entry))
    return BatchEngine(jobs).map(_measure_program_job, payloads)
