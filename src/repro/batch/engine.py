"""Process-pool fan-out for independent measurement jobs.

The paper's workloads are dominated by *independent* instrumented
executions: the Section 3.2 multi-run combination, the Section 10.1
per-category sweep, and the Section 8 app audits all repeat the
expensive trace/solve work over inputs that share nothing until the
final merge.  :class:`BatchEngine` exploits that independence with a
process pool (``concurrent.futures.ProcessPoolExecutor``), keeping the
merge — and therefore the result — exactly what the serial pipeline
produces.

Design rules that make ``jobs=N`` bit-identical to ``jobs=1``:

* job functions are pure: payload in, picklable result out.  With
  ``jobs=1`` the engine calls the *same* function in-process, so both
  modes execute identical code (including any serialization round
  trips) and differ only in where it runs;
* workers never touch the parent's metrics registry.  Each job runs
  under a fresh registry (:func:`repro.obs.enable` in the worker) and
  ships its snapshot home, where the parent folds it in with
  :meth:`~repro.obs.metrics.Metrics.merge` — counters and timers add,
  so parent totals equal the sum over jobs regardless of how jobs were
  distributed over workers.

``ProcessPoolExecutor`` is used rather than ``multiprocessing.Pool``
deliberately: its workers are non-daemonic, so a job may itself fan out
(the benchmark driver runs batch benchmarks inside its own pool).

Fault tolerance
---------------

At corpus scale, per-input failure is routine: a program crashes on one
secret, a worker hangs, the pool dies.  The engine dispatches with
``submit`` + completion waits (never bare ``pool.map``) under a
:class:`FaultPolicy`:

* *job exceptions* are captured worker-side as structured, picklable
  :class:`JobFailure` records — the worker's partial metrics snapshot
  and spans still ride home, so observability survives failure.  They
  are **non-transient**: re-running a deterministic job would fail the
  same way, so they are never retried.
* *transient failures* — a per-job wall-clock ``timeout``, a
  ``BrokenProcessPool``, a pickling transport error — are retried with
  exponential backoff, up to ``retries`` times per job.  The pool is
  torn down and resurrected; a job that keeps striking is quarantined
  (recorded as a :class:`JobFailure` instead of looping forever).
* ``on_error="raise"`` (the default) re-raises the first failure's
  original exception, preserving the pre-fault-tolerance behavior;
  ``on_error="collect"`` returns the failure records in the result
  list, so one bad payload no longer aborts the whole batch.

The ``jobs=1`` in-process path implements the identical policy surface
(same capture, same retry accounting, same ``JobFailure`` records), so
the bit-identicality contract extends to failure handling.  The one
necessary asymmetry: in-process, a running job cannot be preempted, so
``timeout`` is enforced *post hoc* — the job runs to completion and the
attempt is then classified as timed out.
"""

from __future__ import annotations

import collections
import concurrent.futures
import pickle
import time
import traceback as _traceback
from concurrent.futures.process import BrokenProcessPool

from .. import obs
from ..errors import BatchError, JobError, JobTimeout

#: Accepted ``FaultPolicy.on_error`` modes.
ON_ERROR_MODES = ("raise", "collect")


class FaultPolicy:
    """How a batch fan-out reacts when a job misbehaves.

    Args:
        timeout: per-job wall-clock budget in seconds, or ``None`` (no
            limit).  In the pool path a job past its deadline is cut
            off by terminating its worker (the pool is resurrected);
            in-process the attempt is classified after the fact.
        retries: how many times a job struck by a *transient* failure
            (timeout, broken pool, pickling transport) is re-submitted
            before being quarantined.  Worker-side job exceptions are
            deterministic and never retried.
        backoff: base seconds of the exponential backoff slept before a
            transient re-submission (``backoff * 2**(strike-1)``).
        grace: seconds of slack allowed past ``timeout`` for detection
            and worker termination; a hung job is gone within
            ``timeout + grace`` wall seconds.
        on_error: ``"raise"`` (default) re-raises the first failure;
            ``"collect"`` records failures as :class:`JobFailure`
            entries in the result list.
    """

    __slots__ = ("timeout", "retries", "backoff", "grace", "on_error")

    def __init__(self, timeout=None, retries=0, backoff=0.05, grace=1.0,
                 on_error="raise"):
        if timeout is not None and not timeout > 0:
            raise ValueError("timeout must be positive or None, got %r"
                             % (timeout,))
        retries = int(retries)
        if retries < 0:
            raise ValueError("retries must be >= 0, got %d" % retries)
        if backoff < 0:
            raise ValueError("backoff must be >= 0, got %r" % (backoff,))
        if not grace > 0:
            raise ValueError("grace must be positive, got %r" % (grace,))
        if on_error not in ON_ERROR_MODES:
            raise ValueError("on_error must be one of %r, got %r"
                             % (ON_ERROR_MODES, on_error))
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.grace = grace
        self.on_error = on_error

    @property
    def collecting(self):
        return self.on_error == "collect"

    def __repr__(self):
        return ("FaultPolicy(timeout=%r, retries=%d, backoff=%r, "
                "grace=%r, on_error=%r)"
                % (self.timeout, self.retries, self.backoff, self.grace,
                   self.on_error))


class JobFailure:
    """Structured, picklable record of one failed batch job.

    Built worker-side for job exceptions (so the original traceback
    text survives the process boundary even when the exception object
    does not pickle) and parent-side for transport-level failures.

    Attributes:
        index: the payload's position in the batch.
        error_type: the exception class name (e.g. ``"VMError"``).
        error: ``repr()`` of the exception.
        traceback: formatted traceback text, or ``None``.
        seconds: in-job wall time of the failing attempt (``None`` when
            the attempt never produced a measurable interval, e.g. a
            terminated hung worker).
        metrics: the worker's partial metrics snapshot, or ``None``
            (in-process jobs record into the live registry directly).
        spans: the worker's span dicts, or ``None`` (adopted into the
            parent tracer by the engine; kept here for callers that
            inspect failures without tracing enabled).
        attempts: how many times the job was attempted in total.
        transient: whether the final failure was transport-level
            (timeout / broken pool / pickling) rather than a job
            exception.
        quarantined: whether the job was dropped after exhausting its
            transient retry budget.
        exception: the original exception object when it pickled,
            else ``None``.
    """

    __slots__ = ("index", "error_type", "error", "traceback", "seconds",
                 "metrics", "spans", "attempts", "transient",
                 "quarantined", "exception")

    def __init__(self, index, error_type, error, traceback=None,
                 seconds=None, metrics=None, spans=None, attempts=1,
                 transient=False, quarantined=False, exception=None):
        self.index = index
        self.error_type = error_type
        self.error = error
        self.traceback = traceback
        self.seconds = seconds
        self.metrics = metrics
        self.spans = spans
        self.attempts = attempts
        self.transient = transient
        self.quarantined = quarantined
        self.exception = exception

    @classmethod
    def from_exception(cls, index, error, seconds=None, transient=False,
                       quarantined=False, with_traceback=True):
        traceback_text = None
        if with_traceback and error.__traceback__ is not None:
            traceback_text = "".join(_traceback.format_exception(
                type(error), error, error.__traceback__))
        return cls(index, type(error).__name__, repr(error),
                   traceback=traceback_text, seconds=seconds,
                   transient=transient, quarantined=quarantined,
                   exception=_transportable(error))

    def raise_(self):
        """Re-raise the original exception (or a :class:`JobError`)."""
        if self.exception is not None:
            raise self.exception
        raise JobError("job %d failed: %s" % (self.index, self.error),
                       index=self.index, failure=self)

    def to_dict(self, traceback=True):
        """The failure as a plain JSON-able dict (for reports/CLIs)."""
        payload = {
            "index": self.index,
            "error_type": self.error_type,
            "error": self.error,
            "seconds": self.seconds,
            "attempts": self.attempts,
            "transient": self.transient,
            "quarantined": self.quarantined,
        }
        if traceback:
            payload["traceback"] = self.traceback
        return payload

    def __repr__(self):
        return "JobFailure(index=%d, %s: %s%s)" % (
            self.index, self.error_type, self.error,
            ", quarantined" if self.quarantined else "")


def _transportable(error):
    """The exception itself when it survives pickling, else ``None``."""
    try:
        pickle.loads(pickle.dumps(error))
    except Exception:
        return None
    return error


def _make_pool(workers):
    """Pool factory (module-level so fault tests can monkeypatch it)."""
    return concurrent.futures.ProcessPoolExecutor(max_workers=workers)


def _terminate_pool(pool):
    """Kill a pool's workers outright (the only cure for a hung job)."""
    processes = getattr(pool, "_processes", None)
    processes = list(processes.values()) if processes else []
    for process in processes:
        try:
            process.terminate()
        except Exception:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    for process in processes:
        try:
            process.join(timeout=1.0)
        except Exception:
            pass


def _call_job(item):
    """Run one job in a worker process.

    Returns ``(ok, value, metrics_snapshot, span_dicts, events,
    resource_sample, wall)``; on success ``value`` is the job's result,
    on a job exception it is a :class:`JobFailure` (``ok`` False).
    Must be a module-level function so it pickles.  When the parent had
    metrics enabled at dispatch time (``capture``), the job runs under
    a fresh registry whose snapshot rides back with the result; the
    fork-inherited parent registry is never written to, so nothing is
    double-counted when the parent later merges.  Likewise, when the
    parent had tracing enabled (``capture_trace``), the job runs under
    a fresh worker tracer, inside a ``batch.job`` root span, and the
    finished span dicts ride home for the parent to ``adopt``; with
    event logging on (``capture_events``) the job's drained event
    records ride home the same way.  When the parent has a telemetry
    exporter running (``capture_resources``), a resource sample is
    taken at job end — *before* the metrics snapshot, so the
    ``resource.*`` gauges merge home as cross-worker high-water marks —
    and shipped back for the exporter's per-worker time series.
    Exceptions are captured here — never propagated — so the snapshot,
    spans, and events survive failure too.
    """
    (func, payload, index, capture, capture_trace, capture_events,
     capture_resources) = item
    t0 = time.perf_counter()
    if capture:
        obs.enable()
    if capture_trace:
        obs.enable_tracing()
    if capture_events:
        obs.enable_events()
    try:
        span = obs.get_tracer().span("batch.job", index=index)
        with span:
            try:
                value = func(payload)
                ok = True
            except Exception as error:
                value = JobFailure.from_exception(
                    index, error, seconds=time.perf_counter() - t0)
                span.set(error=True, error_type=type(error).__name__)
                ok = False
        rsample = None
        if capture_resources:
            from ..obs import resources
            rsample = resources.sample(obs.get_metrics())
        snapshot = obs.get_metrics().snapshot() if capture else None
        spans = obs.get_tracer().snapshot() if capture_trace else None
        events = obs.get_event_log().drain() if capture_events else None
    finally:
        if capture:
            obs.disable()
        if capture_trace:
            obs.disable_tracing()
        if capture_events:
            obs.disable_events()
    return ok, value, snapshot, spans, events, rsample, \
        time.perf_counter() - t0


class _MapStats:
    """Per-``map`` fault accounting, folded into ``batch.*`` metrics."""

    __slots__ = ("walls", "failed", "retries", "timeouts", "restarts",
                 "quarantined")

    def __init__(self):
        self.walls = []
        self.failed = 0
        self.retries = 0
        self.timeouts = 0
        self.restarts = 0
        self.quarantined = 0


class BatchEngine:
    """Fan a job function over payloads across ``jobs`` worker processes.

    ``jobs=1`` (the default) runs everything in-process — no pool, no
    pickling, jobs record straight into the process-wide metrics
    registry.  ``jobs=N`` dispatches to ``min(N, len(payloads))``
    worker processes and merges each job's metrics snapshot into the
    parent registry.  ``faults`` (a :class:`FaultPolicy`) governs
    timeouts, retries, and whether failures raise or are collected;
    the default policy raises on the first failure, exactly as the
    pre-fault-tolerance engine did.

    Either way the engine records the ``batch.*`` catalogue keys:
    ``batch.jobs`` (jobs executed), ``batch.workers`` (pool size of the
    most recent ``map``), ``batch.worker_seconds`` (summed in-job wall
    time — with N workers this exceeds elapsed wall time, which is the
    point), the ``batch.job_seconds`` histogram (one observation per
    attempt), and the fault counters ``batch.failures`` /
    ``batch.retries`` / ``batch.timeouts`` / ``batch.pool_restarts`` /
    ``batch.quarantined``.  With tracing enabled, the fan-out runs
    under a ``batch.map`` span, each job under a ``batch.job`` span —
    recorded worker-side for ``jobs=N`` and adopted back into the
    parent tracer, re-rooted under the ``batch.map`` span, with worker
    pids kept so the Chrome trace export shows one track per worker;
    failed jobs' spans carry ``error=True``.

    With event logging enabled, the fault path is narrated as
    structured events (``batch.retry`` / ``batch.timeout`` /
    ``batch.quarantine`` / ``batch.failure`` / ``batch.pool_restart``),
    emitted parent-side inside the ``batch.map`` span so each record
    carries that span's id; workers' own drained events are adopted
    home alongside their spans.  When a telemetry exporter is
    installed (:func:`repro.obs.get_exporter`), every pool job also
    ships one end-of-job resource sample back for the exporter's
    per-worker ``resources.jsonl`` time series.
    """

    def __init__(self, jobs=1, faults=None):
        jobs = int(jobs)
        if jobs < 1:
            raise ValueError("jobs must be >= 1, got %d" % jobs)
        self.jobs = jobs
        self.faults = faults if faults is not None else FaultPolicy()

    def map(self, func, payloads, on_outcome=None, stop=None):
        """Apply ``func`` to every payload; returns outcomes in
        *payload order* (completion order never leaks: the pool path
        reassembles by payload index).

        ``func`` must be a module-level function taking one picklable
        payload and returning a picklable result (the ``jobs=1`` path
        does not require picklability, but relying on that forfeits the
        bit-identicality guarantee).  Under ``on_error="collect"``,
        failed payloads yield :class:`JobFailure` entries in their
        slots; under ``"raise"`` the first failure propagates.

        ``on_outcome(index, outcome)``, when given, is called in the
        parent as each slot *resolves* — a successful result or a
        collected :class:`JobFailure` — which is the checkpoint hook
        the measurement service journals from: by the time the call
        returns the outcome is durable, whatever happens to the rest
        of the batch.  It fires in resolution order, not payload order.

        ``stop()``, when given, is polled between dispatches; once it
        returns true no *new* payload is launched (in-flight pool jobs
        drain normally).  Unlaunched slots keep the :data:`PENDING`
        sentinel in the returned list, so a draining caller can tell
        "never ran" from "ran and failed".
        """
        payloads = list(payloads)
        metrics = obs.get_metrics()
        tracer = obs.get_tracer()
        serial = self.jobs == 1 or len(payloads) <= 1
        workers = 1 if serial else min(self.jobs, len(payloads))
        stats = _MapStats()
        map_span = tracer.span("batch.map", jobs=len(payloads),
                               workers=workers)
        with map_span:
            if serial:
                outcomes = self._serial_map(func, payloads, tracer, stats,
                                            on_outcome, stop)
            else:
                outcomes = self._pool_map(func, payloads, workers, metrics,
                                          tracer, map_span, stats,
                                          on_outcome, stop)
        if metrics.enabled and payloads:
            metrics.incr("batch.jobs", len(payloads))
            metrics.gauge("batch.workers", workers)
            metrics.add_seconds("batch.worker_seconds", sum(stats.walls))
            for wall in stats.walls:
                metrics.observe("batch.job_seconds", wall)
            metrics.incr("batch.failures", stats.failed)
            metrics.incr("batch.retries", stats.retries)
            metrics.incr("batch.timeouts", stats.timeouts)
            metrics.incr("batch.pool_restarts", stats.restarts)
            metrics.incr("batch.quarantined", stats.quarantined)
        return outcomes

    # ------------------------------------------------------------------
    # In-process path (jobs=1): same policy surface, no pool

    def _serial_map(self, func, payloads, tracer, stats, on_outcome=None,
                    stop=None):
        faults = self.faults
        event_log = obs.get_event_log()
        outcomes = [PENDING] * len(payloads)

        def resolve(index, outcome):
            outcomes[index] = outcome
            if on_outcome is not None:
                on_outcome(index, outcome)

        for index, payload in enumerate(payloads):
            if stop is not None and stop():
                break
            strikes = 0
            while True:
                attempts = strikes + 1
                t0 = time.perf_counter()
                span = tracer.span("batch.job", index=index)
                with span:
                    try:
                        result = func(payload)
                    except Exception as error:
                        wall = time.perf_counter() - t0
                        span.set(error=True,
                                 error_type=type(error).__name__)
                        stats.walls.append(wall)
                        if not faults.collecting:
                            raise
                        failure = JobFailure.from_exception(index, error,
                                                            seconds=wall)
                        failure.attempts = attempts
                        event_log.event("batch.failure", index=index,
                                        error_type=failure.error_type,
                                        transient=False,
                                        quarantined=False,
                                        attempts=attempts)
                        resolve(index, failure)
                        stats.failed += 1
                        break
                    wall = time.perf_counter() - t0
                    stats.walls.append(wall)
                    if faults.timeout is not None and wall > faults.timeout:
                        # In-process a running job cannot be preempted;
                        # the attempt is classified as timed out after
                        # the fact, with the same strike accounting as
                        # the pool path.
                        span.set(error=True, error_type="JobTimeout")
                        stats.timeouts += 1
                        event_log.event("batch.timeout", index=index,
                                        timeout=faults.timeout)
                        strikes += 1
                        if strikes <= faults.retries:
                            stats.retries += 1
                            event_log.event("batch.retry", index=index,
                                            strikes=strikes,
                                            error_type="JobTimeout")
                            time.sleep(faults.backoff * (2 ** (strikes - 1)))
                            continue
                        stats.quarantined += 1
                        event_log.event("batch.quarantine", index=index,
                                        attempts=attempts,
                                        error_type="JobTimeout")
                        timeout = JobTimeout(
                            "job %d exceeded its %.3fs timeout "
                            "(ran %.3fs)" % (index, faults.timeout, wall),
                            index=index, seconds=wall)
                        if not faults.collecting:
                            raise timeout
                        failure = JobFailure.from_exception(
                            index, timeout, seconds=wall, transient=True,
                            quarantined=True, with_traceback=False)
                        failure.attempts = attempts
                        event_log.event("batch.failure", index=index,
                                        error_type="JobTimeout",
                                        transient=True, quarantined=True,
                                        attempts=attempts)
                        resolve(index, failure)
                        stats.failed += 1
                        break
                    resolve(index, result)
                    break
        return outcomes

    # ------------------------------------------------------------------
    # Pool path (jobs=N): submit + completion waits, bounded retries

    def _pool_map(self, func, payloads, workers, metrics, tracer, map_span,
                  stats, on_outcome=None, stop=None):
        faults = self.faults
        capture = metrics.enabled
        capture_trace = tracer.enabled
        event_log = obs.get_event_log()
        capture_events = event_log.enabled
        exporter = obs.get_exporter()
        capture_resources = exporter is not None
        count = len(payloads)
        outcomes = [_PENDING] * count
        attempts = [0] * count
        strikes = [0] * count
        pending = collections.deque(range(count))
        pool = None
        futures = {}            # future -> payload index
        deadlines = {}          # future -> monotonic deadline or None

        def absorb(index, ok, value, snapshot, spans, events, rsample,
                   wall):
            """Fold one completed attempt (success or job failure)."""
            stats.walls.append(wall)
            if snapshot is not None:
                metrics.merge(snapshot)
            if spans:
                tracer.adopt(spans, parent_id=map_span.span_id)
            if events:
                event_log.adopt(events)
            if rsample is not None and exporter is not None:
                exporter.absorb_worker(rsample)
            if ok:
                outcomes[index] = value
                if on_outcome is not None:
                    on_outcome(index, value)
                return
            value.attempts = attempts[index]
            value.metrics = snapshot
            value.spans = spans
            if not faults.collecting:
                value.raise_()
            event_log.event("batch.failure", index=index,
                            error_type=value.error_type,
                            transient=value.transient,
                            quarantined=value.quarantined,
                            attempts=value.attempts)
            outcomes[index] = value
            stats.failed += 1
            if on_outcome is not None:
                on_outcome(index, value)

        def strike(index, error, seconds=None):
            """One transient strike; retry or quarantine the job."""
            strikes[index] += 1
            if strikes[index] <= faults.retries:
                stats.retries += 1
                event_log.event("batch.retry", index=index,
                                strikes=strikes[index],
                                error_type=type(error).__name__)
                pending.append(index)
                return strikes[index]
            stats.quarantined += 1
            event_log.event("batch.quarantine", index=index,
                            attempts=attempts[index],
                            error_type=type(error).__name__)
            failure = JobFailure.from_exception(
                index, error, seconds=seconds, transient=True,
                quarantined=True, with_traceback=False)
            failure.attempts = attempts[index]
            if not faults.collecting:
                failure.raise_()
            event_log.event("batch.failure", index=index,
                            error_type=failure.error_type,
                            transient=True, quarantined=True,
                            attempts=failure.attempts)
            outcomes[index] = failure
            stats.failed += 1
            if on_outcome is not None:
                on_outcome(index, failure)
            return 0

        def resurrect(backoff_strike):
            stats.restarts += 1
            event_log.event("batch.pool_restart", restarts=stats.restarts)
            if backoff_strike > 0:
                time.sleep(faults.backoff * (2 ** (backoff_strike - 1)))

        try:
            while pending or futures:
                if stop is not None and pending and stop():
                    # Drain: drop unlaunched payloads (their slots stay
                    # PENDING); in-flight jobs finish normally.
                    pending.clear()
                    if not futures:
                        break
                if pool is None:
                    pool = _make_pool(workers)
                # Keep at most ``workers`` jobs in flight, so a
                # submitted job starts (nearly) immediately and its
                # wall-clock deadline measures *running* time, not
                # queueing time.
                while pending and len(futures) < workers:
                    index = pending.popleft()
                    attempts[index] += 1
                    try:
                        future = pool.submit(
                            _call_job,
                            (func, payloads[index], index, capture,
                             capture_trace, capture_events,
                             capture_resources))
                    except BrokenProcessPool:
                        # The pool died between submissions.  Requeue
                        # this job un-attempted; in-flight futures (if
                        # any) surface the breakage below, otherwise
                        # resurrect right away.
                        attempts[index] -= 1
                        pending.appendleft(index)
                        if not futures:
                            _terminate_pool(pool)
                            pool = None
                            stats.restarts += 1
                            event_log.event("batch.pool_restart",
                                            restarts=stats.restarts)
                        break
                    futures[future] = index
                    deadlines[future] = (
                        time.monotonic() + faults.timeout
                        if faults.timeout is not None else None)
                if not futures:
                    continue
                timeout = None
                live = [d for d in deadlines.values() if d is not None]
                if live:
                    timeout = max(0.0, min(live) - time.monotonic())
                done, _ = concurrent.futures.wait(
                    list(futures), timeout=timeout,
                    return_when=concurrent.futures.FIRST_COMPLETED)
                now = time.monotonic()
                expired = [future for future, deadline in deadlines.items()
                           if deadline is not None and now >= deadline
                           and not future.done()]
                broken = None
                for future in done:
                    index = futures.pop(future)
                    deadlines.pop(future)
                    try:
                        (ok, value, snapshot, spans, events, rsample,
                         wall) = future.result()
                    except BrokenProcessPool as error:
                        # The whole pool is dead; every sibling future
                        # breaks too.  Handled below in one sweep.
                        broken = error
                        strike(index, error)
                    except Exception as error:
                        # Pickling/transport failure between parent and
                        # worker: transient per policy.
                        strike(index, error)
                    else:
                        absorb(index, ok, value, snapshot, spans, events,
                               rsample, wall)
                if broken is not None:
                    # Every job still in flight was a (potential)
                    # offender: tear the dead pool down, strike them
                    # all, resurrect, and let the retry budget decide.
                    # (Teardown comes first so a strike that raises in
                    # "raise" mode never leaves the finally clause
                    # waiting on a dead pool.)
                    in_flight = sorted(futures.values())
                    futures.clear()
                    deadlines.clear()
                    _terminate_pool(pool)
                    pool = None
                    worst = 0
                    for index in in_flight:
                        worst = max(worst, strike(index, broken))
                    resurrect(worst)
                    continue
                if expired:
                    # A worker is hung past its deadline.  Harvest any
                    # sibling results that finished in the window, then
                    # kill the pool: terminating the worker process is
                    # the only way to reclaim it.
                    victims = []
                    timed_out = []
                    for future, index in list(futures.items()):
                        if future in expired:
                            timed_out.append(index)
                        elif future.done():
                            try:
                                (ok, value, snapshot, spans, events,
                                 rsample, wall) = future.result()
                            except Exception as error:
                                strike(index, error)
                            else:
                                absorb(index, ok, value, snapshot, spans,
                                       events, rsample, wall)
                        else:
                            victims.append(index)
                    futures.clear()
                    deadlines.clear()
                    _terminate_pool(pool)
                    pool = None
                    worst = 0
                    for index in timed_out:
                        stats.timeouts += 1
                        event_log.event("batch.timeout", index=index,
                                        timeout=faults.timeout)
                        worst = max(worst, strike(index, JobTimeout(
                            "job %d exceeded its %.3fs timeout"
                            % (index, faults.timeout), index=index,
                            seconds=faults.timeout)))
                    # Collateral victims were not at fault: re-run them
                    # without a strike, ahead of struck retries.  (A
                    # victim may have completed between the harvest and
                    # the kill; re-running a pure job is safe, and its
                    # unharvested snapshot is never merged, so nothing
                    # is double-counted.)
                    for index in sorted(victims, reverse=True):
                        pending.appendleft(index)
                    resurrect(worst)
        except BaseException:
            # Abort path (a raised failure, KeyboardInterrupt, a drain
            # signal): never wait on a possibly-hung worker — kill the
            # pool outright before propagating.
            if pool is not None:
                _terminate_pool(pool)
                pool = None
            raise
        finally:
            if pool is not None:
                if faults.timeout is None:
                    pool.shutdown(wait=True)
                else:
                    # With a timeout in force, never risk joining a
                    # hung worker on the abort path.
                    _terminate_pool(pool)
        return outcomes


class _Pending:
    """Placeholder for a not-yet-resolved outcome slot."""

    __slots__ = ()

    def __repr__(self):
        return "<pending job>"


#: Sentinel left in an outcome slot whose payload was never launched
#: (a ``stop()`` drain fired first).  Callers that pass ``stop=`` must
#: treat these slots as "not attempted", never as results.
PENDING = _Pending()

# Backwards-compatible private alias (pre-drain-support name).
_PENDING = PENDING
