"""Process-pool fan-out for independent measurement jobs.

The paper's workloads are dominated by *independent* instrumented
executions: the Section 3.2 multi-run combination, the Section 10.1
per-category sweep, and the Section 8 app audits all repeat the
expensive trace/solve work over inputs that share nothing until the
final merge.  :class:`BatchEngine` exploits that independence with a
process pool (``concurrent.futures.ProcessPoolExecutor``), keeping the
merge — and therefore the result — exactly what the serial pipeline
produces.

Design rules that make ``jobs=N`` bit-identical to ``jobs=1``:

* job functions are pure: payload in, picklable result out.  With
  ``jobs=1`` the engine calls the *same* function in-process, so both
  modes execute identical code (including any serialization round
  trips) and differ only in where it runs;
* workers never touch the parent's metrics registry.  Each job runs
  under a fresh registry (:func:`repro.obs.enable` in the worker) and
  ships its snapshot home, where the parent folds it in with
  :meth:`~repro.obs.metrics.Metrics.merge` — counters and timers add,
  so parent totals equal the sum over jobs regardless of how jobs were
  distributed over workers.

``ProcessPoolExecutor`` is used rather than ``multiprocessing.Pool``
deliberately: its workers are non-daemonic, so a job may itself fan out
(the benchmark driver runs batch benchmarks inside its own pool).
"""

from __future__ import annotations

import concurrent.futures
import time

from .. import obs


def _call_job(item):
    """Run one job in a worker process; returns ``(result, snapshot, wall)``.

    Must be a module-level function so it pickles.  When the parent had
    metrics enabled at dispatch time (``capture``), the job runs under a
    fresh registry whose snapshot rides back with the result; the
    fork-inherited parent registry is never written to, so nothing is
    double-counted when the parent later merges.
    """
    func, payload, capture = item
    t0 = time.perf_counter()
    if not capture:
        result = func(payload)
        return result, None, time.perf_counter() - t0
    obs.enable()
    try:
        result = func(payload)
        snapshot = obs.get_metrics().snapshot()
    finally:
        obs.disable()
    return result, snapshot, time.perf_counter() - t0


class BatchEngine:
    """Fan a job function over payloads across ``jobs`` worker processes.

    ``jobs=1`` (the default) runs everything in-process — no pool, no
    pickling, jobs record straight into the process-wide metrics
    registry.  ``jobs=N`` dispatches to ``min(N, len(payloads))``
    worker processes and merges each job's metrics snapshot into the
    parent registry.

    Either way the engine records the ``batch.*`` catalogue keys:
    ``batch.jobs`` (jobs executed), ``batch.workers`` (pool size of the
    most recent ``map``), and ``batch.worker_seconds`` (summed in-job
    wall time — with N workers this exceeds elapsed wall time, which is
    the point).
    """

    def __init__(self, jobs=1):
        jobs = int(jobs)
        if jobs < 1:
            raise ValueError("jobs must be >= 1, got %d" % jobs)
        self.jobs = jobs

    def map(self, func, payloads):
        """Apply ``func`` to every payload; returns results in order.

        ``func`` must be a module-level function taking one picklable
        payload and returning a picklable result (the ``jobs=1`` path
        does not require picklability, but relying on that forfeits the
        bit-identicality guarantee).
        """
        payloads = list(payloads)
        metrics = obs.get_metrics()
        results = []
        walls = []
        if self.jobs == 1 or len(payloads) <= 1:
            workers = 1
            for payload in payloads:
                t0 = time.perf_counter()
                results.append(func(payload))
                walls.append(time.perf_counter() - t0)
        else:
            workers = min(self.jobs, len(payloads))
            capture = metrics.enabled
            items = [(func, payload, capture) for payload in payloads]
            with concurrent.futures.ProcessPoolExecutor(
                    max_workers=workers) as pool:
                outcomes = list(pool.map(_call_job, items))
            for result, snapshot, wall in outcomes:
                results.append(result)
                walls.append(wall)
                if snapshot is not None:
                    metrics.merge(snapshot)
        if metrics.enabled and payloads:
            metrics.incr("batch.jobs", len(payloads))
            metrics.gauge("batch.workers", workers)
            metrics.add_seconds("batch.worker_seconds", sum(walls))
        return results
