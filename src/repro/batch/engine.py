"""Process-pool fan-out for independent measurement jobs.

The paper's workloads are dominated by *independent* instrumented
executions: the Section 3.2 multi-run combination, the Section 10.1
per-category sweep, and the Section 8 app audits all repeat the
expensive trace/solve work over inputs that share nothing until the
final merge.  :class:`BatchEngine` exploits that independence with a
process pool (``concurrent.futures.ProcessPoolExecutor``), keeping the
merge — and therefore the result — exactly what the serial pipeline
produces.

Design rules that make ``jobs=N`` bit-identical to ``jobs=1``:

* job functions are pure: payload in, picklable result out.  With
  ``jobs=1`` the engine calls the *same* function in-process, so both
  modes execute identical code (including any serialization round
  trips) and differ only in where it runs;
* workers never touch the parent's metrics registry.  Each job runs
  under a fresh registry (:func:`repro.obs.enable` in the worker) and
  ships its snapshot home, where the parent folds it in with
  :meth:`~repro.obs.metrics.Metrics.merge` — counters and timers add,
  so parent totals equal the sum over jobs regardless of how jobs were
  distributed over workers.

``ProcessPoolExecutor`` is used rather than ``multiprocessing.Pool``
deliberately: its workers are non-daemonic, so a job may itself fan out
(the benchmark driver runs batch benchmarks inside its own pool).
"""

from __future__ import annotations

import concurrent.futures
import time

from .. import obs


def _call_job(item):
    """Run one job in a worker process.

    Returns ``(result, metrics_snapshot, span_dicts, wall)``.  Must be a
    module-level function so it pickles.  When the parent had metrics
    enabled at dispatch time (``capture``), the job runs under a fresh
    registry whose snapshot rides back with the result; the
    fork-inherited parent registry is never written to, so nothing is
    double-counted when the parent later merges.  Likewise, when the
    parent had tracing enabled (``capture_trace``), the job runs under a
    fresh worker tracer, inside a ``batch.job`` root span, and the
    finished span dicts ride home for the parent to ``adopt``.
    """
    func, payload, index, capture, capture_trace = item
    t0 = time.perf_counter()
    if capture:
        obs.enable()
    if capture_trace:
        obs.enable_tracing()
    try:
        with obs.get_tracer().span("batch.job", index=index):
            result = func(payload)
        snapshot = obs.get_metrics().snapshot() if capture else None
        spans = obs.get_tracer().snapshot() if capture_trace else None
    finally:
        if capture:
            obs.disable()
        if capture_trace:
            obs.disable_tracing()
    return result, snapshot, spans, time.perf_counter() - t0


class BatchEngine:
    """Fan a job function over payloads across ``jobs`` worker processes.

    ``jobs=1`` (the default) runs everything in-process — no pool, no
    pickling, jobs record straight into the process-wide metrics
    registry.  ``jobs=N`` dispatches to ``min(N, len(payloads))``
    worker processes and merges each job's metrics snapshot into the
    parent registry.

    Either way the engine records the ``batch.*`` catalogue keys:
    ``batch.jobs`` (jobs executed), ``batch.workers`` (pool size of the
    most recent ``map``), ``batch.worker_seconds`` (summed in-job wall
    time — with N workers this exceeds elapsed wall time, which is the
    point), and the ``batch.job_seconds`` histogram (one observation
    per job).  With tracing enabled, the fan-out runs under a
    ``batch.map`` span, each job under a ``batch.job`` span — recorded
    worker-side for ``jobs=N`` and adopted back into the parent tracer,
    re-rooted under the ``batch.map`` span, with worker pids kept so
    the Chrome trace export shows one track per worker.
    """

    def __init__(self, jobs=1):
        jobs = int(jobs)
        if jobs < 1:
            raise ValueError("jobs must be >= 1, got %d" % jobs)
        self.jobs = jobs

    def map(self, func, payloads):
        """Apply ``func`` to every payload; returns results in order.

        ``func`` must be a module-level function taking one picklable
        payload and returning a picklable result (the ``jobs=1`` path
        does not require picklability, but relying on that forfeits the
        bit-identicality guarantee).
        """
        payloads = list(payloads)
        metrics = obs.get_metrics()
        tracer = obs.get_tracer()
        results = []
        walls = []
        serial = self.jobs == 1 or len(payloads) <= 1
        workers = 1 if serial else min(self.jobs, len(payloads))
        map_span = tracer.span("batch.map", jobs=len(payloads),
                               workers=workers)
        with map_span:
            if serial:
                for index, payload in enumerate(payloads):
                    t0 = time.perf_counter()
                    with tracer.span("batch.job", index=index):
                        results.append(func(payload))
                    walls.append(time.perf_counter() - t0)
            else:
                capture = metrics.enabled
                capture_trace = tracer.enabled
                items = [(func, payload, index, capture, capture_trace)
                         for index, payload in enumerate(payloads)]
                with concurrent.futures.ProcessPoolExecutor(
                        max_workers=workers) as pool:
                    outcomes = list(pool.map(_call_job, items))
                for result, snapshot, spans, wall in outcomes:
                    results.append(result)
                    walls.append(wall)
                    if snapshot is not None:
                        metrics.merge(snapshot)
                    if spans:
                        tracer.adopt(spans, parent_id=map_span.span_id)
        if metrics.enabled and payloads:
            metrics.incr("batch.jobs", len(payloads))
            metrics.gauge("batch.workers", workers)
            metrics.add_seconds("batch.worker_seconds", sum(walls))
            for wall in walls:
                metrics.observe("batch.job_seconds", wall)
        return results
