"""Minimum-cut extraction (Section 6.1).

After a maximum flow has been computed, the canonical minimum cut is
recovered by a reachability search from the source over arcs with excess
(residual) capacity: nodes reached form the source side S, and the cut is
the set of original edges from S to its complement.

The cut is the artifact the checking techniques of Sections 6.2 and 6.3
consume: each cut edge names a static program location (via its label)
and a bit capacity, together forming a compact, checkable flow policy.
"""

from __future__ import annotations

from .. import obs
from .flowgraph import INF
from .maxflow import dinic_max_flow


class CutEdge:
    """One edge of a minimum cut."""

    __slots__ = ("edge_index", "tail", "head", "capacity", "label")

    def __init__(self, edge_index, tail, head, capacity, label):
        self.edge_index = edge_index
        self.tail = tail
        self.head = head
        self.capacity = capacity
        self.label = label

    def __repr__(self):
        return "CutEdge(#%d %d->%d cap=%d %r)" % (
            self.edge_index, self.tail, self.head, self.capacity, self.label)


class MinCut:
    """A minimum s-t cut: the source side and the crossing edges."""

    def __init__(self, graph, source_side_mask):
        self.graph = graph
        self.source_side = source_side_mask
        self.edges = []
        for i, e in enumerate(graph.edges):
            if source_side_mask[e.tail] and not source_side_mask[e.head]:
                self.edges.append(CutEdge(i, e.tail, e.head, e.capacity, e.label))

    @property
    def capacity(self):
        """Total capacity crossing the cut (equals the max-flow value)."""
        total = 0
        for ce in self.edges:
            if ce.capacity >= INF:
                return INF
            total += ce.capacity
        return total

    def labels(self):
        """The labels of the crossing edges (``None`` entries omitted)."""
        return [ce.label for ce in self.edges if ce.label is not None]

    def __len__(self):
        return len(self.edges)

    def __iter__(self):
        return iter(self.edges)

    def __repr__(self):
        return "MinCut(capacity=%s, edges=%d)" % (self.capacity, len(self.edges))


def min_cut_from_residual(graph, residual):
    """Extract the canonical minimum cut from a saturated residual network."""
    with obs.get_tracer().span("mincut.extract") as span:
        cut = MinCut(graph, residual.source_side())
        span.set(edges=len(cut.edges))
    return cut


def min_cut(graph):
    """Compute ``(flow_value, MinCut)`` for ``graph`` from scratch."""
    value, residual = dinic_max_flow(graph)
    cut = min_cut_from_residual(graph, residual)
    return value, cut
