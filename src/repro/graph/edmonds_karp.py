"""Edmonds–Karp maximum flow (baseline for the ablation benchmarks).

Shortest-augmenting-path max-flow: O(V * E^2) in the worst case, which is
why the paper (Section 5) needs either series-parallel structure or graph
collapsing before an exact algorithm becomes practical.  We keep it as a
simple, obviously-correct reference implementation to cross-check Dinic
and push-relabel in tests, and to quantify the win in the benchmarks.
"""

from __future__ import annotations

from collections import deque

from .. import obs
from ..errors import GraphError
from .flowgraph import INF
from .maxflow import ResidualNetwork


def edmonds_karp_max_flow(graph):
    """Compute the maximum s-t flow by repeated BFS augmentation.

    Returns ``(value, residual)``, matching :func:`.maxflow.dinic_max_flow`.
    With observability enabled, accounts wall time to ``phase.solve``
    and reports ``maxflow.edmonds_karp.augmenting_paths``.
    """
    metrics = obs.get_metrics()
    net = ResidualNetwork(graph)
    s, t = net.source, net.sink
    if s == t:
        raise GraphError("source and sink coincide")
    head, cap, first, nxt = net.head, net.cap, net.first, net.nxt
    n = net.num_nodes
    total = 0
    aug_paths = 0
    parent_arc = [-1] * n

    span = obs.get_tracer().span("solve.edmonds_karp",
                                 nodes=graph.num_nodes,
                                 edges=graph.num_edges)
    with span, metrics.phase("solve"):
        while True:
            for i in range(n):
                parent_arc[i] = -1
            parent_arc[s] = -2
            q = deque([s])
            reached = False
            while q and not reached:
                u = q.popleft()
                a = first[u]
                while a != -1:
                    v = head[a]
                    if cap[a] > 0 and parent_arc[v] == -1:
                        parent_arc[v] = a
                        if v == t:
                            reached = True
                            break
                        q.append(v)
                    a = nxt[a]
            if not reached:
                break
            # Walk the parent chain to find the bottleneck, then augment.
            bottleneck = INF
            v = t
            while v != s:
                a = parent_arc[v]
                if cap[a] < bottleneck:
                    bottleneck = cap[a]
                v = head[a ^ 1]
            v = t
            while v != s:
                a = parent_arc[v]
                cap[a] -= bottleneck
                cap[a ^ 1] += bottleneck
                v = head[a ^ 1]
            total += bottleneck
            aug_paths += 1
            if total >= INF:
                total = INF
                break
        span.set(value=total)
    if metrics.enabled:
        metrics.incr("maxflow.solves")
        metrics.incr("maxflow.edmonds_karp.augmenting_paths", aug_paths)
    return total, net
