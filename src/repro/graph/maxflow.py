"""Maximum-flow computation (Section 5).

The primary algorithm is Dinic's blocking-flow method, which is fast on
the shallow, layered graphs produced by collapsing execution traces by
code location.  :class:`ResidualNetwork` is shared with the alternative
algorithms (:mod:`.edmonds_karp`, :mod:`.push_relabel`) and with min-cut
extraction (:mod:`.mincut`).

All capacities are integers, so the computed flows are exact.
"""

from __future__ import annotations

from collections import deque

from .. import obs
from ..errors import GraphError
from ..shadow.fast import native_kernels, resolve_backend
from .flowgraph import INF


class ResidualNetwork:
    """Forward-star residual representation of a :class:`FlowGraph`.

    Each original edge ``i`` becomes residual arc ``2*i`` and its reverse
    arc ``2*i + 1``; the pairing lets algorithms find an arc's partner as
    ``arc ^ 1``.  After a max-flow run, ``flow_on(i)`` reports the flow
    routed over original edge ``i``.
    """

    __slots__ = ("num_nodes", "source", "sink", "head", "cap", "first",
                 "nxt", "_orig_cap")

    def __init__(self, graph):
        n = graph.num_nodes
        m = len(graph.edges)
        self.num_nodes = n
        self.source = graph.source
        self.sink = graph.sink
        self.head = [0] * (2 * m)
        self.cap = [0] * (2 * m)
        self.first = [-1] * n
        self.nxt = [-1] * (2 * m)
        self._orig_cap = [0] * m
        for i, e in enumerate(graph.edges):
            self._orig_cap[i] = e.capacity
            fwd, rev = 2 * i, 2 * i + 1
            self.head[fwd] = e.head
            self.cap[fwd] = e.capacity
            self.nxt[fwd] = self.first[e.tail]
            self.first[e.tail] = fwd
            self.head[rev] = e.tail
            self.cap[rev] = 0
            self.nxt[rev] = self.first[e.head]
            self.first[e.head] = rev

    def flow_on(self, edge_index):
        """Flow routed over original edge ``edge_index``."""
        return self._orig_cap[edge_index] - self.cap[2 * edge_index]

    def residual(self, edge_index):
        """Remaining (unused) capacity on original edge ``edge_index``."""
        return self.cap[2 * edge_index]

    def source_side(self):
        """Nodes reachable from the source along positive-residual arcs.

        This is the S side of the canonical minimum cut (Section 6.1's
        depth-first search over excess capacity); meaningful after a
        max-flow algorithm has saturated the network.
        """
        seen = [False] * self.num_nodes
        seen[self.source] = True
        stack = [self.source]
        head, cap, first, nxt = self.head, self.cap, self.first, self.nxt
        while stack:
            u = stack.pop()
            a = first[u]
            while a != -1:
                v = head[a]
                if cap[a] > 0 and not seen[v]:
                    seen[v] = True
                    stack.append(v)
                a = nxt[a]
        return seen


class WarmStart:
    """A prior solve to seed the next one: the solved graph + residual.

    Produced from any ``dinic_max_flow`` result and handed back via
    ``dinic_max_flow(new_graph, warm_start=...)`` when ``new_graph``
    *grew out of* ``graph`` -- i.e. was built by combining ``graph``
    with further runs, so each labelled edge either kept its label key
    with a no-smaller capacity or vanished into a self-loop.  That is
    exactly what :func:`repro.graph.collapse.collapse_graphs` produces
    when re-combining an already-combined graph with new runs (the
    streaming-combine pattern of :class:`repro.core.combine.StreamingCombiner`).
    """

    __slots__ = ("graph", "residual")

    def __init__(self, graph, residual):
        self.graph = graph
        self.residual = residual


def _apply_warm_start(graph, net, warm_start):
    """Carry the prior flow over onto the fresh residual ``net``.

    Old edges map to new edges by context-sensitive label key (unique
    per edge in a combined graph, where the bucket *is* the key).  An
    old flow-carrying edge whose key vanished was dropped as a
    self-loop -- its endpoints merged -- so its in/out contributions
    cancel at the merged class and skipping it preserves conservation.
    Every mapping is verified (per-edge feasibility, then node-by-node
    conservation of the carried assignment), so a warm start against an
    unrelated graph degrades to ``None`` -- "fall back to a cold
    solve" -- never to a wrong flow.

    Returns the carried flow value, or ``None`` if the prior flow
    cannot be reused.
    """
    index = {}
    for j, e in enumerate(graph.edges):
        key = e.label.key(True) if e.label is not None else None
        if key is None:
            continue
        index[key] = None if key in index else j  # None: ambiguous
    cap = net.cap
    excess = [0] * net.num_nodes
    old_graph = warm_start.graph
    old_net = warm_start.residual
    for i, e in enumerate(old_graph.edges):
        flow = old_net.flow_on(i)
        if flow <= 0:
            continue
        key = e.label.key(True) if e.label is not None else None
        if key is None:
            return None  # flow on an unmappable (unlabelled) edge
        j = index.get(key, -1)
        if j is None:
            return None  # duplicate key in the new graph: ambiguous
        if j < 0:
            continue  # edge collapsed into a self-loop: skip (cancels)
        if flow > cap[2 * j]:
            return None  # new capacity shrank: carried flow infeasible
        cap[2 * j] -= flow
        cap[2 * j + 1] += flow
        new_edge = graph.edges[j]
        excess[new_edge.head] += flow
        excess[new_edge.tail] -= flow
    carried = excess[net.sink]
    if carried < 0 or excess[net.source] != -carried:
        return None
    for v, surplus in enumerate(excess):
        if surplus and v != net.source and v != net.sink:
            return None  # conservation violated: not a valid s-t flow
    return carried


def dinic_max_flow(graph, warm_start=None, backend=None):
    """Compute the maximum s-t flow of ``graph`` with Dinic's algorithm.

    Returns ``(value, residual)`` where ``residual`` is the saturated
    :class:`ResidualNetwork` (usable for min-cut extraction).  The value
    is exact; ``INF`` is returned when the sink is reachable from the
    source over unbounded-capacity edges only... which cannot happen for
    trace graphs, whose source edges are always finite.

    ``warm_start`` optionally carries a prior solve (:class:`WarmStart`)
    of a graph this one grew out of: the prior flow is replayed onto the
    fresh residual (after feasibility and conservation checks) and only
    the *increment* is augmented.  The max-flow value is identical to a
    cold solve -- it is unique -- though the minimum cut found may sit
    elsewhere when several cuts share the optimal capacity.  A warm
    start that cannot be reused falls back to a cold solve and counts
    ``maxflow.warm_start.fallbacks``.

    ``backend`` follows the registry in :mod:`repro.shadow.fast`: under
    ``"native"`` (what ``"auto"`` resolves to when the compiled
    :mod:`repro._native` extension is importable) the BFS-level +
    blocking-flow loop runs as a C kernel over the same forward-star
    arrays -- an exact mirror, so values, residual capacities, cuts,
    and even the phase/path counters are bit-identical.  Warm-start
    application stays in Python (it reads edge labels); the kernel
    receives the pre-seeded residual.  A graph whose capacities exceed
    int64 falls back to the Python loop for that solve and counts
    ``maxflow.native.fallbacks``.

    With observability enabled, accounts wall time to ``phase.solve``,
    reports ``maxflow.dinic.bfs_phases`` / ``.augmenting_paths`` (and
    the ``maxflow.warm_start.*`` / ``maxflow.native.*`` counters), and
    fills the ``maxflow.dinic.path_length`` histogram; with tracing
    enabled, the solve runs under a ``solve.dinic`` span.
    """
    metrics = obs.get_metrics()
    kern = None
    if resolve_backend(backend) == "native":
        kern = native_kernels()
    net = ResidualNetwork(graph)
    s, t = net.source, net.sink
    if s == t:
        raise GraphError("source and sink coincide")
    carried = 0
    if warm_start is not None:
        carried = _apply_warm_start(graph, net, warm_start)
        if carried is None:
            carried = 0
            net = ResidualNetwork(graph)  # discard partial application
            if metrics.enabled:
                metrics.incr("maxflow.warm_start.fallbacks")
            obs.get_event_log().event("backend.fallback",
                                      kind="maxflow.warm_start")
        elif metrics.enabled:
            metrics.incr("maxflow.warm_start.hits")
            metrics.incr("maxflow.warm_start.reused_bits", carried)
    n = net.num_nodes
    head, cap, first, nxt = net.head, net.cap, net.first, net.nxt
    total = carried
    level = [0] * n
    it = [0] * n

    def bfs():
        for i in range(n):
            level[i] = -1
        level[s] = 0
        q = deque([s])
        while q:
            u = q.popleft()
            a = first[u]
            while a != -1:
                v = head[a]
                if cap[a] > 0 and level[v] < 0:
                    level[v] = level[u] + 1
                    q.append(v)
                a = nxt[a]
        return level[t] >= 0

    # An explicit-stack blocking-flow DFS, to stay safe on very deep trace
    # graphs (Python's recursion limit is easily hit by an uncollapsed
    # loop of a few thousand iterations).
    def blocking_flow():
        nonlocal aug_paths
        pushed_total = 0
        while True:
            path = []
            u = s
            while True:
                if u == t:
                    bottleneck = min(cap[a] for a in path)
                    for a in path:
                        cap[a] -= bottleneck
                        cap[a ^ 1] += bottleneck
                    pushed_total += bottleneck
                    aug_paths += 1
                    if record_paths:
                        path_lengths.append(len(path))
                    # Retreat to the first saturated arc on the path.
                    for idx, a in enumerate(path):
                        if cap[a] == 0:
                            del path[idx:]
                            break
                    u = head[path[-1]] if path else s
                    continue
                a = it[u]
                advanced = False
                while a != -1:
                    v = head[a]
                    if cap[a] > 0 and level[v] == level[u] + 1:
                        it[u] = a
                        path.append(a)
                        u = v
                        advanced = True
                        break
                    a = nxt[a]
                if advanced:
                    continue
                it[u] = -1
                level[u] = -1
                if not path:
                    return pushed_total
                a = path.pop()
                u = head[a ^ 1]
                it[u] = nxt[it[u]]

    bfs_phases = 0
    aug_paths = 0
    record_paths = metrics.enabled
    path_lengths = []
    with obs.get_tracer().span("solve.dinic", nodes=graph.num_nodes,
                               edges=graph.num_edges) as span:
        with metrics.phase("solve"):
            solved = None
            if kern is not None:
                # The C kernel mirrors the loop below arc for arc over
                # the same forward-star arrays (docs/backends.md) and
                # writes the saturated capacities back into net.cap; it
                # returns None -- fall through to the Python loop --
                # when a capacity does not fit in int64.
                solved = kern.dinic(n, s, t, net.first, net.nxt,
                                    net.head, net.cap, carried, INF,
                                    1 if record_paths else 0)
                if metrics.enabled:
                    metrics.incr("maxflow.native.solves"
                                 if solved is not None
                                 else "maxflow.native.fallbacks")
                if solved is None:
                    obs.get_event_log().event("backend.fallback",
                                              kind="maxflow.native")
            if solved is not None:
                total, bfs_phases, aug_paths, lengths = solved
                if lengths is not None:
                    path_lengths = lengths
            else:
                while bfs():
                    bfs_phases += 1
                    for i in range(n):
                        it[i] = first[i]
                    total += blocking_flow()
                    if total >= INF:
                        total = INF
                        break
        span.set(value=total)
    if metrics.enabled:
        metrics.incr("maxflow.solves")
        metrics.incr("maxflow.dinic.bfs_phases", bfs_phases)
        metrics.incr("maxflow.dinic.augmenting_paths", aug_paths)
        for length in path_lengths:
            metrics.observe("maxflow.dinic.path_length", length)
    return total, net


def max_flow_value(graph):
    """Convenience wrapper returning only the max-flow value."""
    value, _ = dinic_max_flow(graph)
    return value
