"""Graph collapsing and multi-run combination (Sections 3.2 and 5.2).

Both operations are the same union-find construction, applied either to a
single run's graph (to shrink it from runtime-sized to coverage-sized,
Section 5.2) or across the graphs of several runs (to force consistent
cut placement, Section 3.2):

    for each edge (u, v) with mergeable label l:
        union(u, placeholder("src", l));  union(v, placeholder("dst", l))

then rebuild the graph over the union-find classes, summing the
capacities of edges that share a label and dropping self-loops.  Any sum
of flows possible in the original graph(s) remains possible in the
combined graph, so bounds computed on it are still sound; cuts are
restricted to consistently-placed ones, which is exactly the point.

Labels can be merged context-sensitively (location + calling-context
hash) or context-insensitively (location only); the latter produces the
smaller graph whose size tracks code coverage.
"""

from __future__ import annotations

from .. import obs
from ..errors import GraphError
from .flowgraph import INF, FlowGraph
from .unionfind import UnionFind


class CollapseStats:
    """Before/after sizes of a collapse, for the Section 5.3 benchmarks."""

    __slots__ = ("original_nodes", "original_edges", "collapsed_nodes",
                 "collapsed_edges")

    def __init__(self, original_nodes, original_edges, collapsed_nodes,
                 collapsed_edges):
        self.original_nodes = original_nodes
        self.original_edges = original_edges
        self.collapsed_nodes = collapsed_nodes
        self.collapsed_edges = collapsed_edges

    def __repr__(self):
        return ("CollapseStats(nodes %d->%d, edges %d->%d)"
                % (self.original_nodes, self.collapsed_nodes,
                   self.original_edges, self.collapsed_edges))


def _edge_key(label, context_sensitive):
    if label is None:
        return None
    return label.key(context_sensitive)


def collapse_graphs(graphs, context_sensitive=True):
    """Combine one or more flow graphs by merging same-labelled edges.

    Args:
        graphs: iterable of :class:`FlowGraph`; one graph collapses it,
            several combines them (their sources are identified, as are
            their sinks).
        context_sensitive: whether the calling-context hash participates
            in the merge key.

    Returns:
        ``(combined_graph, stats)`` where ``stats`` is a
        :class:`CollapseStats`.
    """
    graphs = list(graphs)
    if not graphs:
        raise ValueError("collapse_graphs needs at least one graph")

    uf = UnionFind()
    # Keys: ("n", graph_index, node_id) for concrete nodes and
    # ("s", label_key) / ("d", label_key) for per-label placeholders.
    for gi, g in enumerate(graphs):
        uf.union(("n", 0, g.source), ("n", gi, g.source))
        uf.union(("n", 0, g.sink), ("n", gi, g.sink))
        for e in g.edges:
            key = _edge_key(e.label, context_sensitive)
            if key is None:
                continue
            uf.union(("n", gi, e.tail), ("s", key))
            uf.union(("n", gi, e.head), ("d", key))

    source_root = uf.find(("n", 0, graphs[0].source))
    sink_root = uf.find(("n", 0, graphs[0].sink))
    if source_root == sink_root:
        # Labels are meant to identify "the same program location"; a
        # label shared between a source-adjacent and sink-adjacent edge
        # breaks that contract and would silently destroy the graph.
        raise GraphError(
            "collapsing merged the source with the sink: edge labels are "
            "inconsistent with the edges' structural roles")
    combined = FlowGraph()
    node_of_root = {source_root: combined.source, sink_root: combined.sink}

    def node_for(gi, node):
        root = uf.find(("n", gi, node))
        mapped = node_of_root.get(root)
        if mapped is None:
            mapped = combined.add_node()
            node_of_root[root] = mapped
        return mapped

    # Accumulate capacities: labelled edges merge by key; unlabelled edges
    # merge by (endpoints, None), which is always sound for max-flow.
    merged = {}
    label_of = {}
    merge_hits = 0
    original_nodes = sum(g.num_nodes for g in graphs)
    original_edges = sum(g.num_edges for g in graphs)
    for gi, g in enumerate(graphs):
        for e in g.edges:
            tail = node_for(gi, e.tail)
            head = node_for(gi, e.head)
            if tail == head:
                continue  # self-loops carry no s-t flow
            key = _edge_key(e.label, context_sensitive)
            if key is None:
                bucket = (tail, head, e.label.kind if e.label else None, None)
            else:
                bucket = key
            prev = merged.get(bucket)
            if prev is None:
                prev = 0
            else:
                merge_hits += 1
            if prev >= INF or e.capacity >= INF:
                merged[bucket] = INF
            else:
                merged[bucket] = prev + e.capacity
            if bucket not in label_of:
                # Preserve a representative label (context dropped when
                # merging context-insensitively) and the endpoints.
                label = e.label
                if label is not None and not context_sensitive:
                    label = label.drop_context()
                label_of[bucket] = (tail, head, label)

    for bucket, capacity in merged.items():
        tail, head, label = label_of[bucket]
        combined.add_edge(tail, head, capacity, label)

    stats = CollapseStats(original_nodes, original_edges,
                          combined.num_nodes, combined.num_edges)
    metrics = obs.get_metrics()
    if metrics.enabled:
        metrics.incr("collapse.runs")
        metrics.incr("collapse.label_merge_hits", merge_hits)
        metrics.gauge("collapse.nodes_before", stats.original_nodes)
        metrics.gauge("collapse.nodes_after", stats.collapsed_nodes)
        metrics.gauge("collapse.edges_before", stats.original_edges)
        metrics.gauge("collapse.edges_after", stats.collapsed_edges)
    return combined, stats


def collapse_graph(graph, context_sensitive=True):
    """Collapse a single graph by code location (Section 5.2)."""
    return collapse_graphs([graph], context_sensitive=context_sensitive)


def combine_runs(graphs, context_sensitive=True):
    """Combine the graphs of multiple runs (Section 3.2).

    Alias of :func:`collapse_graphs`, named for the multi-run use case.
    """
    return collapse_graphs(graphs, context_sensitive=context_sensitive)
