"""Graph collapsing and multi-run combination (Sections 3.2 and 5.2).

Both operations are the same union-find construction, applied either to a
single run's graph (to shrink it from runtime-sized to coverage-sized,
Section 5.2) or across the graphs of several runs (to force consistent
cut placement, Section 3.2):

    for each edge (u, v) with mergeable label l:
        union(u, placeholder("src", l));  union(v, placeholder("dst", l))

then rebuild the graph over the union-find classes, summing the
capacities of edges that share a label and dropping self-loops.  Any sum
of flows possible in the original graph(s) remains possible in the
combined graph, so bounds computed on it are still sound; cuts are
restricted to consistently-placed ones, which is exactly the point.

Labels can be merged context-sensitively (location + calling-context
hash) or context-insensitively (location only); the latter produces the
smaller graph whose size tracks code coverage.
"""

from __future__ import annotations

from .. import obs
from ..errors import GraphError
from .flowgraph import INF, FlowGraph
from .unionfind import UnionFind


class CollapseStats:
    """Before/after sizes of a collapse, for the Section 5.3 benchmarks.

    ``failures`` is normally empty; a parallel combination running
    under ``on_error="collect"`` records there the
    :class:`~repro.batch.engine.JobFailure` of every chunk it had to
    *exclude* — the combined graph then covers only the surviving
    inputs (see ``FlowReport.partial``).
    """

    __slots__ = ("original_nodes", "original_edges", "collapsed_nodes",
                 "collapsed_edges", "failures")

    def __init__(self, original_nodes, original_edges, collapsed_nodes,
                 collapsed_edges, failures=()):
        self.original_nodes = original_nodes
        self.original_edges = original_edges
        self.collapsed_nodes = collapsed_nodes
        self.collapsed_edges = collapsed_edges
        self.failures = list(failures)

    def __repr__(self):
        return ("CollapseStats(nodes %d->%d, edges %d->%d%s)"
                % (self.original_nodes, self.collapsed_nodes,
                   self.original_edges, self.collapsed_edges,
                   ", %d failed chunks" % len(self.failures)
                   if self.failures else ""))


def _edge_key(label, context_sensitive):
    if label is None:
        return None
    return label.key(context_sensitive)


def dedup_safe(graph, context_sensitive=True):
    """Whether repeats of ``graph`` can combine by multiplicity alone.

    A duplicate of a graph contributes nothing structurally new to
    :func:`collapse_graphs` — no fresh node classes, no fresh edge
    buckets — exactly when every node that appears as an edge endpoint
    (terminals aside) is incident to at least one *mergeable* edge
    (``label.key() is not None``): those placeholders pin the
    duplicate's classes onto the first copy's.  A node reachable only
    through unmergeable edges would allocate a fresh class per copy,
    so such graphs must be folded literally.  Collapsed shards are
    dedup-safe in practice; raw traces with anonymous plumbing edges
    may not be.
    """
    covered = set()
    endpoints = set()
    for e in graph.edges:
        if _edge_key(e.label, context_sensitive) is None:
            endpoints.add(e.tail)
            endpoints.add(e.head)
        else:
            covered.add(e.tail)
            covered.add(e.head)
    endpoints.difference_update(covered)
    endpoints.discard(graph.source)
    endpoints.discard(graph.sink)
    return not endpoints


def _add_repeated(prev, capacity, times):
    """Fold ``times`` adds of ``capacity`` into ``prev`` in O(1).

    Bit-identical to ``times`` iterations of the per-edge saturating
    add (freeze once the running value reaches :data:`INF`), including
    the exact overshoot value at the INF boundary — the same replay
    discipline as :meth:`OnlineCollapser.repeat_edge`.
    """
    if times <= 0 or prev >= INF or capacity == 0:
        return prev
    if capacity >= INF:
        return INF
    total = prev + capacity * times
    if total < INF:
        return total
    # Freeze at the first step that reaches INF.
    steps = (INF - prev + capacity - 1) // capacity
    return prev + min(steps, times) * capacity


def collapse_graphs(graphs, context_sensitive=True, multiplicities=None):
    """Combine one or more flow graphs by merging same-labelled edges.

    Args:
        graphs: iterable of :class:`FlowGraph`; one graph collapses it,
            several combines them (their sources are identified, as are
            their sinks).
        context_sensitive: whether the calling-context hash participates
            in the merge key.
        multiplicities: optional per-graph repeat counts (each ``>= 1``,
            same length as ``graphs``).  ``multiplicities=[3, 1]`` is
            equivalent to passing ``[g0, g0, g0, g1]`` literally but
            folds each :func:`dedup_safe` graph's repeats in O(1) per
            edge bucket — the contract the content-addressed shard
            store relies on.  Graphs that are not dedup-safe are
            expanded and folded literally, so the equivalence holds
            unconditionally.

    Returns:
        ``(combined_graph, stats)`` where ``stats`` is a
        :class:`CollapseStats`.
    """
    graphs = list(graphs)
    if not graphs:
        raise ValueError("collapse_graphs needs at least one graph")
    if multiplicities is None:
        counts = [1] * len(graphs)
    else:
        counts = [int(m) for m in multiplicities]
        if len(counts) != len(graphs):
            raise ValueError(
                "got %d multiplicities for %d graphs"
                % (len(counts), len(graphs)))
        if any(m < 1 for m in counts):
            raise ValueError("multiplicities must be >= 1: %r" % (counts,))
        if any(m > 1 for m in counts):
            expanded, expanded_counts = [], []
            for g, m in zip(graphs, counts):
                if m > 1 and not dedup_safe(g, context_sensitive):
                    expanded.extend([g] * m)
                    expanded_counts.extend([1] * m)
                else:
                    expanded.append(g)
                    expanded_counts.append(m)
            graphs, counts = expanded, expanded_counts
    span = obs.get_tracer().span(
        "collapse.graphs", graphs=len(graphs), runs=sum(counts),
        context_sensitive=bool(context_sensitive))
    with span:
        return _collapse_graphs(graphs, counts, context_sensitive, span)


def _collapse_graphs(graphs, counts, context_sensitive, span):
    uf = UnionFind()
    # Keys: ("n", graph_index, node_id) for concrete nodes and
    # ("s", label_key) / ("d", label_key) for per-label placeholders.
    for gi, g in enumerate(graphs):
        uf.union(("n", 0, g.source), ("n", gi, g.source))
        uf.union(("n", 0, g.sink), ("n", gi, g.sink))
        for e in g.edges:
            key = _edge_key(e.label, context_sensitive)
            if key is None:
                continue
            uf.union(("n", gi, e.tail), ("s", key))
            uf.union(("n", gi, e.head), ("d", key))

    source_root = uf.find(("n", 0, graphs[0].source))
    sink_root = uf.find(("n", 0, graphs[0].sink))
    if source_root == sink_root:
        # Labels are meant to identify "the same program location"; a
        # label shared between a source-adjacent and sink-adjacent edge
        # breaks that contract and would silently destroy the graph.
        raise GraphError(
            "collapsing merged the source with the sink: edge labels are "
            "inconsistent with the edges' structural roles")
    combined = FlowGraph()
    node_of_root = {source_root: combined.source, sink_root: combined.sink}

    def node_for(gi, node):
        root = uf.find(("n", gi, node))
        mapped = node_of_root.get(root)
        if mapped is None:
            mapped = combined.add_node()
            node_of_root[root] = mapped
        return mapped

    # Accumulate capacities: labelled edges merge by key; unlabelled edges
    # merge by (endpoints, None), which is always sound for max-flow.
    merged = {}
    label_of = {}
    merge_hits = 0
    original_nodes = sum(m * g.num_nodes for g, m in zip(graphs, counts))
    original_edges = sum(m * g.num_edges for g, m in zip(graphs, counts))
    for gi, g in enumerate(graphs):
        m = counts[gi]
        for e in g.edges:
            tail = node_for(gi, e.tail)
            head = node_for(gi, e.head)
            if tail == head:
                continue  # self-loops carry no s-t flow
            key = _edge_key(e.label, context_sensitive)
            if key is None:
                bucket = (tail, head, e.label.kind if e.label else None, None)
            else:
                bucket = key
            prev = merged.get(bucket)
            if prev is None:
                prev = 0
                merge_hits += m - 1
            else:
                merge_hits += m
            merged[bucket] = _add_repeated(prev, e.capacity, m)
            if bucket not in label_of:
                # Preserve a representative label (context dropped when
                # merging context-insensitively) and the endpoints.
                label = e.label
                if label is not None and not context_sensitive:
                    label = label.drop_context()
                label_of[bucket] = (tail, head, label)

    for bucket, capacity in merged.items():
        tail, head, label = label_of[bucket]
        combined.add_edge(tail, head, capacity, label)

    stats = CollapseStats(original_nodes, original_edges,
                          combined.num_nodes, combined.num_edges)
    span.set(nodes_before=stats.original_nodes,
             nodes_after=stats.collapsed_nodes,
             edges_before=stats.original_edges,
             edges_after=stats.collapsed_edges)
    metrics = obs.get_metrics()
    if metrics.enabled:
        metrics.incr("collapse.runs")
        metrics.incr("collapse.label_merge_hits", merge_hits)
        metrics.gauge("collapse.nodes_before", stats.original_nodes)
        metrics.gauge("collapse.nodes_after", stats.collapsed_nodes)
        metrics.gauge("collapse.edges_before", stats.original_edges)
        metrics.gauge("collapse.edges_after", stats.collapsed_edges)
    return combined, stats


def collapse_graph(graph, context_sensitive=True):
    """Collapse a single graph by code location (Section 5.2)."""
    return collapse_graphs([graph], context_sensitive=context_sensitive)


# ----------------------------------------------------------------------
# Online (incremental) collapsing


class _OnlineEdge:
    """One collapsed edge being accumulated: a label key's bucket.

    ``index`` is the edge's position in the most recently materialized
    graph (``None`` until then, and ``None`` for dropped self-loops).
    """

    __slots__ = ("tail", "head", "capacity", "label", "index")

    def __init__(self, tail, head, capacity, label):
        self.tail = tail
        self.head = head
        self.capacity = capacity
        self.label = label
        self.index = None

    def add_capacity(self, amount):
        if self.capacity >= INF or amount >= INF:
            self.capacity = INF
        else:
            self.capacity += amount


class OnlineCollapser:
    """Incremental union-find collapse: same partition as
    :func:`collapse_graphs`, built edge-by-edge while the trace runs.

    The post-hoc collapse unions every edge endpoint with per-label
    placeholders and rebuilds at the end; this class maintains the same
    partition *during* construction, so the live structure is
    coverage-sized (one node class per first-seen label role, one edge
    bucket per label key) instead of runtime-sized.  An edge whose label
    key was already seen adds its capacity to the existing bucket
    (saturating at :data:`~repro.graph.flowgraph.INF`) and unions its
    endpoints with the bucket's; it allocates nothing.

    Node ids are dense ints handed out by :meth:`new_node`, with ids 0/1
    reserved for the source/sink; ids stay valid forever (a later merge
    redirects them through the union-find), so callers can hold on to
    them across arbitrarily many merges.  :meth:`materialize` rebuilds a
    :class:`FlowGraph` over the current classes, dropping self-loops,
    exactly as the post-hoc rebuild does.
    """

    SOURCE = FlowGraph.SOURCE
    SINK = FlowGraph.SINK

    __slots__ = ("context_sensitive", "_uf", "_next_id", "_buckets",
                 "_deferred", "live_nodes", "peak_live_nodes", "merge_hits")

    def __init__(self, context_sensitive=True):
        self.context_sensitive = context_sensitive
        self._uf = UnionFind()
        self._next_id = 2
        #: label key -> :class:`_OnlineEdge`
        self._buckets = {}
        #: unmergeable (``key() is None``) edges, resolved at materialize
        self._deferred = []
        self.live_nodes = 2
        self.peak_live_nodes = 2
        self.merge_hits = 0

    @property
    def live_edges(self):
        """Current collapsed edge count (buckets + unmergeable edges)."""
        return len(self._buckets) + len(self._deferred)

    def new_node(self):
        """Allocate a fresh node class id."""
        node = self._next_id
        self._next_id += 1
        self.live_nodes += 1
        if self.live_nodes > self.peak_live_nodes:
            self.peak_live_nodes = self.live_nodes
        return node

    def _merge(self, a, b):
        uf = self._uf
        if uf.find(a) != uf.find(b):
            uf.union(a, b)
            self.live_nodes -= 1

    def add_edge(self, tail, head, capacity, label=None):
        """Fold one edge in; returns its :class:`_OnlineEdge` bucket."""
        key = None if label is None else label.key(self.context_sensitive)
        if key is None:
            edge = _OnlineEdge(tail, head, capacity, label)
            self._deferred.append(edge)
            return edge
        edge = self._buckets.get(key)
        if edge is None:
            if not self.context_sensitive and label.context is not None:
                label = label.drop_context()
            edge = _OnlineEdge(tail, head, capacity, label)
            self._buckets[key] = edge
            return edge
        self.merge_hits += 1
        edge.add_capacity(capacity)
        self._merge(edge.tail, tail)
        self._merge(edge.head, head)
        return edge

    def repeat_edge(self, label, capacity, times):
        """Fold ``times`` exact repeats of an existing bucket in O(1).

        Equivalent to ``times`` more :meth:`add_edge` calls with the
        bucket's own endpoints: capacity accumulates (saturating at
        :data:`INF` exactly as the per-call path does) and every repeat
        counts as a merge hit; the partition is untouched because the
        endpoints already coincide.  The label must have been seen --
        this is the bulk tail of a batch whose first element went
        through the normal path.
        """
        key = label.key(self.context_sensitive)
        edge = self._buckets.get(key)
        if edge is None:
            raise KeyError("repeat_edge for unseen label %r" % (label,))
        self.merge_hits += times
        total = edge.capacity + capacity * times
        if total >= INF:
            # Replay per-step saturation so the result is bit-identical
            # to the loop even at the INF boundary.
            for _ in range(times):
                edge.add_capacity(capacity)
        else:
            edge.capacity = total
        return edge

    def bucket_for(self, label):
        """The collapsed bucket for ``label``'s merge key, or ``None``."""
        key = label.key(self.context_sensitive)
        return None if key is None else self._buckets.get(key)

    def head_for(self, tail, capacity, label):
        """Edge from ``tail`` to a fresh-or-reused head; returns the head.

        The online analogue of "allocate a node, then edge into it": if
        ``label``'s key was already seen, the existing bucket's head
        class is returned and no node is allocated.
        """
        key = label.key(self.context_sensitive)
        edge = None if key is None else self._buckets.get(key)
        if edge is None:
            head = self.new_node()
            self.add_edge(tail, head, capacity, label)
            return head
        self.merge_hits += 1
        edge.add_capacity(capacity)
        self._merge(edge.tail, tail)
        return self._uf.find(edge.head)

    def capped_pair(self, capacity, label):
        """Node splitting with reuse: ``(inner, outer)`` for ``label``.

        The online analogue of
        :meth:`~repro.graph.flowgraph.FlowGraph.add_capped_node`: a
        repeat of the label reuses the existing pair and adds
        ``capacity`` to the connecting edge.
        """
        key = label.key(self.context_sensitive)
        edge = None if key is None else self._buckets.get(key)
        if edge is None:
            inner = self.new_node()
            outer = self.new_node()
            self.add_edge(inner, outer, capacity, label)
            return inner, outer
        self.merge_hits += 1
        edge.add_capacity(capacity)
        uf = self._uf
        return uf.find(edge.tail), uf.find(edge.head)

    def materialize(self):
        """Rebuild a :class:`FlowGraph` over the current classes.

        Matches the post-hoc rebuild exactly: one node per class
        incident to a collapsed edge, self-loops dropped, unmergeable
        edges bucketed by (endpoints, kind).  Also stamps each bucket's
        ``index`` with its edge index in the returned graph.
        """
        uf = self._uf
        source_root = uf.find(self.SOURCE)
        sink_root = uf.find(self.SINK)
        if source_root == sink_root:
            raise GraphError(
                "collapsing merged the source with the sink: edge labels "
                "are inconsistent with the edges' structural roles")
        graph = FlowGraph()
        node_of_root = {source_root: graph.source, sink_root: graph.sink}

        def node_for(node):
            root = uf.find(node)
            mapped = node_of_root.get(root)
            if mapped is None:
                mapped = graph.add_node()
                node_of_root[root] = mapped
            return mapped

        for edge in self._buckets.values():
            tail = node_for(edge.tail)
            head = node_for(edge.head)
            if tail == head:
                edge.index = None
                continue
            edge.index = graph.add_edge(tail, head, edge.capacity, edge.label)
        # Unmergeable edges fold by (endpoints, kind), as post-hoc.
        merged = {}
        for edge in self._deferred:
            edge.index = None
            tail = node_for(edge.tail)
            head = node_for(edge.head)
            if tail == head:
                continue
            bucket = (tail, head, edge.label.kind if edge.label else None)
            prev = merged.get(bucket)
            if prev is None:
                merged[bucket] = _OnlineEdge(tail, head, edge.capacity,
                                             edge.label)
            else:
                prev.add_capacity(edge.capacity)
        for bucket_edge in merged.values():
            graph.add_edge(bucket_edge.tail, bucket_edge.head,
                           bucket_edge.capacity, bucket_edge.label)
        return graph


def collapse_graph_online(graph, context_sensitive=True):
    """Collapse a finished graph by replaying it through the online path.

    Functionally equivalent to :func:`collapse_graph` (the equivalence
    suite asserts identical node/edge counts, max-flow value, and
    min-cut capacity); exists as the bridge for testing and for callers
    holding a completed graph.  The real win of
    :class:`OnlineCollapser` is collapsing *during* tracing, which
    :class:`~repro.core.tracker.CollapsingTraceBuilder` does.
    """
    collapser = OnlineCollapser(context_sensitive=context_sensitive)
    node_of = {graph.source: OnlineCollapser.SOURCE,
               graph.sink: OnlineCollapser.SINK}

    def map_node(node):
        mapped = node_of.get(node)
        if mapped is None:
            mapped = collapser.new_node()
            node_of[node] = mapped
        return mapped

    for e in graph.edges:
        collapser.add_edge(map_node(e.tail), map_node(e.head), e.capacity,
                           e.label)
    combined = collapser.materialize()
    stats = CollapseStats(graph.num_nodes, graph.num_edges,
                          combined.num_nodes, combined.num_edges)
    return combined, stats


def combine_runs(graphs, context_sensitive=True, jobs=1, faults=None,
                 store=None):
    """Combine the graphs of multiple runs (Section 3.2).

    Alias of :func:`collapse_graphs`, named for the multi-run use case.
    ``jobs > 1`` fans the combination over worker processes as a tree
    reduction (:func:`repro.batch.runs.combine_graphs_jobs`): chunks
    merge level by level across the pool and the parent folds only the
    last level, so no process ever holds more than O(coverage) graph.
    The combined graph is identical to the serial result.  ``faults``
    (a :class:`~repro.batch.engine.FaultPolicy`) configures that
    fan-out's failure handling; see :func:`combine_graphs_jobs`.

    ``store`` (a :class:`~repro.store.ShardStore` or a directory path)
    appends the graphs to a content-addressed corpus first and combines
    the *whole* store via
    :func:`repro.batch.runs.combine_store_jobs` — identical graphs
    dedup to a multiplicity, and reduction levels exchange digests
    instead of serialized graphs.  On a fresh store the returned
    ``(graph, stats)`` is bit-identical to the plain combine.
    """
    if store is not None:
        from ..batch.runs import combine_store_jobs
        from ..store import ShardStore
        shard_store = store if isinstance(store, ShardStore) \
            else ShardStore(store)
        for graph in graphs:
            shard_store.put(graph)
        result = combine_store_jobs(shard_store,
                                    context_sensitive=context_sensitive,
                                    jobs=jobs or 1, faults=faults)
        return result.report.graph, result.report.collapse_stats
    if jobs and jobs > 1:
        from ..batch.runs import combine_graphs_jobs
        return combine_graphs_jobs(graphs,
                                   context_sensitive=context_sensitive,
                                   jobs=jobs, faults=faults)
    return collapse_graphs(graphs, context_sensitive=context_sensitive)
