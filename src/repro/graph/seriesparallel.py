"""Series-parallel reduction (Section 5.1).

The paper explored SPQR trees to exploit series-parallel structure in
trace graphs, concluding that real graphs keep an irreducible core (16 %
of bzip2's graph) that still needs super-linear processing.  This module
implements the classical two-terminal series-parallel reduction, which is
the part of that machinery relevant to max-flow:

* **parallel reduction** — edges with identical endpoints merge into one
  edge whose capacity is the *sum* of the originals;
* **series reduction** — an interior node with exactly one in-edge and
  one out-edge is contracted, the two edges fusing into one whose
  capacity is the *minimum* of the originals.

Iterating to a fixpoint computes the max flow outright (linear time) when
the graph is two-terminal series-parallel; otherwise it leaves an
irreducible core whose relative size is the statistic the paper reports.
"""

from __future__ import annotations

from .flowgraph import INF, FlowGraph


class SPReduction:
    """Outcome of a series-parallel reduction pass."""

    __slots__ = ("original_nodes", "original_edges", "reduced_nodes",
                 "reduced_edges", "graph")

    def __init__(self, original_nodes, original_edges, graph):
        self.original_nodes = original_nodes
        self.original_edges = original_edges
        self.graph = graph
        self.reduced_nodes = graph.num_nodes
        self.reduced_edges = graph.num_edges

    @property
    def is_series_parallel(self):
        """Whether the graph reduced to a single source->sink edge.

        (Two-terminal series-parallel DAGs are exactly the graphs for
        which this reduction terminates with one edge.)
        """
        g = self.graph
        return (g.num_edges == 1
                and g.edges[0].tail == g.source
                and g.edges[0].head == g.sink)

    @property
    def flow_if_sp(self):
        """The max-flow value, when fully reduced; ``None`` otherwise."""
        if self.is_series_parallel:
            return self.graph.edges[0].capacity
        return None

    @property
    def irreducible_fraction(self):
        """Fraction of the original edges surviving reduction."""
        if self.original_edges == 0:
            return 0.0
        return self.reduced_edges / self.original_edges

    def __repr__(self):
        return ("SPReduction(edges %d->%d, irreducible=%.3f, sp=%s)"
                % (self.original_edges, self.reduced_edges,
                   self.irreducible_fraction, self.is_series_parallel))


def _live_adjacency(edges):
    """Build per-node in/out edge-index sets over non-deleted edges."""
    outs = {}
    ins = {}
    for i, e in enumerate(edges):
        if e is None:
            continue
        outs.setdefault(e.tail, set()).add(i)
        ins.setdefault(e.head, set()).add(i)
    return outs, ins


def reduce_series_parallel(graph):
    """Apply series/parallel reductions to a fixpoint.

    The input graph must be acyclic between its terminals for the result
    to equal the true max-flow on full reduction; trace graphs always
    are.  Zero-capacity edges are treated like any other (they reduce to
    zero-capacity results).

    Returns an :class:`SPReduction`; the input graph is not modified.
    """
    # Work over a mutable edge list; ``None`` marks deletion.
    work = [[e.tail, e.head, e.capacity] for e in graph.edges]
    edges = list(range(len(work)))
    outs, ins = {}, {}
    for i, (t, h, _) in enumerate(work):
        outs.setdefault(t, set()).add(i)
        ins.setdefault(h, set()).add(i)

    s, t = graph.source, graph.sink
    # Nodes whose local structure may admit a reduction.
    pending = set(outs) | set(ins)
    pending.discard(s)
    pending.discard(t)

    def parallel_reduce_at(node):
        """Merge parallel edges among the out-edges of ``node``."""
        changed = False
        by_head = {}
        for i in list(outs.get(node, ())):
            head = work[i][1]
            j = by_head.get(head)
            if j is None:
                by_head[head] = i
            else:
                cj, ci = work[j][2], work[i][2]
                work[j][2] = INF if (cj >= INF or ci >= INF) else cj + ci
                outs[node].discard(i)
                ins[head].discard(i)
                work[i] = None
                changed = True
        return changed

    changed = True
    while changed:
        changed = False
        # Parallel reductions everywhere (including at the terminals).
        for node in list(outs):
            if parallel_reduce_at(node):
                changed = True
        # Series reductions at interior nodes.
        for node in list(pending):
            node_ins = ins.get(node, set())
            node_outs = outs.get(node, set())
            if len(node_ins) == 1 and len(node_outs) == 1:
                (i,) = node_ins
                (j,) = node_outs
                if i == j:
                    continue  # self-loop; leave for validation to notice
                tail = work[i][0]
                head = work[j][1]
                if tail == node or head == node:
                    continue
                cap = min(work[i][2], work[j][2])
                # Fuse: redirect edge i to head with the bottleneck
                # capacity, drop edge j.
                ins[node].discard(i)
                outs[node].discard(j)
                ins[head].discard(j)
                work[j] = None
                work[i][1] = head
                work[i][2] = cap
                ins.setdefault(head, set()).add(i)
                changed = True

    reduced = FlowGraph()
    remap = {s: reduced.source, t: reduced.sink}
    for rec in work:
        if rec is None:
            continue
        tail, head, cap = rec
        if tail not in remap:
            remap[tail] = reduced.add_node()
        if head not in remap:
            remap[head] = reduced.add_node()
        if remap[tail] == remap[head]:
            continue
        reduced.add_edge(remap[tail], remap[head], cap)
    return SPReduction(graph.num_nodes, graph.num_edges, reduced)
