"""Flow-network substrate: graphs, max-flow, min-cut, collapsing.

This package implements the graph-theoretic half of the paper: the
capacitated flow networks that model executions (Section 2), the maximum
flow algorithms that bound information leakage (Section 5), the min-cut
extraction that yields checkable policies (Section 6.1), and the
label-driven collapsing/combining of Sections 3.2 and 5.2.
"""

from .flowgraph import INF, Edge, EdgeLabel, FlowGraph
from .maxflow import (ResidualNetwork, WarmStart, dinic_max_flow,
                      max_flow_value)
from .edmonds_karp import edmonds_karp_max_flow
from .push_relabel import push_relabel_max_flow
from .mincut import CutEdge, MinCut, min_cut, min_cut_from_residual
from .collapse import (CollapseStats, OnlineCollapser, collapse_graph,
                       collapse_graph_online, collapse_graphs, combine_runs,
                       dedup_safe)
from .seriesparallel import SPReduction, reduce_series_parallel
from .unionfind import UnionFind
from .dot import to_dot, write_dot
from .serialize import (dump_graph, dump_graph_binary, dumps_graph,
                        graph_digest, load_graph, load_graph_binary,
                        read_graph, read_graph_binary, save_graph,
                        save_graph_binary, text_digest)

__all__ = [
    "INF", "Edge", "EdgeLabel", "FlowGraph",
    "ResidualNetwork", "WarmStart", "dinic_max_flow", "max_flow_value",
    "edmonds_karp_max_flow", "push_relabel_max_flow",
    "CutEdge", "MinCut", "min_cut", "min_cut_from_residual",
    "CollapseStats", "OnlineCollapser", "collapse_graph",
    "collapse_graph_online", "collapse_graphs", "combine_runs",
    "dedup_safe",
    "SPReduction", "reduce_series_parallel",
    "UnionFind",
    "to_dot", "write_dot",
    "dump_graph", "dump_graph_binary", "dumps_graph", "graph_digest",
    "load_graph", "load_graph_binary", "read_graph", "read_graph_binary",
    "save_graph", "save_graph_binary", "text_digest",
]
