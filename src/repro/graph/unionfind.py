"""Disjoint-set (union-find) structure.

Used by the graph-collapsing machinery of Sections 3.2 and 5.2, which the
paper describes as running "in almost-linear time with a union-find
structure", and by the series-parallel analysis.

Keys may be arbitrary hashable objects; sets are created lazily on first
mention, so callers can freely union node ids with synthetic placeholder
keys such as ``("src", label)``.
"""

from __future__ import annotations


class UnionFind:
    """Union-find with path compression and union by rank."""

    def __init__(self):
        self._parent = {}
        self._rank = {}
        self._count = 0

    def __len__(self):
        """Number of elements ever mentioned."""
        return len(self._parent)

    @property
    def set_count(self):
        """Number of disjoint sets among the mentioned elements."""
        return self._count

    def find(self, key):
        """Return the canonical representative of ``key``'s set.

        Mentions ``key`` (creating a singleton set) if it is new.
        """
        parent = self._parent
        if key not in parent:
            parent[key] = key
            self._rank[key] = 0
            self._count += 1
            return key
        root = key
        while parent[root] != root:
            root = parent[root]
        while parent[key] != root:
            parent[key], key = root, parent[key]
        return root

    def union(self, a, b):
        """Merge the sets containing ``a`` and ``b``; return the new root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        rank = self._rank
        if rank[ra] < rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if rank[ra] == rank[rb]:
            rank[ra] += 1
        self._count -= 1
        return ra

    def same(self, a, b):
        """Whether ``a`` and ``b`` are currently in the same set."""
        return self.find(a) == self.find(b)

    def groups(self):
        """Return a mapping from representative to the list of members."""
        out = {}
        for key in self._parent:
            out.setdefault(self.find(key), []).append(key)
        return out
