"""FIFO push-relabel maximum flow (ablation alternative).

The best general max-flow algorithms the paper cites run in at least
O(V*E); push-relabel is the classic representative of that family.  This
implementation uses the FIFO active-node discipline with the gap
heuristic, which is plenty for the collapsed graphs (tens of thousands of
nodes) the measurement pipeline produces.
"""

from __future__ import annotations

from collections import deque

from .. import obs
from ..errors import GraphError
from .maxflow import ResidualNetwork


def push_relabel_max_flow(graph):
    """Compute the maximum s-t flow with FIFO push-relabel.

    Returns ``(value, residual)``, matching :func:`.maxflow.dinic_max_flow`.
    The returned residual network is fully saturated, so min-cut
    extraction via :meth:`ResidualNetwork.source_side` works identically.
    With observability enabled, accounts wall time to ``phase.solve``
    and reports ``maxflow.push_relabel.pushes`` / ``.relabels``.
    """
    metrics = obs.get_metrics()
    net = ResidualNetwork(graph)
    s, t = net.source, net.sink
    if s == t:
        raise GraphError("source and sink coincide")
    head, cap, first, nxt = net.head, net.cap, net.first, net.nxt
    n = net.num_nodes

    height = [0] * n
    excess = [0] * n
    current = list(first)
    height[s] = n
    height_count = [0] * (2 * n + 1)
    height_count[0] = n - 1
    height_count[n] = 1

    active = deque()
    pushes = 0
    relabels = 0

    def push(u, a):
        nonlocal pushes
        pushes += 1
        v = head[a]
        delta = excess[u] if excess[u] < cap[a] else cap[a]
        cap[a] -= delta
        cap[a ^ 1] += delta
        excess[u] -= delta
        was_idle = excess[v] == 0
        excess[v] += delta
        if was_idle and v != s and v != t:
            active.append(v)

    def relabel(u):
        nonlocal relabels
        relabels += 1
        old = height[u]
        best = 2 * n
        a = first[u]
        while a != -1:
            if cap[a] > 0 and height[head[a]] + 1 < best:
                best = height[head[a]] + 1
            a = nxt[a]
        height_count[old] -= 1
        # Gap heuristic: if no node remains at the old height, every node
        # strictly above it (but below n) can never reach the sink again.
        if height_count[old] == 0 and old < n:
            for v in range(n):
                if v != s and old < height[v] < n:
                    height_count[height[v]] -= 1
                    height[v] = n + 1
                    height_count[n + 1] += 1
        height[u] = best
        if best <= 2 * n:
            height_count[best] += 1
        current[u] = first[u]

    span = obs.get_tracer().span("solve.push_relabel",
                                 nodes=graph.num_nodes,
                                 edges=graph.num_edges)
    with span, metrics.phase("solve"):
        # Saturate all source arcs.
        a = first[s]
        while a != -1:
            if cap[a] > 0:
                v = head[a]
                delta = cap[a]
                cap[a] = 0
                cap[a ^ 1] += delta
                was_idle = excess[v] == 0
                excess[v] += delta
                if was_idle and v != s and v != t:
                    active.append(v)
            a = nxt[a]

        while active:
            u = active.popleft()
            while excess[u] > 0:
                a = current[u]
                if a == -1:
                    relabel(u)
                    if height[u] > 2 * n:
                        break
                    continue
                if cap[a] > 0 and height[u] == height[head[a]] + 1:
                    push(u, a)
                else:
                    current[u] = nxt[a]
        span.set(value=excess[t])

    if metrics.enabled:
        metrics.incr("maxflow.solves")
        metrics.incr("maxflow.push_relabel.pushes", pushes)
        metrics.incr("maxflow.push_relabel.relabels", relabels)
    return excess[t], net
