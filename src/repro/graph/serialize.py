"""Flow-graph persistence.

The paper's tool can emit each edge "immediately, as an ordered pair of
node tags" so that memory use stays bounded by the program's footprint
(§4.2).  This module provides the equivalent artifact boundary for this
reproduction: a compact, line-oriented text format for graphs (and
their labels), so a trace captured in one process can be solved,
collapsed, combined, or rendered in another.

Format (one record per line, tab-separated)::

    flowgraph-v1
    n\t<num_nodes>
    e\t<tail>\t<head>\t<capacity|inf>[\t<kind>\t<location>\t<context|->]
    c\t<category>\t<edge_index>...

``c`` records are optional and carry the Section 10.1 multi-secret
category tags: each maps a secret category to the indices of its source
edges (``TraceBuilder.category_edges``), so a tagged graph shipped to
another process can still be swept per-category there.
"""

from __future__ import annotations

from ..errors import GraphError
from .flowgraph import INF, EdgeLabel, FlowGraph

_HEADER = "flowgraph-v1"


def dump_graph(graph, stream, category_edges=None):
    """Write ``graph`` to a text ``stream``; returns the edge count.

    ``category_edges`` (a mapping category -> source-edge indices, as
    kept by ``TraceBuilder.category_edges``) is written as ``c``
    records; when omitted, a ``category_edges`` attribute on the graph
    itself (as attached by :func:`load_graph`) is used, so save → load →
    save round trips preserve the tags without replumbing.
    """
    if category_edges is None:
        category_edges = getattr(graph, "category_edges", None)
    stream.write(_HEADER + "\n")
    stream.write("n\t%d\n" % graph.num_nodes)
    for e in graph.edges:
        capacity = "inf" if e.capacity >= INF else str(e.capacity)
        if e.label is None:
            stream.write("e\t%d\t%d\t%s\n" % (e.tail, e.head, capacity))
        else:
            context = "-" if e.label.context is None \
                else str(e.label.context)
            stream.write("e\t%d\t%d\t%s\t%s\t%s\t%s\n" % (
                e.tail, e.head, capacity, e.label.kind,
                str(e.label.location).replace("\t", " "), context))
    for category in sorted(category_edges or (), key=str):
        indices = category_edges[category]
        stream.write("c\t%s\t%s\n" % (
            str(category).replace("\t", " "),
            "\t".join(str(index) for index in indices)))
    return graph.num_edges


def load_graph(stream):
    """Read a graph written by :func:`dump_graph`.

    Labels come back with *string* locations (the human-readable
    rendering); that is exactly what collapsing and cut policies key
    on, so save/collapse/measure pipelines are unaffected.  Any ``c``
    records come back as a ``category_edges`` attribute on the graph
    (absent when the dump carried no tags).

    Robustness contract: *any* malformed input — truncated lines,
    non-integer fields, out-of-range node references, a missing header
    — raises :class:`~repro.errors.GraphError` carrying the offending
    line number, never a bare ``ValueError``/``IndexError``.  Batch
    parents rely on this to classify a corrupt graph shipped home from
    a worker as a job failure instead of crashing the merge.
    """
    header = stream.readline().strip()
    if header != _HEADER:
        raise GraphError("not a %s file (got %r)" % (_HEADER, header))
    graph = FlowGraph()
    categories = {}
    for line_number, line in enumerate(stream, start=2):
        line = line.rstrip("\n")
        if not line:
            continue
        fields = line.split("\t")
        try:
            if fields[0] == "n":
                if len(fields) != 2:
                    raise GraphError("node record has %d fields, want 2"
                                     % len(fields))
                declared = int(fields[1])
                if declared < graph.num_nodes:
                    raise GraphError("node count too small")
                graph.add_nodes(declared - graph.num_nodes)
            elif fields[0] == "e":
                if len(fields) not in (4, 7):
                    raise GraphError("edge record has %d fields, "
                                     "want 4 (unlabelled) or 7 (labelled)"
                                     % len(fields))
                tail, head = int(fields[1]), int(fields[2])
                capacity = INF if fields[3] == "inf" else int(fields[3])
                label = None
                if len(fields) > 4:
                    context = None if fields[6] == "-" else int(fields[6])
                    label = EdgeLabel(fields[5], context, fields[4])
                graph.add_edge(tail, head, capacity, label)
            elif fields[0] == "c":
                if len(fields) < 2 or not fields[1]:
                    raise GraphError("category record without a name")
                categories[fields[1]] = [int(index)
                                         for index in fields[2:]]
            else:
                raise GraphError("bad record %r" % fields[0])
        except GraphError as error:
            raise GraphError("%s at line %d" % (error, line_number)) \
                from None
        except (ValueError, IndexError) as error:
            raise GraphError("malformed %r record at line %d: %s"
                             % (fields[0], line_number, error)) from None
    if categories:
        for category, indices in categories.items():
            for index in indices:
                if not 0 <= index < graph.num_edges:
                    raise GraphError(
                        "category %r references edge %d, but the graph "
                        "has %d edges" % (category, index,
                                          graph.num_edges))
        graph.category_edges = categories
    return graph


def save_graph(path, graph):
    """:func:`dump_graph` to a file path; returns the path."""
    with open(path, "w") as handle:
        dump_graph(graph, handle)
    return path


def read_graph(path):
    """:func:`load_graph` from a file path."""
    with open(path) as handle:
        return load_graph(handle)
