"""Flow-graph persistence.

The paper's tool can emit each edge "immediately, as an ordered pair of
node tags" so that memory use stays bounded by the program's footprint
(§4.2).  This module provides the equivalent artifact boundary for this
reproduction: a compact, line-oriented text format for graphs (and
their labels), so a trace captured in one process can be solved,
collapsed, combined, or rendered in another.

Format (one record per line, tab-separated)::

    flowgraph-v1
    n\t<num_nodes>
    e\t<tail>\t<head>\t<capacity|inf>[\t<kind>\t<location>\t<context|->]
    c\t<category>\t<edge_index>...

``c`` records are optional and carry the Section 10.1 multi-secret
category tags: each maps a secret category to the indices of its source
edges (``TraceBuilder.category_edges``), so a tagged graph shipped to
another process can still be swept per-category there.
"""

from __future__ import annotations

import hashlib
import io
import struct

from ..errors import GraphError
from .flowgraph import INF, EdgeLabel, FlowGraph

_HEADER = "flowgraph-v1"


def dump_graph(graph, stream, category_edges=None):
    """Write ``graph`` to a text ``stream``; returns the edge count.

    ``category_edges`` (a mapping category -> source-edge indices, as
    kept by ``TraceBuilder.category_edges``) is written as ``c``
    records; when omitted, a ``category_edges`` attribute on the graph
    itself (as attached by :func:`load_graph`) is used, so save → load →
    save round trips preserve the tags without replumbing.
    """
    if category_edges is None:
        category_edges = getattr(graph, "category_edges", None)
    stream.write(_HEADER + "\n")
    stream.write("n\t%d\n" % graph.num_nodes)
    for e in graph.edges:
        capacity = "inf" if e.capacity >= INF else str(e.capacity)
        if e.label is None:
            stream.write("e\t%d\t%d\t%s\n" % (e.tail, e.head, capacity))
        else:
            context = "-" if e.label.context is None \
                else str(e.label.context)
            stream.write("e\t%d\t%d\t%s\t%s\t%s\t%s\n" % (
                e.tail, e.head, capacity, e.label.kind,
                str(e.label.location).replace("\t", " "), context))
    for category in sorted(category_edges or (), key=str):
        indices = category_edges[category]
        stream.write("c\t%s\t%s\n" % (
            str(category).replace("\t", " "),
            "\t".join(str(index) for index in indices)))
    return graph.num_edges


def load_graph(stream):
    """Read a graph written by :func:`dump_graph`.

    Labels come back with *string* locations (the human-readable
    rendering); that is exactly what collapsing and cut policies key
    on, so save/collapse/measure pipelines are unaffected.  Any ``c``
    records come back as a ``category_edges`` attribute on the graph
    (absent when the dump carried no tags).

    Robustness contract: *any* malformed input — truncated lines,
    non-integer fields, out-of-range node references, a missing header
    — raises :class:`~repro.errors.GraphError` carrying the offending
    line number, never a bare ``ValueError``/``IndexError``.  Batch
    parents rely on this to classify a corrupt graph shipped home from
    a worker as a job failure instead of crashing the merge.
    """
    header = stream.readline().strip()
    if header != _HEADER:
        raise GraphError("not a %s file (got %r)" % (_HEADER, header))
    graph = FlowGraph()
    categories = {}
    for line_number, line in enumerate(stream, start=2):
        line = line.rstrip("\n")
        if not line:
            continue
        fields = line.split("\t")
        try:
            if fields[0] == "n":
                if len(fields) != 2:
                    raise GraphError("node record has %d fields, want 2"
                                     % len(fields))
                declared = int(fields[1])
                if declared < graph.num_nodes:
                    raise GraphError("node count too small")
                graph.add_nodes(declared - graph.num_nodes)
            elif fields[0] == "e":
                if len(fields) not in (4, 7):
                    raise GraphError("edge record has %d fields, "
                                     "want 4 (unlabelled) or 7 (labelled)"
                                     % len(fields))
                tail, head = int(fields[1]), int(fields[2])
                capacity = INF if fields[3] == "inf" else int(fields[3])
                label = None
                if len(fields) > 4:
                    context = None if fields[6] == "-" else int(fields[6])
                    label = EdgeLabel(fields[5], context, fields[4])
                graph.add_edge(tail, head, capacity, label)
            elif fields[0] == "c":
                if len(fields) < 2 or not fields[1]:
                    raise GraphError("category record without a name")
                categories[fields[1]] = [int(index)
                                         for index in fields[2:]]
            else:
                raise GraphError("bad record %r" % fields[0])
        except GraphError as error:
            raise GraphError("%s at line %d" % (error, line_number)) \
                from None
        except (ValueError, IndexError) as error:
            raise GraphError("malformed %r record at line %d: %s"
                             % (fields[0], line_number, error)) from None
    if categories:
        for category, indices in categories.items():
            for index in indices:
                if not 0 <= index < graph.num_edges:
                    raise GraphError(
                        "category %r references edge %d, but the graph "
                        "has %d edges" % (category, index,
                                          graph.num_edges))
        graph.category_edges = categories
    return graph


def save_graph(path, graph):
    """:func:`dump_graph` to a file path; returns the path."""
    with open(path, "w") as handle:
        dump_graph(graph, handle)
    return path


def read_graph(path):
    """:func:`load_graph` from a file path."""
    with open(path) as handle:
        return load_graph(handle)


# ----------------------------------------------------------------------
# Canonical digest

def dumps_graph(graph, category_edges=None):
    """The canonical ``flowgraph-v1`` text of ``graph``, as a string."""
    buffer = io.StringIO()
    dump_graph(graph, buffer, category_edges=category_edges)
    return buffer.getvalue()


def graph_digest(graph, category_edges=None):
    """Canonical content digest of a graph: SHA-256 over its
    ``flowgraph-v1`` text dump, as a hex string.

    The text format is the *canonical* encoding — the digest is defined
    over it regardless of how the graph is stored on disk, so a graph
    framed with :func:`dump_graph_binary` has the same digest as its
    text twin.  Two graphs with equal digests are bit-identical under
    save/load (same node numbering, edge order, capacities, labels, and
    category tags), which is what lets
    :class:`~repro.store.ShardStore` dedup identical collapsed shards
    to a multiplicity counter.
    """
    return text_digest(dumps_graph(graph, category_edges=category_edges))


def text_digest(text):
    """:func:`graph_digest` of a graph already in canonical text form."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Compact binary framing
#
# The text format stays canonical (digests are defined over it); the
# binary framing exists because a corpus-scale store writes and reads
# millions of shard files, where fixed-width fields beat str/int
# round-trips.  Layout: an 8-byte magic, then length-prefixed frames
#
#     <type:1 byte> <payload_length:u32 BE> <payload>
#
# with one frame per text record ("N" node count, "E" edge, "C"
# category).  Loading a binary shard yields a graph bit-identical to
# loading its text twin (string locations, tab-sanitized, capacities
# saturated at INF), so the two encodings are interchangeable
# downstream.

_BINARY_MAGIC = b"fgb1\x00\xdaQ\n"
_CAP_INF = (1 << 64) - 1  # on-wire sentinel; real INF is 1 << 62
_U32 = struct.Struct(">I")
_FRAME = struct.Struct(">cI")
_EDGE_FIXED = struct.Struct(">IIQB")


def _pack_str(text):
    data = text.encode("utf-8")
    if len(data) > 0xFFFF:
        raise GraphError("string field of %d bytes is too long to frame"
                         % len(data))
    return struct.pack(">H", len(data)) + data


def dump_graph_binary(graph, stream, category_edges=None):
    """Write ``graph`` to a binary ``stream``; returns the edge count.

    The mirror of :func:`dump_graph`: same record set, same
    tab-sanitization of locations and category names, same ``inf``
    saturation — ``load_graph_binary`` of the result is bit-identical
    to ``load_graph`` of the text dump.
    """
    if category_edges is None:
        category_edges = getattr(graph, "category_edges", None)
    stream.write(_BINARY_MAGIC)
    stream.write(_FRAME.pack(b"N", _U32.size) + _U32.pack(graph.num_nodes))
    for e in graph.edges:
        capacity = _CAP_INF if e.capacity >= INF else e.capacity
        if e.label is None:
            payload = _EDGE_FIXED.pack(e.tail, e.head, capacity, 0)
        else:
            context = b"" if e.label.context is None \
                else _pack_str(str(e.label.context))
            payload = (_EDGE_FIXED.pack(e.tail, e.head, capacity, 1)
                       + _pack_str(e.label.kind)
                       + _pack_str(str(e.label.location).replace("\t", " "))
                       + struct.pack(">B", 0 if e.label.context is None else 1)
                       + context)
        stream.write(_FRAME.pack(b"E", len(payload)) + payload)
    for category in sorted(category_edges or (), key=str):
        indices = category_edges[category]
        payload = (_pack_str(str(category).replace("\t", " "))
                   + _U32.pack(len(indices))
                   + b"".join(_U32.pack(index) for index in indices))
        stream.write(_FRAME.pack(b"C", len(payload)) + payload)
    return graph.num_edges


class _FrameReader:
    """Cursor over one frame's payload; every overrun is a GraphError."""

    __slots__ = ("payload", "offset", "where")

    def __init__(self, payload, where):
        self.payload = payload
        self.offset = 0
        self.where = where

    def take(self, count):
        end = self.offset + count
        if end > len(self.payload):
            raise GraphError("truncated payload in %s" % self.where)
        data = self.payload[self.offset:end]
        self.offset = end
        return data

    def unpack(self, fmt):
        return fmt.unpack(self.take(fmt.size))

    def take_str(self):
        (length,) = self.unpack(struct.Struct(">H"))
        try:
            return self.take(length).decode("utf-8")
        except UnicodeDecodeError as error:
            raise GraphError("bad utf-8 in %s: %s" % (self.where, error)) \
                from None

    def done(self):
        if self.offset != len(self.payload):
            raise GraphError("%d trailing bytes in %s"
                             % (len(self.payload) - self.offset, self.where))


def load_graph_binary(stream):
    """Read a graph written by :func:`dump_graph_binary`.

    Robustness contract mirrors :func:`load_graph`: *any* malformed
    input — a bad magic, a truncated frame, an overlong payload, an
    unknown frame type, out-of-range node or edge references — raises
    a single :class:`~repro.errors.GraphError` naming the offending
    frame, never a bare ``struct.error``/``ValueError``.
    """
    magic = stream.read(len(_BINARY_MAGIC))
    if magic != _BINARY_MAGIC:
        raise GraphError("not a flowgraph binary shard (bad magic %r)"
                         % magic[:8])
    graph = FlowGraph()
    categories = {}
    frame_index = 0
    while True:
        header = stream.read(_FRAME.size)
        if not header:
            break
        frame_index += 1
        where = "frame %d" % frame_index
        if len(header) < _FRAME.size:
            raise GraphError("truncated header at %s" % where)
        kind, length = _FRAME.unpack(header)
        payload = stream.read(length)
        if len(payload) < length:
            raise GraphError("truncated payload at %s (want %d bytes, "
                             "got %d)" % (where, length, len(payload)))
        reader = _FrameReader(payload, "%s (%r)" % (where, kind))
        try:
            if kind == b"N":
                (declared,) = reader.unpack(_U32)
                if declared < graph.num_nodes:
                    raise GraphError("node count too small in %s" % where)
                graph.add_nodes(declared - graph.num_nodes)
            elif kind == b"E":
                tail, head, capacity, labelled = reader.unpack(_EDGE_FIXED)
                if capacity >= INF:
                    capacity = INF
                label = None
                if labelled == 1:
                    kind_str = reader.take_str()
                    location = reader.take_str()
                    (has_context,) = reader.unpack(struct.Struct(">B"))
                    context = None
                    if has_context == 1:
                        context = int(reader.take_str())
                    elif has_context != 0:
                        raise GraphError("bad context flag %d in %s"
                                         % (has_context, where))
                    label = EdgeLabel(location, context, kind_str)
                elif labelled != 0:
                    raise GraphError("bad label flag %d in %s"
                                     % (labelled, where))
                reader.done()
                graph.add_edge(tail, head, capacity, label)
            elif kind == b"C":
                name = reader.take_str()
                if not name:
                    raise GraphError("category frame without a name "
                                     "(%s)" % where)
                (count,) = reader.unpack(_U32)
                categories[name] = [reader.unpack(_U32)[0]
                                    for _ in range(count)]
                reader.done()
            else:
                raise GraphError("bad frame type %r at %s" % (kind, where))
        except GraphError:
            raise
        except (ValueError, struct.error) as error:
            raise GraphError("malformed %r frame at %s: %s"
                             % (kind, where, error)) from None
    if categories:
        for category, indices in categories.items():
            for index in indices:
                if not 0 <= index < graph.num_edges:
                    raise GraphError(
                        "category %r references edge %d, but the graph "
                        "has %d edges" % (category, index,
                                          graph.num_edges))
        graph.category_edges = categories
    return graph


def save_graph_binary(path, graph, category_edges=None):
    """:func:`dump_graph_binary` to a file path; returns the path."""
    with open(path, "wb") as handle:
        dump_graph_binary(graph, handle, category_edges=category_edges)
    return path


def read_graph_binary(path):
    """:func:`load_graph_binary` from a file path."""
    with open(path, "rb") as handle:
        return load_graph_binary(handle)
