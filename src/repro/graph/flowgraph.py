"""Capacitated flow graphs (Section 2.1).

A :class:`FlowGraph` records an execution as a directed network: nodes are
operations/values, edges carry integer capacities measured in *bits* of
secret information.  Two distinguished nodes act as the source (all secret
inputs) and the sink (all public outputs).

Edges optionally carry a *label* identifying the static program location
(and, context-sensitively, a hash of the calling context) that created
them.  Labels drive the collapsing and multi-run combining of Sections 3.2
and 5.2: edges with equal labels are merged and their capacities summed.

Node capacity limits (Figure 1: an operation has only one output) are
expressed by node splitting, which :meth:`FlowGraph.add_capped_node`
performs: it allocates an ``(inner, outer)`` pair joined by an edge of the
node's capacity.
"""

from __future__ import annotations

from ..errors import GraphError

#: Effectively-unbounded capacity.  A large integer rather than a float so
#: that all flow arithmetic stays exact.
INF = 1 << 62


#: Sentinel distinguishing "key not computed yet" from a computed ``None``.
_UNCOMPUTED = object()


class EdgeLabel:
    """Identity of the program point that created an edge.

    Labels are immutable after construction (the fields are never
    reassigned), which lets :meth:`key` cache its result per label
    object: collapsing visits every edge's key at least twice, and the
    trace builders intern label objects per program point, so the tuple
    is built once per *location* rather than once per edge per pass.

    Attributes:
        location: opaque hashable location id (e.g. ``"file.fl:14"`` or a
            bytecode address).  ``None`` labels are never merged.
        context: optional 64-bit calling-context hash (Bond–McKinley style);
            ``None`` for context-insensitive labels.
        kind: short string tagging the edge's role (``"data"``,
            ``"implicit"``, ``"region"``, ``"chain"``, ``"io"``); part of
            the merge key so that, say, a data edge and an implicit edge at
            the same location stay distinct.
    """

    __slots__ = ("location", "context", "kind", "_key_cs", "_key_ci",
                 "_dropped")

    def __init__(self, location, context=None, kind="data"):
        self.location = location
        self.context = context
        self.kind = kind
        self._key_cs = _UNCOMPUTED
        self._key_ci = _UNCOMPUTED
        self._dropped = None

    def key(self, context_sensitive=True):
        """Merge key for collapsing; ``None`` means "never merge"."""
        if context_sensitive:
            key = self._key_cs
            if key is _UNCOMPUTED:
                key = self._key_cs = (
                    None if self.location is None
                    else (self.kind, self.location, self.context))
            return key
        key = self._key_ci
        if key is _UNCOMPUTED:
            key = self._key_ci = (
                None if self.location is None
                else (self.kind, self.location))
        return key

    def drop_context(self):
        """This label without the calling-context hash.

        Pooled: an already context-free label returns itself, and the
        stripped variant is built once per label object -- collapsing a
        context-sensitive graph insensitively asks for it once per edge.
        """
        if self.context is None:
            return self
        label = self._dropped
        if label is None:
            label = self._dropped = EdgeLabel(self.location, None, self.kind)
        return label

    def __eq__(self, other):
        return (isinstance(other, EdgeLabel)
                and self.location == other.location
                and self.context == other.context
                and self.kind == other.kind)

    def __hash__(self):
        return hash((self.location, self.context, self.kind))

    def __repr__(self):
        ctx = "" if self.context is None else "@%x" % (self.context & 0xFFFFFFFFFFFFFFFF)
        return "<%s %s%s>" % (self.kind, self.location, ctx)


class Edge:
    """A directed capacitated edge."""

    __slots__ = ("tail", "head", "capacity", "label")

    def __init__(self, tail, head, capacity, label=None):
        self.tail = tail
        self.head = head
        self.capacity = capacity
        self.label = label

    def __repr__(self):
        cap = "inf" if self.capacity >= INF else str(self.capacity)
        return "Edge(%d->%d, cap=%s, %r)" % (self.tail, self.head, cap, self.label)


class FlowGraph:
    """A directed graph with integer edge capacities and s/t terminals.

    Node 0 is always the source and node 1 always the sink; further nodes
    are allocated densely by :meth:`add_node`.
    """

    SOURCE = 0
    SINK = 1

    def __init__(self):
        self._num_nodes = 2
        self.edges = []

    # ------------------------------------------------------------------
    # Construction

    @property
    def num_nodes(self):
        return self._num_nodes

    @property
    def num_edges(self):
        return len(self.edges)

    @property
    def source(self):
        return self.SOURCE

    @property
    def sink(self):
        return self.SINK

    def add_node(self):
        """Allocate and return a fresh node id."""
        node = self._num_nodes
        self._num_nodes += 1
        return node

    def add_nodes(self, count):
        """Allocate ``count`` fresh node ids; return the first."""
        if count < 0:
            raise GraphError("cannot allocate %d nodes" % count)
        first = self._num_nodes
        self._num_nodes += count
        return first

    def add_edge(self, tail, head, capacity, label=None):
        """Add a directed edge; returns its index.

        Zero-capacity edges are legal (they arise from fully-public values)
        but carry no flow.  Capacities must be non-negative integers or
        :data:`INF`.
        """
        if not (0 <= tail < self._num_nodes and 0 <= head < self._num_nodes):
            raise GraphError(
                "edge %d->%d references unknown node (have %d)"
                % (tail, head, self._num_nodes))
        if capacity < 0:
            raise GraphError("negative capacity %r on %d->%d" % (capacity, tail, head))
        self.edges.append(Edge(tail, head, capacity, label))
        return len(self.edges) - 1

    def add_capped_node(self, capacity, label=None):
        """Node splitting: allocate an ``(inner, outer)`` node pair.

        Edges into the conceptual node should target ``inner``; edges out
        of it should leave from ``outer``.  The connecting edge carries
        ``capacity``, realizing the node-capacity limit of Figure 1.
        """
        inner = self.add_node()
        outer = self.add_node()
        self.add_edge(inner, outer, capacity, label)
        return inner, outer

    # ------------------------------------------------------------------
    # Queries

    def out_edges(self, node):
        """All edges leaving ``node`` (linear scan; for tests/small graphs)."""
        return [e for e in self.edges if e.tail == node]

    def in_edges(self, node):
        """All edges entering ``node`` (linear scan; for tests/small graphs)."""
        return [e for e in self.edges if e.head == node]

    def total_capacity(self):
        """Sum of all finite edge capacities."""
        return sum(e.capacity for e in self.edges if e.capacity < INF)

    def source_capacity(self):
        """Capacity of the structural source cut: sum over edges leaving
        the source, saturating at :data:`INF`.

        An upper bound on the max-flow (any s-t flow crosses this cut),
        used by the incremental Kraft accounting of
        :class:`~repro.core.combine.IncrementalKraft`.
        """
        total = 0
        for e in self.edges:
            if e.tail == self.SOURCE:
                if e.capacity >= INF:
                    return INF
                total += e.capacity
        return min(total, INF)

    def sink_capacity(self):
        """Capacity of the structural sink cut: sum over edges entering
        the sink, saturating at :data:`INF`.  See :meth:`source_capacity`.
        """
        total = 0
        for e in self.edges:
            if e.head == self.SINK:
                if e.capacity >= INF:
                    return INF
                total += e.capacity
        return min(total, INF)

    def adjacency(self):
        """Return ``(heads, caps, firsts, nexts)`` forward-star arrays.

        A compact adjacency used by the max-flow algorithms: edge ``i`` of
        ``self.edges`` appears at index ``i`` of ``heads``/``caps``;
        ``firsts[u]`` chains through ``nexts`` over the edges leaving
        ``u``.
        """
        n = self._num_nodes
        firsts = [-1] * n
        nexts = [-1] * len(self.edges)
        heads = [0] * len(self.edges)
        caps = [0] * len(self.edges)
        for i, e in enumerate(self.edges):
            heads[i] = e.head
            caps[i] = e.capacity
            nexts[i] = firsts[e.tail]
            firsts[e.tail] = i
        return heads, caps, firsts, nexts

    def validate(self):
        """Check structural invariants; raise :class:`GraphError` if broken.

        Invariants: every edge references allocated nodes, no edge enters
        the source or leaves the sink is *not* required (such edges are
        merely useless), capacities are non-negative.
        """
        for e in self.edges:
            if not (0 <= e.tail < self._num_nodes):
                raise GraphError("edge tail %d out of range" % e.tail)
            if not (0 <= e.head < self._num_nodes):
                raise GraphError("edge head %d out of range" % e.head)
            if e.capacity < 0:
                raise GraphError("negative capacity on %r" % (e,))
        return True

    def copy(self):
        """A deep copy (labels are shared; they are immutable in practice)."""
        g = FlowGraph()
        g._num_nodes = self._num_nodes
        g.edges = [Edge(e.tail, e.head, e.capacity, e.label) for e in self.edges]
        return g

    def __repr__(self):
        return "FlowGraph(nodes=%d, edges=%d)" % (self._num_nodes, len(self.edges))
