"""Graphviz (DOT) export of flow graphs, with min-cut highlighting.

Small graphs are worth looking at: the count_punct graph with its two
cut edges makes the technique legible in a way numbers don't.  The
output needs only `dot -Tsvg` to render; no library dependency.
"""

from __future__ import annotations

from .flowgraph import INF


def _escape(text):
    return str(text).replace("\\", "\\\\").replace('"', '\\"')


_KIND_STYLES = {
    "implicit": 'style=dashed color="#b3261e"',
    "region": 'color="#6750a4"',
    "chain": 'color="#999999"',
    "io": 'color="#1f6f43"',
    "output": 'color="#1f6f43"',
    "input": 'color="#1f6f43"',
}


def to_dot(graph, mincut=None, max_edges=2000, title=None):
    """Render ``graph`` as DOT text.

    Args:
        graph: a :class:`~repro.graph.flowgraph.FlowGraph`.
        mincut: optional :class:`~repro.graph.mincut.MinCut`; its edges
            are drawn bold red with doubled labels.
        max_edges: refuse to render unboundedly large graphs (collapse
            first, or raise the limit).
        title: optional graph label.

    Returns the DOT source as a string.
    """
    if graph.num_edges > max_edges:
        raise ValueError(
            "graph has %d edges (> %d); collapse before rendering or "
            "raise max_edges" % (graph.num_edges, max_edges))
    cut_indices = set()
    if mincut is not None:
        cut_indices = {ce.edge_index for ce in mincut.edges}
    lines = ["digraph flow {", '  rankdir=LR;',
             '  node [shape=circle fontsize=9 width=0.3];']
    if title:
        lines.append('  label="%s"; labelloc=t;' % _escape(title))
    lines.append('  %d [shape=doublecircle label="src"];' % graph.source)
    lines.append('  %d [shape=doublecircle label="sink"];' % graph.sink)
    used = {graph.source, graph.sink}
    for e in graph.edges:
        used.add(e.tail)
        used.add(e.head)
    for node in sorted(used - {graph.source, graph.sink}):
        lines.append('  %d [label=""];' % node)
    for index, e in enumerate(graph.edges):
        cap = "inf" if e.capacity >= INF else str(e.capacity)
        attributes = ['label="%s"' % cap, "fontsize=8"]
        if e.label is not None:
            style = _KIND_STYLES.get(e.label.kind)
            if style:
                attributes.append(style)
            attributes.append('tooltip="%s"' % _escape(e.label))
        if index in cut_indices:
            attributes.append('color="#b3261e" penwidth=2.5 fontcolor='
                              '"#b3261e"')
        lines.append("  %d -> %d [%s];" % (e.tail, e.head,
                                           " ".join(attributes)))
    lines.append("}")
    return "\n".join(lines)


def write_dot(path, graph, mincut=None, **kwargs):
    """Write :func:`to_dot` output to ``path``; returns the path."""
    text = to_dot(graph, mincut=mincut, **kwargs)
    with open(path, "w") as handle:
        handle.write(text)
    return path
