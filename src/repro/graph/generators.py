"""Synthetic flow-graph generators for tests and ablation benchmarks.

The max-flow ablation (Dinic vs. Edmonds-Karp vs. push-relabel) and the
property-based tests need families of graphs with known structure:
layered DAGs resembling collapsed trace graphs, recursive two-terminal
series-parallel graphs (whose max flow the reduction of Section 5.1
computes exactly), and grids.
"""

from __future__ import annotations

import random

from .flowgraph import FlowGraph


def layered_dag(layers, width, max_capacity=64, edge_prob=0.6, seed=0):
    """A random layered DAG from source to sink.

    ``layers`` interior layers of ``width`` nodes each; edges run from
    each layer to the next with probability ``edge_prob`` and capacity
    uniform in [1, max_capacity].  Source feeds the whole first layer,
    the last layer drains into the sink.  Every interior node is also
    given one guaranteed forward edge so the graph stays connected.
    """
    rng = random.Random(seed)
    g = FlowGraph()
    previous = [g.source]
    for layer in range(layers):
        current = [g.add_node() for _ in range(width)]
        for u in previous:
            wired = False
            for v in current:
                if rng.random() < edge_prob:
                    g.add_edge(u, v, rng.randint(1, max_capacity))
                    wired = True
            if not wired:
                g.add_edge(u, rng.choice(current), rng.randint(1, max_capacity))
        previous = current
    for u in previous:
        g.add_edge(u, g.sink, rng.randint(1, max_capacity))
    return g


def series_parallel(depth, max_capacity=64, seed=0):
    """A random two-terminal series-parallel graph with known max flow.

    Built by the standard recursive grammar (a single edge, a series
    composition, or a parallel composition); returns ``(graph, flow)``
    where ``flow`` is the exact max-flow value, computed alongside the
    construction (series: min; parallel: sum).
    """
    rng = random.Random(seed)
    g = FlowGraph()

    def build(u, v, d):
        if d <= 0 or rng.random() < 0.25:
            cap = rng.randint(1, max_capacity)
            g.add_edge(u, v, cap)
            return cap
        if rng.random() < 0.5:
            mid = g.add_node()
            return min(build(u, mid, d - 1), build(mid, v, d - 1))
        return build(u, v, d - 1) + build(u, v, d - 1)

    flow = build(g.source, g.sink, depth)
    return g, flow


def grid_graph(rows, cols, max_capacity=64, seed=0):
    """A directed grid: flow enters column 0, moves right/down, exits.

    Grids are the classic worst-ish case for augmenting-path algorithms
    and are decidedly not series-parallel, standing in for the paper's
    irreducible bzip2 core.
    """
    rng = random.Random(seed)
    g = FlowGraph()
    nodes = [[g.add_node() for _ in range(cols)] for _ in range(rows)]
    for r in range(rows):
        g.add_edge(g.source, nodes[r][0], rng.randint(1, max_capacity))
        g.add_edge(nodes[r][cols - 1], g.sink, rng.randint(1, max_capacity))
        for c in range(cols - 1):
            g.add_edge(nodes[r][c], nodes[r][c + 1], rng.randint(1, max_capacity))
    for r in range(rows - 1):
        for c in range(cols):
            g.add_edge(nodes[r][c], nodes[r + 1][c], rng.randint(1, max_capacity))
    return g


def random_dag(num_nodes, num_edges, max_capacity=64, seed=0):
    """A random DAG in topological order with source/sink attachments.

    Useful as a fuzz target: every interior node is reachable from the
    source and can reach the sink, so max flow is usually non-trivial.
    """
    rng = random.Random(seed)
    g = FlowGraph()
    interior = [g.add_node() for _ in range(num_nodes)]
    order = [g.source] + interior + [g.sink]
    for u in interior:
        g.add_edge(g.source, u, rng.randint(0, max_capacity))
        g.add_edge(u, g.sink, rng.randint(0, max_capacity))
    for _ in range(num_edges):
        i = rng.randrange(len(order) - 1)
        j = rng.randrange(i + 1, len(order))
        g.add_edge(order[i], order[j], rng.randint(1, max_capacity))
    return g
