"""The fast shadow-propagation backend and the backend registry.

The measurement pipeline has three interchangeable implementations of
its hot kernels, selected by name:

* ``"reference"`` -- the straightforward per-value / per-bit code the
  rest of this package documents.  It exists to be read against the
  paper and to serve as the oracle in equivalence tests.
* ``"fast"`` -- batch int-bitset kernels (this module) plus
  specialised dispatch paths installed by the frontends
  (:class:`repro.pytrace.session.Session`, :class:`repro.lang.vm.VM`)
  and the bulk tracker entry point
  (:meth:`repro.core.tracker.TraceBuilder.secret_values`).
* ``"native"`` -- everything the fast backend does, with the innermost
  kernels (the fused binary-op evaluate+transfer and Dinic's
  blocking-flow solve) executed by the optional compiled extension
  :mod:`repro._native`.  Available only when the extension was built
  (``setup.py`` marks it ``optional=True``, so a missing C compiler
  never breaks installation); inputs outside the machine-word fast
  path fall back to the pure-Python kernels call by call.

The contract between them is *bit identity*: for any program and input,
all backends must produce the same trace-event stream and therefore
the same flow graph, capacities, min-cut value, and
:class:`~repro.core.report.FlowReport` bounds.  ``docs/backends.md``
spells the contract out; ``tests/shadow/test_backend_equivalence.py``
enforces it on randomized programs.

``"auto"`` resolves to ``"native"`` when the extension imports and to
the always-available pure-Python ``"fast"`` otherwise.  The
``REPRO_BACKEND`` environment variable overrides the *auto* choice
(useful for CI matrix legs); an explicit ``backend=`` argument always
wins over the environment.  Explicitly requesting ``"native"`` where
the extension is missing raises ``ValueError`` (auto never does).
"""

from __future__ import annotations

import os

from .bitmask import byte_masks, join_byte_masks, popcount, truncate, \
    width_mask

#: Recognised backend names, in preference order for documentation.
BACKENDS = ("reference", "fast", "native")

#: Environment variable consulted when a caller asks for ``"auto"``.
ENV_VAR = "REPRO_BACKEND"

# The compiled-kernel probe result; filled on first use.  Tests
# monkeypatch ``_NATIVE = None`` / ``_NATIVE_PROBED = True`` to simulate
# a build without the extension.
_NATIVE = None
_NATIVE_PROBED = False


def native_kernels():
    """The compiled kernel module of :mod:`repro._native`, or ``None``.

    ``None`` means the extension is not importable (not built, wrong
    platform, or a stale ABI) and the native backend is unavailable.
    """
    global _NATIVE, _NATIVE_PROBED
    if not _NATIVE_PROBED:
        try:
            from .. import _native
            _NATIVE = _native.load()
        except Exception:
            _NATIVE = None
        _NATIVE_PROBED = True
    return _NATIVE


def native_available():
    """Whether the compiled ``"native"`` backend can be selected."""
    return native_kernels() is not None


def detect_backend():
    """The best backend available in this interpreter.

    Prefers ``"native"`` when the compiled :mod:`repro._native`
    extension imports; otherwise the pure-Python fast path (big-int
    batch kernels, precomputed dispatch tables), which is always
    available.
    """
    return "native" if native_available() else "fast"


def resolve_backend(backend=None):
    """Resolve a backend selector to a concrete backend name.

    ``None`` and ``"auto"`` consult :data:`ENV_VAR` and then
    :func:`detect_backend`; explicit names pass through.  Raises
    ``ValueError`` for anything outside :data:`BACKENDS`, and for an
    explicit ``"native"`` request (argument or environment) when the
    compiled extension is unavailable -- only ``"auto"`` is allowed to
    fall back silently.
    """
    if backend is None or backend == "auto":
        backend = os.environ.get(ENV_VAR, "").strip().lower() or "auto"
        if backend == "auto":
            backend = detect_backend()
    if backend not in BACKENDS:
        raise ValueError("unknown backend %r (expected one of %s, or "
                         "'auto')" % (backend, "/".join(BACKENDS)))
    if backend == "native" and not native_available():
        raise ValueError(
            "backend 'native' was requested but the compiled "
            "repro._native extension is not importable here; build it "
            "with a C compiler (`pip install .` or `python setup.py "
            "build_ext --inplace`) or use the pure-Python 'fast' "
            "backend, which 'auto' falls back to automatically")
    return backend


def kernels(backend=None):
    """The low-level kernel functions of ``backend``, by name.

    Returns a dict with ``pack_byte_masks`` / ``unpack_byte_masks`` /
    ``popcount`` / ``width_mask`` callables -- the per-backend kernel
    surface that :mod:`benchmarks.bench_kernels` times in isolation and
    the equivalence suite cross-checks.  All three backends' kernels
    are bit-identical; they differ only in how the bits are computed.
    """
    backend = resolve_backend(backend)
    if backend == "native":
        kern = native_kernels()
        return {
            "pack_byte_masks": kern.pack_byte_masks,
            "unpack_byte_masks": kern.unpack_byte_masks,
            "popcount": kern.popcount,
            "width_mask": kern.width_mask,
        }
    if backend == "fast":
        return {
            "pack_byte_masks": pack_byte_masks,
            "unpack_byte_masks": unpack_byte_masks,
            "popcount": popcount,
            "width_mask": width_mask,
        }
    return {
        "pack_byte_masks": join_byte_masks,
        "unpack_byte_masks": byte_masks,
        "popcount": popcount,
        "width_mask": width_mask,
    }


# ----------------------------------------------------------------------
# Batch int-bitset kernels.
#
# The reference helpers in .bitmask walk masks one byte at a time; the
# batched forms below do the same splits and joins through a single
# ``bytes`` buffer, which CPython performs in C.  Each is bit-identical
# to its reference counterpart (asserted by the equivalence suite).

def pack_byte_masks(masks):
    """Batched :func:`~repro.shadow.bitmask.join_byte_masks`.

    Recombines little-endian per-byte masks into one mask via a single
    ``int.from_bytes`` call instead of a shift-or loop.
    """
    try:
        buf = bytes(masks)
    except (ValueError, TypeError):
        # A mask outside 0..255: fall back to per-byte truncation,
        # matching join_byte_masks' `m & 0xFF`.
        buf = bytes(m & 0xFF for m in masks)
    return int.from_bytes(buf, "little")


def unpack_byte_masks(mask, num_bytes):
    """Batched :func:`~repro.shadow.bitmask.byte_masks`.

    Splits a mask into ``num_bytes`` little-endian 8-bit masks via a
    single ``int.to_bytes`` call instead of a shift loop.
    """
    return list(truncate(mask, 8 * num_bytes).to_bytes(num_bytes, "little"))
