"""The fast shadow-propagation backend and the backend registry.

The measurement pipeline has two interchangeable implementations of its
hot frontend kernels, selected by name:

* ``"reference"`` -- the straightforward per-value / per-bit code the
  rest of this package documents.  It exists to be read against the
  paper and to serve as the oracle in equivalence tests.
* ``"fast"`` -- batch int-bitset kernels (this module) plus
  specialised dispatch paths installed by the frontends
  (:class:`repro.pytrace.session.Session`, :class:`repro.lang.vm.VM`)
  and the bulk tracker entry point
  (:meth:`repro.core.tracker.TraceBuilder.secret_values`).

The contract between them is *bit identity*: for any program and input,
both backends must produce the same trace-event stream and therefore
the same flow graph, capacities, min-cut value, and
:class:`~repro.core.report.FlowReport` bounds.  ``docs/backends.md``
spells the contract out; ``tests/shadow/test_backend_equivalence.py``
enforces it on randomized programs.

Both backends are pure Python, so ``"fast"`` is always available and is
what ``"auto"`` resolves to.  The ``REPRO_BACKEND`` environment variable
overrides the *auto* choice (useful for CI matrix legs); an explicit
``backend=`` argument always wins over the environment.
"""

from __future__ import annotations

import os

from .bitmask import truncate

#: Recognised backend names, in preference order for documentation.
BACKENDS = ("reference", "fast")

#: Environment variable consulted when a caller asks for ``"auto"``.
ENV_VAR = "REPRO_BACKEND"


def detect_backend():
    """The best backend available in this interpreter.

    The fast path is pure Python (big-int batch kernels, precomputed
    dispatch tables), so it is always available; a future native
    extension would be probed here and preferred when importable.
    """
    return "fast"


def resolve_backend(backend=None):
    """Resolve a backend selector to a concrete backend name.

    ``None`` and ``"auto"`` consult :data:`ENV_VAR` and then
    :func:`detect_backend`; explicit names pass through.  Raises
    ``ValueError`` for anything outside :data:`BACKENDS`.
    """
    if backend is None or backend == "auto":
        backend = os.environ.get(ENV_VAR, "").strip().lower() or "auto"
        if backend == "auto":
            backend = detect_backend()
    if backend not in BACKENDS:
        raise ValueError("unknown backend %r (expected one of %s, or "
                         "'auto')" % (backend, "/".join(BACKENDS)))
    return backend


# ----------------------------------------------------------------------
# Batch int-bitset kernels.
#
# The reference helpers in .bitmask walk masks one byte at a time; the
# batched forms below do the same splits and joins through a single
# ``bytes`` buffer, which CPython performs in C.  Each is bit-identical
# to its reference counterpart (asserted by the equivalence suite).

def pack_byte_masks(masks):
    """Batched :func:`~repro.shadow.bitmask.join_byte_masks`.

    Recombines little-endian per-byte masks into one mask via a single
    ``int.from_bytes`` call instead of a shift-or loop.
    """
    try:
        buf = bytes(masks)
    except (ValueError, TypeError):
        # A mask outside 0..255: fall back to per-byte truncation,
        # matching join_byte_masks' `m & 0xFF`.
        buf = bytes(m & 0xFF for m in masks)
    return int.from_bytes(buf, "little")


def unpack_byte_masks(mask, num_bytes):
    """Batched :func:`~repro.shadow.bitmask.byte_masks`.

    Splits a mask into ``num_bytes`` little-endian 8-bit masks via a
    single ``int.to_bytes`` call instead of a shift loop.
    """
    return list(truncate(mask, 8 * num_bytes).to_bytes(num_bytes, "little"))
