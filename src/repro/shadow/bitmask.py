"""Shadow bit vectors (Section 2.3).

Every runtime value carries a *secrecy mask*: an integer whose bit ``i``
is set iff bit ``i`` of the value might contain secret information.  The
number of set bits bounds the information the value can convey, and
becomes the capacity of the value's node in the flow graph.

Masks are plain Python ints (arbitrary precision), so the same helpers
serve 8-bit VM bytes and multi-kilobyte byte strings in the Python
frontend.
"""

from __future__ import annotations

try:
    _BIT_COUNT = int.bit_count  # Python >= 3.10
except AttributeError:  # pragma: no cover - legacy interpreter fallback
    _BIT_COUNT = None


def popcount(mask):
    """Number of set bits in ``mask`` (the value's secret-bit capacity)."""
    if mask < 0:
        raise ValueError("masks are non-negative, got %r" % (mask,))
    if _BIT_COUNT is not None:
        return _BIT_COUNT(mask)
    return bin(mask).count("1")


def width_mask(width):
    """An all-secret mask for a ``width``-bit value."""
    if width < 0:
        raise ValueError("negative width %r" % (width,))
    return (1 << width) - 1


def truncate(mask, width):
    """Restrict a mask to the low ``width`` bits."""
    return mask & width_mask(width)


def lowest_set_bit(mask):
    """Index of the lowest set bit, or ``None`` for an empty mask."""
    if mask == 0:
        return None
    return (mask & -mask).bit_length() - 1


def spread_left(mask, width):
    """All bits at or above the lowest secret bit, within ``width``.

    Models leftward carry/overflow propagation: an addition's output bit
    can depend on any equal-or-lower input bit, so secrecy spreads toward
    the high end starting at the lowest secret input bit.
    """
    low = lowest_set_bit(mask)
    if low is None:
        return 0
    return width_mask(width) & ~width_mask(low)


def byte_masks(mask, num_bytes):
    """Split a mask into ``num_bytes`` little-endian 8-bit masks.

    Mirrors the paper's handling of memory: "loads and stores of larger
    values are split into bytes for stores and recombined after loads".
    """
    return [(mask >> (8 * i)) & 0xFF for i in range(num_bytes)]


def join_byte_masks(masks):
    """Recombine little-endian per-byte masks into one mask."""
    mask = 0
    for i, m in enumerate(masks):
        mask |= (m & 0xFF) << (8 * i)
    return mask


def is_secret(mask):
    """Whether any bit of the value might be secret."""
    return mask != 0
