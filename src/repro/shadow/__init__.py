"""Bit-level shadow (secrecy) analysis -- Section 2.3.

Maintains, for every value, a shadow bit vector marking which bits might
be secret, with conservative per-operation transfer functions.  The
popcount of a value's mask is the capacity of its node in the flow
graph.
"""

from .bitmask import (byte_masks, is_secret, join_byte_masks,
                      lowest_set_bit, popcount, spread_left, truncate,
                      width_mask)
from .fast import (BACKENDS, detect_backend, kernels, native_available,
                   pack_byte_masks, resolve_backend, unpack_byte_masks)
from .transfer import (BINARY, COMPARISONS, UNARY, binary_mask,
                       transfer_select, transfer_sext, transfer_trunc,
                       transfer_zext, unary_mask)

__all__ = [
    "byte_masks", "is_secret", "join_byte_masks", "lowest_set_bit",
    "popcount", "spread_left", "truncate", "width_mask",
    "BACKENDS", "detect_backend", "resolve_backend",
    "kernels", "native_available",
    "pack_byte_masks", "unpack_byte_masks",
    "BINARY", "COMPARISONS", "UNARY", "binary_mask", "unary_mask",
    "transfer_select", "transfer_sext", "transfer_trunc", "transfer_zext",
]
