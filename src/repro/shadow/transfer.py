"""Conservative secrecy transfer functions (Section 2.3).

For each basic operation, compute the secrecy mask of the result from
the operands' concrete values and secrecy masks.  Soundness requirement:
if two executions that differ only in secret input bits can produce
results differing at bit ``i``, then bit ``i`` of the result mask must be
set.  Subject to that, the functions are as precise as cheap local
reasoning allows -- e.g. masking with a public constant clears secrecy
(``x & 0x0F`` keeps only four secret bits), and carries only propagate
leftward from the lowest secret bit.

The same functions serve the FlowLang VM (fixed-width integers) and the
Python frontend (arbitrary-precision, with an explicit width).
"""

from __future__ import annotations

from .bitmask import spread_left, truncate, width_mask

#: Operations whose result is a single boolean bit.
COMPARISONS = frozenset(["eq", "ne", "lt", "le", "gt", "ge",
                         "ult", "ule", "ugt", "uge"])


def transfer_and(a_val, a_mask, b_val, b_mask, width):
    """Bitwise AND: a secret bit survives only where the other side may be 1."""
    w = width_mask(width)
    result = (a_mask & (b_val | b_mask)) | (b_mask & (a_val | a_mask))
    return result & w


def transfer_or(a_val, a_mask, b_val, b_mask, width):
    """Bitwise OR: a secret bit survives only where the other side may be 0."""
    w = width_mask(width)
    result = (a_mask & (~b_val | b_mask)) | (b_mask & (~a_val | a_mask))
    return result & w


def transfer_xor(a_val, a_mask, b_val, b_mask, width):
    """Bitwise XOR: secrecy is the union of the operand masks."""
    return (a_mask | b_mask) & width_mask(width)


def transfer_not(a_val, a_mask, width):
    """Bitwise NOT preserves each bit's secrecy."""
    return a_mask & width_mask(width)


def transfer_add(a_val, a_mask, b_val, b_mask, width):
    """Addition: carries spread secrecy leftward from the lowest secret bit."""
    return spread_left(a_mask | b_mask, width)


def transfer_sub(a_val, a_mask, b_val, b_mask, width):
    """Subtraction: borrows spread leftward, like carries."""
    return spread_left(a_mask | b_mask, width)


def transfer_neg(a_val, a_mask, width):
    """Two's-complement negation: equivalent to ``0 - a``."""
    return spread_left(a_mask, width)


def transfer_mul(a_val, a_mask, b_val, b_mask, width):
    """Multiplication: product bits below the lowest secret bit stay public.

    Bit k of the product depends only on operand bits at positions i, j
    with i + j <= k, so if every secret bit sits at or above position L,
    product bits below L are functions of public bits only.
    """
    return spread_left(a_mask | b_mask, width)


def transfer_div(a_val, a_mask, b_val, b_mask, width):
    """Division mixes high bits into low; any secrecy taints everything."""
    if a_mask or b_mask:
        return width_mask(width)
    return 0


def transfer_mod(a_val, a_mask, b_val, b_mask, width):
    """Remainder, like division, offers no cheap bitwise structure."""
    if a_mask or b_mask:
        return width_mask(width)
    return 0


def transfer_shl(a_val, a_mask, s_val, s_mask, width):
    """Left shift.  Secret shift amounts taint every bit the value reaches."""
    if s_mask:
        if a_mask == 0 and a_val == 0:
            return 0  # shifting zero reveals nothing
        return width_mask(width)
    return truncate(a_mask << s_val, width)


def transfer_shr(a_val, a_mask, s_val, s_mask, width):
    """Logical right shift."""
    if s_mask:
        if a_mask == 0 and a_val == 0:
            return 0
        return width_mask(width)
    return a_mask >> s_val


def transfer_sar(a_val, a_mask, s_val, s_mask, width):
    """Arithmetic right shift: a secret sign bit floods the vacated bits."""
    if s_mask:
        if a_mask == 0 and a_val == 0:
            return 0
        return width_mask(width)
    shifted = a_mask >> s_val
    sign_bit = 1 << (width - 1)
    if a_mask & sign_bit:
        fill = width_mask(width) & ~width_mask(max(width - s_val, 0))
        shifted |= fill
    return truncate(shifted, width)


def transfer_compare(a_val, a_mask, b_val, b_mask, width):
    """Comparisons yield one boolean bit, secret iff any operand bit is."""
    return 1 if (a_mask or b_mask) else 0


def transfer_logical_not(a_val, a_mask, width):
    """Boolean negation of a (possibly secret) truth value."""
    return 1 if a_mask else 0


def transfer_select(c_val, c_mask, t_val, t_mask, f_val, f_mask, width):
    """Conditional move ``c ? t : f`` treated as a pure data operation.

    A secret condition makes every bit at which the arms might differ
    secret; we conservatively taint the full width.  (Because the select
    is data, not control, no implicit-flow edge is needed -- mirroring
    Valgrind's handling of x86 ``cmov``.)
    """
    if c_mask:
        return width_mask(width)
    return (t_mask if c_val else f_mask) & width_mask(width)


def transfer_zext(a_val, a_mask, from_width, to_width):
    """Zero extension introduces public zero bits."""
    return truncate(a_mask, from_width)


def transfer_sext(a_val, a_mask, from_width, to_width):
    """Sign extension replicates the (possibly secret) sign bit."""
    mask = truncate(a_mask, from_width)
    sign_bit = 1 << (from_width - 1)
    if mask & sign_bit:
        mask |= width_mask(to_width) & ~width_mask(from_width)
    return mask


def transfer_trunc(a_val, a_mask, to_width):
    """Truncation drops high bits, public or not."""
    return truncate(a_mask, to_width)


#: Dispatch for binary operations: op name -> f(a_val, a_mask, b_val,
#: b_mask, width) -> result mask.
BINARY = {
    "add": transfer_add,
    "sub": transfer_sub,
    "mul": transfer_mul,
    "div": transfer_div,
    "mod": transfer_mod,
    "and": transfer_and,
    "or": transfer_or,
    "xor": transfer_xor,
    "shl": transfer_shl,
    "shr": transfer_shr,
    "sar": transfer_sar,
}
for _cmp in COMPARISONS:
    BINARY[_cmp] = transfer_compare

#: Dispatch for unary operations: op name -> f(a_val, a_mask, width).
UNARY = {
    "neg": transfer_neg,
    "not": transfer_not,
    "lnot": transfer_logical_not,
}


def binary_mask(op, a_val, a_mask, b_val, b_mask, width):
    """Apply the transfer function for binary ``op``."""
    fn = BINARY.get(op)
    if fn is None:
        raise KeyError("no transfer function for binary op %r" % op)
    return fn(a_val, a_mask, b_val, b_mask, width)


def unary_mask(op, a_val, a_mask, width):
    """Apply the transfer function for unary ``op``."""
    fn = UNARY.get(op)
    if fn is None:
        raise KeyError("no transfer function for unary op %r" % op)
    return fn(a_val, a_mask, width)
