"""An all-static maximum-flow analysis (Section 10.2, implemented).

The paper's future-work sketch: keep the graph/max-flow machinery but
replace the dynamic parts, bounding how often each static flow edge can
execute "in terms of a developer-understandable parameter of the
program input" -- so the result is a formula over loop bounds rather
than a single number.

This module implements that idea for an intraprocedural, scalar-only
subset of FlowLang (no arrays, no user function calls -- the same kind
of scope static QIF systems of the era supported).  It builds a static
flow graph over *variables*:

* one node per variable, plus a source and sink;
* an assignment ``v = e`` inside loops with joint bound ``m`` adds
  edges from every variable (or secret input) in ``e`` to ``v`` with
  capacity ``width(v) * m``;
* a branch on a secret-tainted condition adds a ``1 * m``-bit implicit
  edge from each condition variable to the innermost enclosure node
  (or the sink, for the whole-program enclosure);
* region exits wire the region node to its declared outputs;
* ``output(e)`` adds ``width * m`` edges to the sink.

Loop bounds are symbolic: :class:`StaticFlowAnalysis` records which
edges scale with which loop (identified by source line), and
:meth:`StaticFlowAnalysis.bound` evaluates the max-flow for concrete
bounds -- the "formula" is the function ``loop_bounds -> bits``.  The
result is a sound bound for every execution whose loops respect the
given bounds: capacities count the maximum number of bits each static
edge could carry across all iterations, exactly the per-location
capacity-summing that dynamic collapsing performs (§5.2), computed
without running the program.
"""

from __future__ import annotations

from ..errors import ReproError
from ..graph.flowgraph import FlowGraph
from ..graph.maxflow import dinic_max_flow
from ..lang import ast
from ..lang import types as T

#: Builtins usable in the static subset, with their secret-input widths.
_SECRET_INPUTS = {"secret_u8": 8, "secret_u16": 16, "secret_u32": 32}
_PUBLIC_INPUTS = {"input_u8", "input_u32"}
_OUTPUTS = {"output", "print_char"}


class UnsupportedConstruct(ReproError):
    """The program uses a feature outside the static subset."""


class _Term:
    """A capacity term ``base * prod(loops)`` with symbolic loop factors.

    ``loops`` is a tuple of loop ids (source lines); the +1 adjustment
    for loop *tests* is expressed by ``extra_tests`` naming the loop
    whose bound is incremented.
    """

    __slots__ = ("base", "loops", "test_loop")

    def __init__(self, base, loops, test_loop=None):
        self.base = base
        self.loops = tuple(loops)
        self.test_loop = test_loop

    def evaluate(self, bounds, default):
        value = self.base
        for loop in self.loops:
            value *= max(int(bounds.get(loop, default)), 0)
        if self.test_loop is not None:
            value *= int(bounds.get(self.test_loop, default)) + 1
        return value

    def render(self):
        parts = [str(self.base)]
        parts.extend("N%d" % loop for loop in self.loops)
        if self.test_loop is not None:
            parts.append("(N%d+1)" % self.test_loop)
        return "*".join(parts)


class StaticFlowAnalysis:
    """Static flow bound for one FlowLang function.

    Args:
        program: a *checked* :class:`~repro.lang.ast.Program`.
        function: which function to analyze (default ``main``).

    Raises :class:`UnsupportedConstruct` for arrays, user calls, and
    other features outside the subset.
    """

    def __init__(self, program, function="main"):
        self.program = program
        decls = {f.name: f for f in program.functions}
        if function not in decls:
            raise UnsupportedConstruct("no function %r" % function)
        self.decl = decls[function]
        self.loop_lines = []
        # Edge list: (src_key, dst_key, _Term).  Keys: ("var", symbol),
        # "source", "sink", ("region", id).
        self._edges = []
        # Per-variable assignment terms: the variable's static node
        # capacity is their sum (it can hold width bits per assignment
        # event, the same per-location capacity summing as dynamic
        # collapsing).
        self._var_capacity = {}
        self._secret_vars = set()
        self._loop_stack = []
        self._region_stack = []
        self._next_region = 0
        self._analyze()

    # ------------------------------------------------------------------

    def _term(self, base, test_loop=None):
        return _Term(base, self._loop_stack, test_loop)

    def _implicit_target(self):
        if self._region_stack:
            return ("region", self._region_stack[-1])
        return "sink"

    def _analyze(self):
        if self.decl.params:
            raise UnsupportedConstruct(
                "static subset: analyze parameterless entry functions")
        changed = True
        # Flow-insensitive taint fixpoint first (loops may feed back).
        while changed:
            changed = self._taint_block(self.decl.body)
        self._build_block(self.decl.body)

    # ------------------------------------------------------------------
    # Pass 1: which variables may hold secrets?

    def _taint_block(self, block):
        changed = False
        for stmt in block.statements:
            changed |= self._taint_stmt(stmt)
        return changed

    def _taint_stmt(self, stmt):
        if isinstance(stmt, (ast.VarDecl, ast.Assign)):
            target, value = self._target_and_value(stmt)
            if value is not None and target is not None \
                    and self._expr_secret(value) \
                    and target not in self._secret_vars:
                self._secret_vars.add(target)
                return True
            return False
        if isinstance(stmt, ast.If):
            changed = self._taint_block(stmt.then_body)
            if stmt.else_body is not None:
                changed |= self._taint_block(stmt.else_body)
            return changed
        if isinstance(stmt, ast.While):
            return self._taint_block(stmt.body)
        if isinstance(stmt, ast.For):
            changed = False
            if stmt.init is not None:
                changed |= self._taint_stmt(stmt.init)
            if stmt.step is not None:
                changed |= self._taint_stmt(stmt.step)
            return changed | self._taint_block(stmt.body)
        if isinstance(stmt, ast.Enclose):
            changed = self._taint_block(stmt.body)
            # Region outputs become (conservatively) secret if any
            # implicit flow can occur inside -- statically, if any
            # branch in the body tests a secret.
            if self._block_branches_on_secret(stmt.body):
                for output in stmt.outputs:
                    if output.symbol not in self._secret_vars:
                        self._secret_vars.add(output.symbol)
                        changed = True
            return changed
        if isinstance(stmt, ast.Block):
            return self._taint_block(stmt)
        return False

    def _block_branches_on_secret(self, block):
        for stmt in block.statements:
            if isinstance(stmt, (ast.If, ast.While)) \
                    and self._expr_secret(stmt.cond):
                return True
            if isinstance(stmt, ast.For) and stmt.cond is not None \
                    and self._expr_secret(stmt.cond):
                return True
            for inner in self._inner_blocks(stmt):
                if self._block_branches_on_secret(inner):
                    return True
        return False

    @staticmethod
    def _inner_blocks(stmt):
        if isinstance(stmt, ast.If):
            blocks = [stmt.then_body]
            if stmt.else_body is not None:
                blocks.append(stmt.else_body)
            return blocks
        if isinstance(stmt, (ast.While, ast.For, ast.Enclose)):
            return [stmt.body]
        if isinstance(stmt, ast.Block):
            return [stmt]
        return []

    def _target_and_value(self, stmt):
        if isinstance(stmt, ast.VarDecl):
            if stmt.symbol is not None and T.is_array(stmt.symbol.type):
                raise UnsupportedConstruct("static subset has no arrays")
            return stmt.symbol, stmt.init
        target = stmt.target
        if not isinstance(target, ast.Name):
            raise UnsupportedConstruct("static subset has no arrays")
        return target.symbol, stmt.value

    def _expr_secret(self, expr):
        if isinstance(expr, ast.Name):
            return expr.symbol in self._secret_vars
        if isinstance(expr, (ast.Binary,)):
            return self._expr_secret(expr.left) or \
                self._expr_secret(expr.right)
        if isinstance(expr, ast.Unary):
            return self._expr_secret(expr.operand)
        if isinstance(expr, ast.Cast):
            return self._expr_secret(expr.operand)
        if isinstance(expr, ast.Call):
            if expr.name in _SECRET_INPUTS:
                return True
            if expr.name in _PUBLIC_INPUTS or expr.name == "declassify":
                return False
            raise UnsupportedConstruct(
                "static subset cannot analyze call to %r" % expr.name)
        if isinstance(expr, (ast.NumberLit, ast.BoolLit)):
            return False
        if isinstance(expr, ast.ArrayLen) or isinstance(expr, ast.Index):
            raise UnsupportedConstruct("static subset has no arrays")
        if isinstance(expr, ast.StringLit):
            raise UnsupportedConstruct("static subset has no arrays")
        return False

    # ------------------------------------------------------------------
    # Pass 2: build the symbolic static graph

    def _build_block(self, block):
        for stmt in block.statements:
            self._build_stmt(stmt)

    def _build_stmt(self, stmt):
        if isinstance(stmt, (ast.VarDecl, ast.Assign)):
            target, value = self._target_and_value(stmt)
            if value is not None:
                self._assign(target, value)
        elif isinstance(stmt, ast.ExprStmt):
            self._expr_effects(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._branch(stmt.cond)
            self._build_block(stmt.then_body)
            if stmt.else_body is not None:
                self._build_block(stmt.else_body)
        elif isinstance(stmt, ast.While):
            self._loop(stmt.line, stmt.cond, None, stmt.body)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._build_stmt(stmt.init)
            self._loop(stmt.line, stmt.cond, stmt.step, stmt.body)
        elif isinstance(stmt, ast.Enclose):
            region_id = self._next_region
            self._next_region += 1
            self._region_stack.append(region_id)
            self._build_block(stmt.body)
            self._region_stack.pop()
            for output in stmt.outputs:
                width = output.symbol.type.width
                term = self._term(width)
                self._edges.append((("region", region_id),
                                    ("var", output.symbol), term))
                self._var_capacity.setdefault(output.symbol,
                                              []).append(term)
        elif isinstance(stmt, ast.Block):
            self._build_block(stmt)
        elif isinstance(stmt, (ast.Break, ast.Continue, ast.Return)):
            pass
        else:
            raise UnsupportedConstruct("static subset: %r"
                                       % type(stmt).__name__)

    def _loop(self, line, cond, step, body):
        if line not in self.loop_lines:
            self.loop_lines.append(line)
        if cond is not None and self._expr_secret(cond):
            # The test runs bound+1 times.
            for var in self._expr_vars(cond):
                self._edges.append(
                    (("var", var), self._implicit_target(),
                     _Term(1, self._loop_stack, test_loop=line)))
            self._sources_to_target(cond, self._implicit_target(),
                                    _Term(1, self._loop_stack,
                                          test_loop=line))
        self._loop_stack.append(line)
        if step is not None:
            self._build_stmt(step)
        self._build_block(body)
        self._loop_stack.pop()

    def _branch(self, cond):
        if not self._expr_secret(cond):
            return
        target = self._implicit_target()
        for var in self._expr_vars(cond):
            self._edges.append((("var", var), target, self._term(1)))
        self._sources_to_target(cond, target, self._term(1))

    def _assign(self, target, value):
        width = target.type.width
        term = self._term(width)
        self._var_capacity.setdefault(target, []).append(term)
        for var in self._expr_vars(value):
            self._edges.append((("var", var), ("var", target), term))
        self._sources_to_target(value, ("var", target), term)

    def _sources_to_target(self, expr, target, term):
        """Edges for secret-input builtins appearing inside ``expr``."""
        for width in self._expr_inputs(expr):
            self._edges.append(
                ("source", target, _Term(width, term.loops,
                                         term.test_loop)))

    def _expr_effects(self, expr):
        if isinstance(expr, ast.Call) and expr.name in _OUTPUTS:
            arg = expr.args[0]
            self._expr_secret(arg)  # validates the subset (raises on calls)
            width = arg.type.width if arg.type else 32
            term = self._term(width)
            for var in self._expr_vars(arg):
                self._edges.append((("var", var), "sink", term))
            self._sources_to_target(arg, "sink", term)
        elif isinstance(expr, ast.Call):
            if expr.name in _SECRET_INPUTS or expr.name in _PUBLIC_INPUTS:
                return  # value discarded
            raise UnsupportedConstruct(
                "static subset cannot analyze call to %r" % expr.name)

    def _expr_vars(self, expr):
        """Variables occurring in ``expr`` that may hold secrets."""
        out = []

        def walk(e):
            if isinstance(e, ast.Name):
                if e.symbol in self._secret_vars:
                    out.append(e.symbol)
            elif isinstance(e, ast.Binary):
                walk(e.left)
                walk(e.right)
            elif isinstance(e, (ast.Unary, ast.Cast)):
                walk(e.operand if isinstance(e, ast.Unary) else e.operand)
            elif isinstance(e, ast.Call) and e.name == "declassify":
                pass
        walk(expr)
        return out

    def _expr_inputs(self, expr):
        """Widths of secret-input builtins called inside ``expr``."""
        out = []

        def walk(e):
            if isinstance(e, ast.Call):
                if e.name in _SECRET_INPUTS:
                    out.append(_SECRET_INPUTS[e.name])
            elif isinstance(e, ast.Binary):
                walk(e.left)
                walk(e.right)
            elif isinstance(e, (ast.Unary, ast.Cast)):
                walk(e.operand)
        walk(expr)
        return out

    # ------------------------------------------------------------------
    # Evaluation

    def formula(self):
        """Human-readable edge list with symbolic capacities."""
        lines = []
        for src, dst, term in self._edges:
            lines.append("%s -> %s : %s" % (self._key_name(src),
                                            self._key_name(dst),
                                            term.render()))
        return "\n".join(lines)

    @staticmethod
    def _key_name(key):
        if key in ("source", "sink"):
            return key
        kind, payload = key
        if kind == "var":
            return payload.name
        return "region%d" % payload

    def bound(self, loop_bounds=None, default_bound=1):
        """Max-flow bits for concrete per-loop iteration bounds.

        ``loop_bounds`` maps a loop's source line (see ``loop_lines``)
        to its maximum trip count; missing loops use ``default_bound``.
        """
        loop_bounds = loop_bounds or {}
        graph = FlowGraph()
        # Variable nodes are split: in -> out with capacity equal to the
        # total bits all their (statically counted) assignments can
        # store.  Terminals and region nodes are unsplit.
        inlets = {"source": graph.source, "sink": graph.sink}
        outlets = {"source": graph.source, "sink": graph.sink}

        def node_of(key, incoming):
            table = inlets if incoming else outlets
            if key not in table:
                if isinstance(key, tuple) and key[0] == "var":
                    capacity = sum(
                        term.evaluate(loop_bounds, default_bound)
                        for term in self._var_capacity.get(key[1], []))
                    inner = graph.add_node()
                    outer = graph.add_node()
                    graph.add_edge(inner, outer, capacity)
                    inlets[key] = inner
                    outlets[key] = outer
                else:
                    node = graph.add_node()
                    inlets[key] = node
                    outlets[key] = node
            return table[key]

        for src, dst, term in self._edges:
            capacity = term.evaluate(loop_bounds, default_bound)
            graph.add_edge(node_of(src, incoming=False),
                           node_of(dst, incoming=True), capacity)
        value, _ = dinic_max_flow(graph)
        return value


def static_bound(program, loop_bounds=None, default_bound=1,
                 function="main"):
    """One-call helper: checked AST -> static flow bound in bits."""
    analysis = StaticFlowAnalysis(program, function=function)
    return analysis.bound(loop_bounds, default_bound)
