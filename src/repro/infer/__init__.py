"""Static enclosure-region inference (Section 8.6).

A deliberately simple ("pilot") intraprocedural, syntax-directed,
alias-free side-effect analysis that infers the output annotations of
``enclose`` regions, plus the classifier that scores it against hand
annotations in the Figure 6 categories (found / need-length /
missed-expansion / missed-interprocedural).
"""

from .sideeffects import (FunctionSummary, WriteSet, collect_writes,
                          summarize_functions)
from .enclosure import InferredOutput, RegionInference, infer_region_outputs
from .classify import (FOUND, MISSED_EXPANSION, MISSED_INTERPROCEDURAL,
                       AnnotationResult, InferenceScore,
                       classify_annotations, figure6_table)
from .staticflow import (StaticFlowAnalysis, UnsupportedConstruct,
                         static_bound)

__all__ = [
    "FunctionSummary", "WriteSet", "collect_writes", "summarize_functions",
    "InferredOutput", "RegionInference", "infer_region_outputs",
    "FOUND", "MISSED_EXPANSION", "MISSED_INTERPROCEDURAL",
    "AnnotationResult", "InferenceScore", "classify_annotations",
    "figure6_table",
    "StaticFlowAnalysis", "UnsupportedConstruct", "static_bound",
]
