"""Figure 6: scoring the pilot inference against hand annotations.

For every hand-written region output the classifier decides whether the
pilot analysis of :mod:`.enclosure` covers it, and if not, why -- the
same categories the paper reports:

* **found** -- the pilot's outputs cover the annotation;
* **missed/expansion** -- the pilot named only single elements (or
  nothing) for an array the region writes at non-constant indices;
* **missed/interprocedural** -- the write happens in a callee, which
  the intraprocedural pass cannot see;
* **need length** -- the annotation carries an explicit ``[.. n]``
  element-count bound the pilot could never synthesize (tallied
  independently, as in the paper's table).
"""

from __future__ import annotations

from ..lang import types as T
from .enclosure import infer_region_outputs
from .sideeffects import summarize_functions

FOUND = "found"
MISSED_EXPANSION = "missed/expansion"
MISSED_INTERPROCEDURAL = "missed/interprocedural"


class AnnotationResult:
    """Classification of a single hand annotation."""

    __slots__ = ("function", "name", "category", "needs_length", "line")

    def __init__(self, function, name, category, needs_length, line):
        self.function = function
        self.name = name
        self.category = category
        self.needs_length = needs_length
        self.line = line

    def __repr__(self):
        tag = " +length" if self.needs_length else ""
        return "AnnotationResult(%s.%s: %s%s)" % (
            self.function, self.name, self.category, tag)


class InferenceScore:
    """Aggregated Figure 6 row for one program."""

    def __init__(self, program_name, results):
        self.program_name = program_name
        self.results = results

    @property
    def hand_annotations(self):
        return len(self.results)

    @property
    def found(self):
        return sum(1 for r in self.results if r.category == FOUND)

    @property
    def missed_expansion(self):
        return sum(1 for r in self.results
                   if r.category == MISSED_EXPANSION)

    @property
    def missed_interprocedural(self):
        return sum(1 for r in self.results
                   if r.category == MISSED_INTERPROCEDURAL)

    @property
    def need_length(self):
        return sum(1 for r in self.results if r.needs_length)

    @property
    def found_fraction(self):
        if not self.results:
            return 1.0
        return self.found / len(self.results)

    def row(self):
        """The Figure 6 table row (dict form)."""
        return {
            "program": self.program_name,
            "hand_annotations": self.hand_annotations,
            "need_length": self.need_length,
            "missed_expansion": self.missed_expansion,
            "missed_interprocedural": self.missed_interprocedural,
            "found": self.found,
        }

    def __repr__(self):
        return ("InferenceScore(%s: %d hand, %d found, %d exp, %d interproc,"
                " %d need-length)" % (
                    self.program_name, self.hand_annotations, self.found,
                    self.missed_expansion, self.missed_interprocedural,
                    self.need_length))


def _interprocedural_writes(call_nodes, symbol, summaries, decls):
    """Whether any call in the region (transitively) writes ``symbol``."""
    for call in call_nodes:
        decl = decls.get(call.name)
        if decl is None:
            continue
        summary = summaries.get(call.name)
        if summary is None:
            continue
        if symbol.is_global and symbol in summary.written_globals:
            return True
        for param, arg in zip(decl.params, call.args):
            if (param.symbol in summary.written_params
                    and getattr(arg, "symbol", None) is symbol):
                return True
    return False


def classify_annotations(program, program_name="program"):
    """Score the pilot inference against the program's hand annotations.

    ``program`` must be a checked AST.  Returns an
    :class:`InferenceScore`.
    """
    summaries = summarize_functions(program)
    decls = {f.name: f for f in program.functions}
    results = []
    for inference in infer_region_outputs(program):
        writes = inference.writes
        inferred_scalars = {o.symbol for o in inference.outputs
                            if o.kind == "scalar"}
        inferred_arrays = {o.symbol for o in inference.outputs
                           if o.kind == "array-elements"}
        for declared in inference.enclose.outputs:
            symbol = declared.symbol
            needs_length = declared.length is not None
            if T.is_array(symbol.type):
                if symbol in writes.array_dynamic:
                    category = MISSED_EXPANSION
                elif symbol in inferred_arrays:
                    category = FOUND
                elif _interprocedural_writes(writes.calls, symbol,
                                             summaries, decls):
                    category = MISSED_INTERPROCEDURAL
                else:
                    # Not written at all: the annotation is vacuous and
                    # the pilot's empty answer suffices.
                    category = FOUND
            else:
                if symbol in inferred_scalars:
                    category = FOUND
                elif _interprocedural_writes(writes.calls, symbol,
                                             summaries, decls):
                    category = MISSED_INTERPROCEDURAL
                else:
                    category = FOUND
            results.append(AnnotationResult(
                inference.function_name, declared.name, category,
                needs_length, declared.line))
    return InferenceScore(program_name, results)


def figure6_table(scores):
    """Render a list of :class:`InferenceScore` as the Figure 6 table."""
    header = ("%-18s %6s %8s %8s %10s %6s"
              % ("Program", "hand", "length", "exp'n", "interproc", "found"))
    lines = [header, "-" * len(header)]
    total_hand = total_found = 0
    for score in scores:
        row = score.row()
        total_hand += row["hand_annotations"]
        total_found += row["found"]
        lines.append("%-18s %6d %8d %8d %10d %6d" % (
            row["program"], row["hand_annotations"], row["need_length"],
            row["missed_expansion"], row["missed_interprocedural"],
            row["found"]))
    if total_hand:
        lines.append("overall found: %d/%d (%.0f%%)"
                     % (total_found, total_hand,
                        100.0 * total_found / total_hand))
    return "\n".join(lines)
