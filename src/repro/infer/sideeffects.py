"""Side-effect collection for enclosure inference (Section 8.6).

The pilot analysis in the paper is "intraprocedural, syntax-directed,
and context-insensitive, operating as a single pass that disregards
control flow except as implied by block structure", and "only finds
locations that can be named by the same expression at the region
entrance as at the modification location".  This module reproduces
those strengths *and* limitations over FlowLang ASTs:

* a direct assignment ``x = e`` to a scalar names the same location at
  region entrance -- the pilot finds it;
* an array store ``a[3] = e`` with a literal index is nameable -- found;
* an array store ``a[i] = e`` whose index is not a literal cannot be
  named at the entrance (``i`` may change) -- the pilot misses it; this
  is the paper's *missed/expansion* category;
* a write performed inside a called function is invisible to the
  intraprocedural pass -- the paper's *missed/interprocedural* category.
"""

from __future__ import annotations

from ..lang import ast


class WriteSet:
    """Writes syntactically visible inside a region body.

    Attributes:
        scalars: symbols assigned directly (``x = e``).
        array_literal: array symbols written only at literal indices,
            mapped to the set of those indices.
        array_dynamic: array symbols with at least one non-literal
            index write.
        calls: function names invoked (candidate interprocedural
            effects).
        local_decls: symbols declared *inside* the region (region-local;
            their writes need no annotation).
    """

    def __init__(self):
        self.scalars = set()
        self.array_literal = {}
        self.array_dynamic = set()
        self.calls = []
        self.local_decls = set()

    def writes_array(self, symbol):
        return symbol in self.array_literal or symbol in self.array_dynamic

    def __repr__(self):
        return ("WriteSet(scalars=%d, arrays=%d dynamic/%d literal, "
                "calls=%d)" % (len(self.scalars), len(self.array_dynamic),
                               len(self.array_literal), len(self.calls)))


def _is_literal_index(expr):
    return isinstance(expr, ast.NumberLit)


def collect_writes(block):
    """Single-pass syntactic write collection over a block."""
    writes = WriteSet()
    _walk_block(block, writes)
    return writes


def _walk_block(block, writes):
    for stmt in block.statements:
        _walk_stmt(stmt, writes)


def _walk_stmt(stmt, writes):
    if isinstance(stmt, ast.VarDecl):
        writes.local_decls.add(stmt.symbol)
        if stmt.init is not None:
            _walk_expr(stmt.init, writes)
    elif isinstance(stmt, ast.Assign):
        target = stmt.target
        if isinstance(target, ast.Name):
            if target.symbol not in writes.local_decls:
                writes.scalars.add(target.symbol)
        else:  # Index
            symbol = target.base.symbol
            if symbol not in writes.local_decls:
                if _is_literal_index(target.index):
                    writes.array_literal.setdefault(symbol, set()).add(
                        target.index.value)
                else:
                    writes.array_dynamic.add(symbol)
                    writes.array_literal.pop(symbol, None)
            _walk_expr(target.index, writes)
        _walk_expr(stmt.value, writes)
    elif isinstance(stmt, ast.ExprStmt):
        _walk_expr(stmt.expr, writes)
    elif isinstance(stmt, ast.If):
        _walk_expr(stmt.cond, writes)
        _walk_block(stmt.then_body, writes)
        if stmt.else_body is not None:
            _walk_block(stmt.else_body, writes)
    elif isinstance(stmt, ast.While):
        _walk_expr(stmt.cond, writes)
        _walk_block(stmt.body, writes)
    elif isinstance(stmt, ast.For):
        if stmt.init is not None:
            _walk_stmt(stmt.init, writes)
        if stmt.cond is not None:
            _walk_expr(stmt.cond, writes)
        if stmt.step is not None:
            _walk_stmt(stmt.step, writes)
        _walk_block(stmt.body, writes)
    elif isinstance(stmt, ast.Enclose):
        # A nested region's writes are still writes of the outer region.
        _walk_block(stmt.body, writes)
    elif isinstance(stmt, ast.Block):
        _walk_block(stmt, writes)
    # Break/Continue/Return: no effects.


#: Builtins that write through their array argument.
_WRITING_BUILTINS = {"read_secret": 0, "read_public": 0}


def _walk_expr(expr, writes):
    if isinstance(expr, ast.Call):
        writes.calls.append(expr)
        for i, arg in enumerate(expr.args):
            if (expr.name in _WRITING_BUILTINS
                    and i == _WRITING_BUILTINS[expr.name]
                    and isinstance(arg, ast.Name)
                    and arg.symbol not in writes.local_decls):
                writes.array_dynamic.add(arg.symbol)
            _walk_expr(arg, writes)
    elif isinstance(expr, ast.Binary):
        _walk_expr(expr.left, writes)
        _walk_expr(expr.right, writes)
    elif isinstance(expr, ast.Unary):
        _walk_expr(expr.operand, writes)
    elif isinstance(expr, ast.Index):
        _walk_expr(expr.index, writes)
    elif isinstance(expr, ast.Cast):
        _walk_expr(expr.operand, writes)
    # Names/literals/ArrayLen: no effects.


class FunctionSummary:
    """Transitive may-write summary of a function (ground truth helper).

    Not part of the pilot analysis -- the classifier uses these
    summaries to decide whether a missed annotation was missed because
    the effect is interprocedural.
    """

    def __init__(self):
        self.written_globals = set()
        self.written_params = set()  # parameter symbols (arrays)


def summarize_functions(program):
    """Compute transitive may-write summaries for all functions."""
    decls = {f.name: f for f in program.functions}
    summaries = {name: FunctionSummary() for name in decls}

    def local_pass(decl):
        summary = summaries[decl.name]
        writes = collect_writes(decl.body)
        param_symbols = {p.symbol for p in decl.params}
        for symbol in writes.scalars:
            if symbol.is_global:
                summary.written_globals.add(symbol)
        for symbol in set(writes.array_literal) | writes.array_dynamic:
            if symbol.is_global:
                summary.written_globals.add(symbol)
            elif symbol in param_symbols:
                summary.written_params.add(symbol)
        return writes.calls

    call_sites = {name: local_pass(decl) for name, decl in decls.items()}

    # Propagate to a fixpoint: effects through callees, mapping callee
    # parameter writes back to caller arguments.
    changed = True
    while changed:
        changed = False
        for name, decl in decls.items():
            summary = summaries[name]
            param_symbols = {p.symbol for p in decl.params}
            for call in call_sites[name]:
                callee = decls.get(call.name)
                if callee is None:
                    continue  # builtin
                callee_summary = summaries[call.name]
                before = (len(summary.written_globals),
                          len(summary.written_params))
                summary.written_globals |= callee_summary.written_globals
                for param, arg in zip(callee.params, call.args):
                    if param.symbol in callee_summary.written_params \
                            and isinstance(arg, ast.Name):
                        if arg.symbol.is_global:
                            summary.written_globals.add(arg.symbol)
                        elif arg.symbol in param_symbols:
                            summary.written_params.add(arg.symbol)
                after = (len(summary.written_globals),
                         len(summary.written_params))
                if after != before:
                    changed = True
    return summaries
