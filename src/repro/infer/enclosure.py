"""Pilot enclosure-output inference (Section 8.6).

For every ``enclose`` block of a checked program, compute the output
annotations the pilot analysis can produce on its own, using only the
intraprocedural, syntax-directed write collection of
:mod:`.sideeffects`.
"""

from __future__ import annotations

from ..lang import ast
from .sideeffects import collect_writes


class InferredOutput:
    """One output the pilot can name at the region entrance."""

    __slots__ = ("name", "symbol", "kind", "indices")

    def __init__(self, name, symbol, kind, indices=None):
        self.name = name
        self.symbol = symbol
        self.kind = kind          # "scalar" | "array-elements"
        self.indices = indices    # literal indices, for array-elements

    def __repr__(self):
        if self.kind == "scalar":
            return "InferredOutput(%s)" % self.name
        return "InferredOutput(%s[%s])" % (
            self.name, ",".join(map(str, sorted(self.indices))))


class RegionInference:
    """Inference result for one enclosure region."""

    def __init__(self, function_name, enclose_node, outputs, writes):
        self.function_name = function_name
        self.enclose = enclose_node
        self.outputs = outputs
        self.writes = writes

    @property
    def declared_names(self):
        return [o.name for o in self.enclose.outputs]

    @property
    def inferred_names(self):
        return [o.name for o in self.outputs]

    def __repr__(self):
        return "RegionInference(%s: inferred %s, declared %s)" % (
            self.function_name, self.inferred_names, self.declared_names)


def _find_regions(block, found):
    for stmt in block.statements:
        if isinstance(stmt, ast.Enclose):
            found.append(stmt)
            _find_regions(stmt.body, found)
        elif isinstance(stmt, (ast.If,)):
            _find_regions(stmt.then_body, found)
            if stmt.else_body is not None:
                _find_regions(stmt.else_body, found)
        elif isinstance(stmt, (ast.While,)):
            _find_regions(stmt.body, found)
        elif isinstance(stmt, ast.For):
            _find_regions(stmt.body, found)
        elif isinstance(stmt, ast.Block):
            _find_regions(stmt, found)


def infer_region_outputs(program):
    """Run the pilot inference over every region of a checked program.

    Returns a list of :class:`RegionInference`, one per ``enclose``
    block, in source order.
    """
    results = []
    for decl in program.functions:
        regions = []
        _find_regions(decl.body, regions)
        for region in regions:
            writes = collect_writes(region.body)
            outputs = []
            for symbol in sorted(writes.scalars, key=lambda s: s.name):
                outputs.append(InferredOutput(symbol.name, symbol, "scalar"))
            for symbol, indices in sorted(writes.array_literal.items(),
                                          key=lambda kv: kv[0].name):
                outputs.append(InferredOutput(symbol.name, symbol,
                                              "array-elements",
                                              frozenset(indices)))
            # Arrays with dynamic indices are *not* emitted: the pilot
            # cannot name them at the entrance (missed/expansion).
            results.append(RegionInference(decl.name, region, outputs,
                                           writes))
    return results
