/* Compiled kernels for the "native" backend (docs/backends.md).
 *
 * This is the whole native surface: three families of kernels behind the
 * same bit-identity contract as the pure-Python backends.
 *
 *   1. Bitset shadow-propagation batch ops: pack_byte_masks /
 *      unpack_byte_masks, mirroring repro.shadow.fast, plus a fused
 *      binary_kernel that evaluates one frontend binary operation and
 *      its Section 2.3 transfer function in a single call (mirroring
 *      repro.pytrace.session._BIN_EVAL/_CMP_EVAL composed with
 *      repro.shadow.transfer.BINARY).
 *   2. Dinic BFS-level + blocking-flow over the flat forward-star
 *      arrays of repro.graph.maxflow.ResidualNetwork (arc 2i forward,
 *      2i+1 reverse, partner = arc ^ 1).  The carried warm-start flow
 *      is applied on the Python side; the kernel receives the
 *      pre-seeded capacities and the carried value.
 *   3. popcount / width_mask helpers from repro.shadow.bitmask.
 *
 * Every kernel either returns the exact value the pure-Python code
 * would produce or returns None ("fall back to Python"), never an
 * approximation: inputs outside the machine-word fast path (masks or
 * values over 64 bits, widths over 64, capacities over int64) punt to
 * the caller.  The Python wrappers count those punts as
 * shadow.native.fallbacks / maxflow.native.fallbacks.
 *
 * No dependencies beyond the CPython C API; one translation unit.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdint.h>
#include <string.h>

/* Bumped when a kernel's signature or semantics change; repro._native
 * refuses (degrades to "unavailable") when a stale .so reports a
 * different ABI than the Python side expects. */
#define KERNEL_ABI 1

/* Cached at module init. */
static PyObject *g_from_bytes;  /* int.from_bytes */
static PyObject *g_little;      /* "little" */
static PyObject *g_zero;        /* 0 */
static PyObject *g_one;         /* 1 */
static PyObject *g_ff;          /* 0xFF */

/* ------------------------------------------------------------------ */
/* Conversion helpers                                                  */

/* Convert obj to uint64.  Returns 0 on success; 1 when the value does
 * not fit (error cleared -- caller should fall back to Python); -1 on
 * an unexpected error (exception set). */
static int
as_u64(PyObject *obj, uint64_t *out)
{
    unsigned long long v = PyLong_AsUnsignedLongLong(obj);
    if (v == (unsigned long long)-1 && PyErr_Occurred()) {
        if (PyErr_ExceptionMatches(PyExc_OverflowError)
                || PyErr_ExceptionMatches(PyExc_TypeError)) {
            PyErr_Clear();
            return 1;
        }
        return -1;
    }
    *out = (uint64_t)v;
    return 0;
}

/* Convert obj to int64 (negatives allowed).  Same protocol as as_u64. */
static int
as_i64(PyObject *obj, int64_t *out)
{
    long long v = PyLong_AsLongLong(obj);
    if (v == -1 && PyErr_Occurred()) {
        if (PyErr_ExceptionMatches(PyExc_OverflowError)
                || PyErr_ExceptionMatches(PyExc_TypeError)) {
            PyErr_Clear();
            return 1;
        }
        return -1;
    }
    *out = (int64_t)v;
    return 0;
}

/* ------------------------------------------------------------------ */
/* pack_byte_masks / unpack_byte_masks                                 */

/* Low byte of an arbitrary Python int (Python `m & 0xFF` semantics,
 * including negatives).  Returns -1 with an exception set on failure. */
static int
low_byte_of(PyObject *item, uint8_t *out)
{
    int64_t v;
    int rc = as_i64(item, &v);
    if (rc == 0) {
        *out = (uint8_t)((uint64_t)v & 0xFF);
        return 0;
    }
    if (rc < 0)
        return -1;
    /* Out of int64 range (or not a plain int): take the Python path. */
    {
        PyObject *masked = PyNumber_And(item, g_ff);
        long b;
        if (masked == NULL)
            return -1;
        b = PyLong_AsLong(masked);
        Py_DECREF(masked);
        if (b == -1 && PyErr_Occurred())
            return -1;
        *out = (uint8_t)b;
        return 0;
    }
}

static PyObject *
kern_pack_byte_masks(PyObject *self, PyObject *masks)
{
    PyObject *seq = PySequence_Fast(
        masks, "pack_byte_masks() expects a sequence of byte masks");
    Py_ssize_t n, i;
    PyObject **items;
    if (seq == NULL)
        return NULL;
    n = PySequence_Fast_GET_SIZE(seq);
    items = PySequence_Fast_ITEMS(seq);
    if (n <= 8) {
        uint64_t acc = 0;
        for (i = 0; i < n; i++) {
            uint8_t b;
            if (low_byte_of(items[i], &b) < 0) {
                Py_DECREF(seq);
                return NULL;
            }
            acc |= (uint64_t)b << (8 * i);
        }
        Py_DECREF(seq);
        return PyLong_FromUnsignedLongLong(acc);
    }
    {
        PyObject *buf = PyBytes_FromStringAndSize(NULL, n);
        PyObject *result;
        char *raw;
        if (buf == NULL) {
            Py_DECREF(seq);
            return NULL;
        }
        raw = PyBytes_AS_STRING(buf);
        for (i = 0; i < n; i++) {
            uint8_t b;
            if (low_byte_of(items[i], &b) < 0) {
                Py_DECREF(buf);
                Py_DECREF(seq);
                return NULL;
            }
            raw[i] = (char)b;
        }
        Py_DECREF(seq);
        result = PyObject_CallFunctionObjArgs(g_from_bytes, buf, g_little,
                                              NULL);
        Py_DECREF(buf);
        return result;
    }
}

static PyObject *
kern_unpack_byte_masks(PyObject *self, PyObject *args)
{
    PyObject *mask;
    Py_ssize_t num_bytes, i;
    uint64_t m;
    int rc;
    if (!PyArg_ParseTuple(args, "On:unpack_byte_masks", &mask, &num_bytes))
        return NULL;
    if (num_bytes < 0) {
        /* Matches bitmask.width_mask's error for a negative width. */
        return PyErr_Format(PyExc_ValueError, "negative width %zd",
                            8 * num_bytes);
    }
    rc = as_u64(mask, &m);
    if (rc < 0)
        return NULL;
    if (rc == 0) {
        PyObject *out = PyList_New(num_bytes);
        if (out == NULL)
            return NULL;
        for (i = 0; i < num_bytes; i++) {
            uint8_t b = (i < 8) ? (uint8_t)((m >> (8 * i)) & 0xFF) : 0;
            PyObject *v = PyLong_FromLong((long)b);
            if (v == NULL) {
                Py_DECREF(out);
                return NULL;
            }
            PyList_SET_ITEM(out, i, v);
        }
        return out;
    }
    /* Wide (or negative) mask: truncate(mask, 8*num_bytes) then
     * to_bytes, exactly like the pure-Python kernel. */
    {
        PyObject *shift = NULL, *top = NULL, *wmask = NULL;
        PyObject *truncated = NULL, *buf = NULL, *out = NULL;
        const unsigned char *raw;
        shift = PyLong_FromSsize_t(8 * num_bytes);
        if (shift == NULL)
            goto done;
        top = PyNumber_Lshift(g_one, shift);
        if (top == NULL)
            goto done;
        wmask = PyNumber_Subtract(top, g_one);
        if (wmask == NULL)
            goto done;
        truncated = PyNumber_And(mask, wmask);
        if (truncated == NULL)
            goto done;
        buf = PyObject_CallMethod(truncated, "to_bytes", "ns",
                                  num_bytes, "little");
        if (buf == NULL)
            goto done;
        raw = (const unsigned char *)PyBytes_AS_STRING(buf);
        out = PyList_New(num_bytes);
        if (out == NULL)
            goto done;
        for (i = 0; i < num_bytes; i++) {
            PyObject *v = PyLong_FromLong((long)raw[i]);
            if (v == NULL) {
                Py_CLEAR(out);
                goto done;
            }
            PyList_SET_ITEM(out, i, v);
        }
done:
        Py_XDECREF(shift);
        Py_XDECREF(top);
        Py_XDECREF(wmask);
        Py_XDECREF(truncated);
        Py_XDECREF(buf);
        return out;
    }
}

/* ------------------------------------------------------------------ */
/* popcount / width_mask                                               */

static PyObject *
kern_popcount(PyObject *self, PyObject *mask)
{
    uint64_t m;
    int rc = as_u64(mask, &m);
    if (rc < 0)
        return NULL;
    if (rc == 0)
        return PyLong_FromLong((long)__builtin_popcountll(m));
    {
        /* Did not fit uint64: either negative (reference raises
         * ValueError) or a wide mask (count through its bytes). */
        int neg = PyObject_RichCompareBool(mask, g_zero, Py_LT);
        PyObject *nbits_obj, *buf;
        Py_ssize_t nbits, nbytes, i;
        const unsigned char *raw;
        long count = 0;
        if (neg < 0)
            return NULL;
        if (neg)
            return PyErr_Format(PyExc_ValueError,
                                "masks are non-negative, got %R", mask);
        nbits_obj = PyObject_CallMethod(mask, "bit_length", NULL);
        if (nbits_obj == NULL)
            return NULL;
        nbits = PyLong_AsSsize_t(nbits_obj);
        Py_DECREF(nbits_obj);
        if (nbits == -1 && PyErr_Occurred())
            return NULL;
        nbytes = (nbits + 7) / 8;
        buf = PyObject_CallMethod(mask, "to_bytes", "ns", nbytes, "little");
        if (buf == NULL)
            return NULL;
        raw = (const unsigned char *)PyBytes_AS_STRING(buf);
        for (i = 0; i < nbytes; i++)
            count += __builtin_popcount((unsigned)raw[i]);
        Py_DECREF(buf);
        return PyLong_FromLong(count);
    }
}

static PyObject *
kern_width_mask(PyObject *self, PyObject *args)
{
    Py_ssize_t width;
    if (!PyArg_ParseTuple(args, "n:width_mask", &width))
        return NULL;
    if (width < 0)
        return PyErr_Format(PyExc_ValueError, "negative width %zd", width);
    if (width < 64)
        return PyLong_FromUnsignedLongLong(((uint64_t)1 << width) - 1);
    if (width == 64)
        return PyLong_FromUnsignedLongLong(UINT64_MAX);
    {
        PyObject *shift = PyLong_FromSsize_t(width);
        PyObject *top, *result;
        if (shift == NULL)
            return NULL;
        top = PyNumber_Lshift(g_one, shift);
        Py_DECREF(shift);
        if (top == NULL)
            return NULL;
        result = PyNumber_Subtract(top, g_one);
        Py_DECREF(top);
        return result;
    }
}

/* ------------------------------------------------------------------ */
/* binary_kernel: fused evaluate + transfer for one binary operation   */

/* Op ids; the OP_IDS module dict is the Python-visible name -> id map,
 * so the two sides cannot drift. */
enum {
    OP_ADD = 0, OP_SUB, OP_MUL, OP_DIV, OP_MOD,
    OP_AND, OP_OR, OP_XOR, OP_SHL, OP_SHR,
    OP_EQ = 16, OP_NE, OP_ULT, OP_ULE, OP_UGT, OP_UGE
};

static const struct { const char *name; int id; } op_table[] = {
    {"add", OP_ADD}, {"sub", OP_SUB}, {"mul", OP_MUL}, {"div", OP_DIV},
    {"mod", OP_MOD}, {"and", OP_AND}, {"or", OP_OR}, {"xor", OP_XOR},
    {"shl", OP_SHL}, {"shr", OP_SHR},
    {"eq", OP_EQ}, {"ne", OP_NE}, {"ult", OP_ULT}, {"ule", OP_ULE},
    {"ugt", OP_UGT}, {"uge", OP_UGE},
};

/* spread_left(mask, width) for machine words: all bits at or above the
 * lowest set bit, within width (bitmask.spread_left). */
static uint64_t
spread_left_u64(uint64_t mask, uint64_t w)
{
    int low;
    if (mask == 0)
        return 0;
    low = __builtin_ctzll(mask);
    return w & ~(((uint64_t)1 << low) - 1);
}

static PyObject *
kern_binary_kernel(PyObject *self, PyObject *args)
{
    int op;
    PyObject *avo, *amo, *bvo, *bmo;
    Py_ssize_t width;
    uint64_t av, am, bv, bm, w, value, mask, u;
    int rc;
    if (!PyArg_ParseTuple(args, "iOOOOn:binary_kernel",
                          &op, &avo, &amo, &bvo, &bmo, &width))
        return NULL;
    if ((rc = as_u64(avo, &av)) != 0) goto punt;
    if ((rc = as_u64(amo, &am)) != 0) goto punt;
    if ((rc = as_u64(bvo, &bv)) != 0) goto punt;
    if ((rc = as_u64(bmo, &bm)) != 0) goto punt;

    if (op >= OP_EQ) {
        /* Comparisons: 1-bit result, width-independent transfer
         * (transfer_compare). */
        switch (op) {
        case OP_EQ:  value = (av == bv); break;
        case OP_NE:  value = (av != bv); break;
        case OP_ULT: value = (av < bv);  break;
        case OP_ULE: value = (av <= bv); break;
        case OP_UGT: value = (av > bv);  break;
        case OP_UGE: value = (av >= bv); break;
        default: goto unknown;
        }
        mask = (am | bm) ? 1 : 0;
        return Py_BuildValue("(KK)", (unsigned long long)value,
                             (unsigned long long)mask);
    }

    if (width < 0 || width > 64)
        Py_RETURN_NONE;  /* wide result: pure-Python transfer territory */
    w = (width == 64) ? UINT64_MAX
                      : (((uint64_t)1 << width) - 1);

    /* Values: _BIN_EVAL semantics.  All arithmetic is exact mod 2^64
     * and the result width divides 64, so wrapping matches Python's
     * arbitrary-precision result under `& w`. */
    switch (op) {
    case OP_ADD: value = (av + bv) & w; break;
    case OP_SUB: value = (av - bv) & w; break;
    case OP_MUL: value = (av * bv) & w; break;
    case OP_DIV:
        if (bv == 0)
            Py_RETURN_NONE;  /* Python raises ZeroDivisionError */
        value = (av / bv) & w;
        break;
    case OP_MOD:
        if (bv == 0)
            Py_RETURN_NONE;
        value = (av % bv) & w;
        break;
    case OP_AND: value = av & bv; break;         /* unmasked, like _BIN_EVAL */
    case OP_OR:  value = (av | bv) & w; break;
    case OP_XOR: value = (av ^ bv) & w; break;
    case OP_SHL: value = (bv >= 64) ? 0 : ((av << bv) & w); break;
    case OP_SHR: value = (bv >= 64) ? 0 : (av >> bv); break;  /* unmasked */
    default: goto unknown;
    }

    /* Masks: the Section 2.3 transfer functions (shadow.transfer),
     * already truncated to the result width like _binary_op_fast's
     * `& w`. */
    switch (op) {
    case OP_ADD: case OP_SUB: case OP_MUL:
        mask = spread_left_u64(am | bm, w);
        break;
    case OP_DIV: case OP_MOD:
        mask = (am | bm) ? w : 0;
        break;
    case OP_AND:
        mask = ((am & (bv | bm)) | (bm & (av | am))) & w;
        break;
    case OP_OR:
        mask = ((am & (~bv | bm)) | (bm & (~av | am))) & w;
        break;
    case OP_XOR:
        mask = (am | bm) & w;
        break;
    case OP_SHL:
        if (bm)
            mask = (am == 0 && av == 0) ? 0 : w;
        else if (bv < 64)
            mask = (am << bv) & w;
        else if (am == 0)
            mask = 0;
        else
            /* Huge public shift of a secret mask: transfer_shl really
             * materialises `am << bv`, so take the Python path to keep
             * its exact behaviour (including a possible MemoryError). */
            Py_RETURN_NONE;
        break;
    case OP_SHR:
        if (bm)
            mask = (am == 0 && av == 0) ? 0 : w;
        else
            mask = ((bv >= 64) ? 0 : (am >> bv)) & w;
        break;
    default: goto unknown;
    }
    return Py_BuildValue("(KK)", (unsigned long long)value,
                         (unsigned long long)mask);

punt:
    if (rc < 0)
        return NULL;
    Py_RETURN_NONE;
unknown:
    (void)u;
    return PyErr_Format(PyExc_ValueError, "unknown op id %d", op);
}

/* ------------------------------------------------------------------ */
/* Dinic max-flow over ResidualNetwork's flat arrays                   */

/* One growable record of augmenting-path lengths (only filled when the
 * caller asked to record them for the metrics histogram). */
typedef struct {
    int64_t *data;
    Py_ssize_t len, alloc;
} lenbuf;

static int
lenbuf_push(lenbuf *buf, int64_t v)
{
    if (buf->len == buf->alloc) {
        Py_ssize_t alloc = buf->alloc ? buf->alloc * 2 : 256;
        int64_t *data = PyMem_Realloc(buf->data, alloc * sizeof(int64_t));
        if (data == NULL)
            return -1;
        buf->data = data;
        buf->alloc = alloc;
    }
    buf->data[buf->len++] = v;
    return 0;
}

/* Convert a Python list of ints to a fresh int64 array; NULL + rc=1 on
 * "does not fit" (caller falls back to Python), NULL + rc=-1 on error. */
static int64_t *
list_to_i64(PyObject *list, Py_ssize_t expect_len, int *rc)
{
    Py_ssize_t n = PyList_GET_SIZE(list), i;
    int64_t *out;
    if (expect_len >= 0 && n != expect_len) {
        *rc = 1;
        return NULL;
    }
    out = PyMem_Malloc((n ? n : 1) * sizeof(int64_t));
    if (out == NULL) {
        PyErr_NoMemory();
        *rc = -1;
        return NULL;
    }
    for (i = 0; i < n; i++) {
        int r = as_i64(PyList_GET_ITEM(list, i), &out[i]);
        if (r != 0) {
            PyMem_Free(out);
            *rc = r;
            return NULL;
        }
    }
    *rc = 0;
    return out;
}

static PyObject *
kern_dinic(PyObject *self, PyObject *args)
{
    Py_ssize_t n, s, t, m2, i;
    PyObject *first_l, *nxt_l, *head_l, *cap_l, *carried_o, *inf_o;
    int record_paths, rc;
    int64_t *first = NULL, *nxt = NULL, *head = NULL, *cap = NULL;
    int64_t *level = NULL, *it = NULL, *q = NULL, *path = NULL;
    int64_t carried, inf, bfs_phases = 0, aug_paths = 0;
    __int128 total;
    lenbuf lengths = {NULL, 0, 0};
    PyObject *result = NULL, *lengths_list = NULL;

    if (!PyArg_ParseTuple(args, "nnnO!O!O!O!OOi:dinic",
                          &n, &s, &t,
                          &PyList_Type, &first_l, &PyList_Type, &nxt_l,
                          &PyList_Type, &head_l, &PyList_Type, &cap_l,
                          &carried_o, &inf_o, &record_paths))
        return NULL;
    if ((rc = as_i64(carried_o, &carried)) != 0) goto punt;
    if ((rc = as_i64(inf_o, &inf)) != 0) goto punt;
    m2 = PyList_GET_SIZE(cap_l);
    first = list_to_i64(first_l, n, &rc);
    if (first == NULL) goto punt;
    nxt = list_to_i64(nxt_l, m2, &rc);
    if (nxt == NULL) goto punt;
    head = list_to_i64(head_l, m2, &rc);
    if (head == NULL) goto punt;
    cap = list_to_i64(cap_l, m2, &rc);
    if (cap == NULL) goto punt;
    if (n <= 0 || s < 0 || s >= n || t < 0 || t >= n || s == t) {
        rc = 1;
        goto punt;
    }
    level = PyMem_Malloc(n * sizeof(int64_t));
    it = PyMem_Malloc(n * sizeof(int64_t));
    q = PyMem_Malloc(n * sizeof(int64_t));
    path = PyMem_Malloc((n + 1) * sizeof(int64_t));
    if (level == NULL || it == NULL || q == NULL || path == NULL) {
        PyErr_NoMemory();
        rc = -1;
        goto punt;
    }

    total = carried;
    Py_BEGIN_ALLOW_THREADS
    for (;;) {
        /* BFS: level graph from s (FIFO order mirrors the deque). */
        Py_ssize_t qh = 0, qt = 0;
        for (i = 0; i < n; i++)
            level[i] = -1;
        level[s] = 0;
        q[qt++] = s;
        while (qh < qt) {
            int64_t u = q[qh++];
            int64_t a = first[u];
            while (a != -1) {
                int64_t v = head[a];
                if (cap[a] > 0 && level[v] < 0) {
                    level[v] = level[u] + 1;
                    q[qt++] = v;
                }
                a = nxt[a];
            }
        }
        if (level[t] < 0)
            break;
        bfs_phases++;
        for (i = 0; i < n; i++)
            it[i] = first[i];
        /* Blocking flow: explicit-stack DFS, the exact retreat and
         * dead-end logic of maxflow.dinic_max_flow.blocking_flow. */
        {
            Py_ssize_t path_len = 0;
            int64_t u = s;
            int done = 0;
            while (!done) {
                if (u == t) {
                    int64_t bottleneck = INT64_MAX;
                    Py_ssize_t idx;
                    for (idx = 0; idx < path_len; idx++)
                        if (cap[path[idx]] < bottleneck)
                            bottleneck = cap[path[idx]];
                    for (idx = 0; idx < path_len; idx++) {
                        cap[path[idx]] -= bottleneck;
                        cap[path[idx] ^ 1] += bottleneck;
                    }
                    total += bottleneck;
                    aug_paths++;
                    if (record_paths) {
                        int push_rc;
                        Py_BLOCK_THREADS
                        push_rc = lenbuf_push(&lengths, path_len);
                        Py_UNBLOCK_THREADS
                        if (push_rc < 0) {
                            Py_BLOCK_THREADS
                            rc = -1;
                            goto punt;
                        }
                    }
                    /* Retreat to the first saturated arc on the path. */
                    for (idx = 0; idx < path_len; idx++) {
                        if (cap[path[idx]] == 0) {
                            path_len = idx;
                            break;
                        }
                    }
                    u = path_len ? head[path[path_len - 1]] : s;
                    continue;
                }
                {
                    int64_t a = it[u];
                    int advanced = 0;
                    while (a != -1) {
                        int64_t v = head[a];
                        if (cap[a] > 0 && level[v] == level[u] + 1) {
                            it[u] = a;
                            path[path_len++] = a;
                            u = v;
                            advanced = 1;
                            break;
                        }
                        a = nxt[a];
                    }
                    if (advanced)
                        continue;
                    it[u] = -1;
                    level[u] = -1;
                    if (path_len == 0) {
                        done = 1;
                        continue;
                    }
                    a = path[--path_len];
                    u = head[a ^ 1];
                    it[u] = nxt[it[u]];
                }
            }
        }
        if (total >= (__int128)inf) {
            total = inf;
            break;
        }
    }
    Py_END_ALLOW_THREADS

    /* Write the saturated capacities back into the Python list, so the
     * ResidualNetwork reflects the solve for min-cut extraction. */
    for (i = 0; i < m2; i++) {
        PyObject *v = PyLong_FromLongLong((long long)cap[i]);
        if (v == NULL) {
            rc = -1;
            goto punt;
        }
        if (PyList_SetItem(cap_l, i, v) < 0) {  /* steals v */
            rc = -1;
            goto punt;
        }
    }
    if (record_paths) {
        lengths_list = PyList_New(lengths.len);
        if (lengths_list == NULL) {
            rc = -1;
            goto punt;
        }
        for (i = 0; i < lengths.len; i++) {
            PyObject *v = PyLong_FromLongLong((long long)lengths.data[i]);
            if (v == NULL) {
                rc = -1;
                goto punt;
            }
            PyList_SET_ITEM(lengths_list, i, v);
        }
    } else {
        lengths_list = Py_None;
        Py_INCREF(lengths_list);
    }
    result = Py_BuildValue("(LLLN)", (long long)total,
                           (long long)bfs_phases, (long long)aug_paths,
                           lengths_list);
    lengths_list = NULL;  /* reference given away (or freed on error) */
    rc = 0;

punt:
    PyMem_Free(first);
    PyMem_Free(nxt);
    PyMem_Free(head);
    PyMem_Free(cap);
    PyMem_Free(level);
    PyMem_Free(it);
    PyMem_Free(q);
    PyMem_Free(path);
    PyMem_Free(lengths.data);
    if (rc < 0) {
        Py_XDECREF(lengths_list);
        Py_XDECREF(result);
        return NULL;
    }
    if (rc > 0)
        Py_RETURN_NONE;  /* inputs outside int64: fall back to Python */
    return result;
}

/* ------------------------------------------------------------------ */
/* Module                                                              */

static PyMethodDef kernel_methods[] = {
    {"pack_byte_masks", kern_pack_byte_masks, METH_O,
     "Recombine little-endian per-byte masks into one mask."},
    {"unpack_byte_masks", kern_unpack_byte_masks, METH_VARARGS,
     "Split a mask into num_bytes little-endian 8-bit masks."},
    {"popcount", kern_popcount, METH_O,
     "Number of set bits in a non-negative mask."},
    {"width_mask", kern_width_mask, METH_VARARGS,
     "All-secret mask for a width-bit value."},
    {"binary_kernel", kern_binary_kernel, METH_VARARGS,
     "Fused (value, mask) for one binary op, or None to fall back."},
    {"dinic", kern_dinic, METH_VARARGS,
     "Dinic max-flow over forward-star arrays, or None to fall back."},
    {NULL, NULL, 0, NULL}
};

static struct PyModuleDef kernels_module = {
    PyModuleDef_HEAD_INIT,
    "repro._native._kernels",
    "Compiled kernels for the native backend (see repro._native).",
    -1,
    kernel_methods,
};

PyMODINIT_FUNC
PyInit__kernels(void)
{
    PyObject *module, *op_ids;
    size_t i;
    g_from_bytes = PyObject_GetAttrString((PyObject *)&PyLong_Type,
                                          "from_bytes");
    if (g_from_bytes == NULL)
        return NULL;
    g_little = PyUnicode_InternFromString("little");
    g_zero = PyLong_FromLong(0);
    g_one = PyLong_FromLong(1);
    g_ff = PyLong_FromLong(0xFF);
    if (g_little == NULL || g_zero == NULL || g_one == NULL || g_ff == NULL)
        return NULL;
    module = PyModule_Create(&kernels_module);
    if (module == NULL)
        return NULL;
    if (PyModule_AddIntConstant(module, "KERNEL_ABI", KERNEL_ABI) < 0)
        return NULL;
    op_ids = PyDict_New();
    if (op_ids == NULL)
        return NULL;
    for (i = 0; i < sizeof(op_table) / sizeof(op_table[0]); i++) {
        PyObject *v = PyLong_FromLong(op_table[i].id);
        int r = v == NULL ? -1 : PyDict_SetItemString(op_ids,
                                                      op_table[i].name, v);
        Py_XDECREF(v);
        if (r < 0)
            return NULL;
    }
    if (PyModule_AddObject(module, "OP_IDS", op_ids) < 0) {
        Py_DECREF(op_ids);
        return NULL;
    }
    return module;
}
