"""Optional compiled kernels: the ``"native"`` backend's engine room.

``repro._native._kernels`` is a small, dependency-free C extension built
by ``setup.py`` with ``optional=True``: on a machine without a C
compiler the build step is skipped, installation succeeds, and the
backend registry (:mod:`repro.shadow.fast`) silently resolves ``"auto"``
to the pure-Python ``"fast"`` backend instead.  Nothing in the package
imports this module's kernels unconditionally.

:func:`load` is the only sanctioned way in: it returns the kernel
module when (a) the extension imported and (b) its compiled-in
``KERNEL_ABI`` matches :data:`KERNEL_ABI` here, and ``None`` otherwise.
The ABI check makes a stale ``.so`` from an older checkout degrade to
"extension unavailable" rather than to subtly wrong kernels.

Kernel semantics are pinned to the pure-Python backends by the
bit-identity contract (``docs/backends.md``); each kernel either
returns exactly what the Python code would, or returns ``None`` to send
the caller down the Python path (wide masks, widths over 64 bits,
capacities outside int64).
"""

from __future__ import annotations

#: The kernel ABI this Python tree expects; compared against the
#: extension's compiled-in ``KERNEL_ABI``.
KERNEL_ABI = 1

try:
    from . import _kernels as _impl
except ImportError:  # no compiler at install time, or not built yet
    _impl = None

if _impl is not None and getattr(_impl, "KERNEL_ABI", None) != KERNEL_ABI:
    _impl = None  # stale extension: treat as unavailable, never as wrong


def load():
    """The compiled kernel module, or ``None`` when unavailable."""
    return _impl


def available():
    """Whether the compiled kernels can be used in this interpreter."""
    return _impl is not None
