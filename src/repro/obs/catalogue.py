"""The metrics contract: every metric the pipeline may emit.

This module is the single source of truth for metric *names* and their
semantics.  ``docs/observability.md`` documents the same catalogue for
humans, and a drift test asserts the two agree, so an instrumentation
change that invents a new name without documenting it (or vice versa)
fails the suite.  :class:`~repro.obs.metrics.Metrics` also rejects any
name not listed here at runtime.

Kinds:

* ``counter`` -- monotonically accumulating integer (events, bits).
* ``gauge``   -- last-written (or max-tracked) point-in-time value.
* ``timer``   -- accumulated wall-clock seconds.  The ``phase.<p>.seconds``
  timers pair with a ``phase.<p>.calls`` counter maintained by the same
  context manager; free-standing timers (``batch.*``) accumulate via
  :meth:`~repro.obs.metrics.Metrics.add_seconds`.
* ``histogram`` -- a distribution over fixed power-of-two buckets, fed
  via :meth:`~repro.obs.metrics.Metrics.observe`: an observation ``v``
  lands in the bucket whose key is the integer exponent ``e`` with
  ``2**(e-1) <= v < 2**e`` (clamped to ±:data:`HISTOGRAM_MAX_EXPONENT`;
  non-positive values land in the lowest bucket).  Snapshot value is a
  ``{exponent: count}`` dict; merging adds bucket-wise.

Stability: ``stable`` names follow the usual deprecation dance before
changing meaning; ``experimental`` names may change in any release.
"""

from __future__ import annotations

COUNTER = "counter"
GAUGE = "gauge"
TIMER = "timer"
HISTOGRAM = "histogram"

#: Histogram bucket exponents are clamped to ±this value, so every
#: snapshot's buckets come from one fixed, finite key set.
HISTOGRAM_MAX_EXPONENT = 32

#: Pipeline phases timed by ``Metrics.phase(name)``; each contributes a
#: ``phase.<name>.seconds`` timer and a ``phase.<name>.calls`` counter.
PHASES = ("trace", "collapse", "solve", "mincut", "measure")


class MetricSpec:
    """One catalogued metric: its kind, unit, stability, and meaning."""

    __slots__ = ("name", "kind", "unit", "stability", "description")

    def __init__(self, name, kind, unit, stability, description):
        self.name = name
        self.kind = kind
        self.unit = unit
        self.stability = stability
        self.description = description

    @property
    def zero(self):
        """The metric's initial snapshot value (a fresh object per call)."""
        if self.kind == TIMER:
            return 0.0
        if self.kind == HISTOGRAM:
            return {}
        return 0

    def __repr__(self):
        return "MetricSpec(%r, %s, %s, %s)" % (self.name, self.kind,
                                               self.unit, self.stability)


def _specs():
    c, g = COUNTER, GAUGE
    entries = [
        # Trace construction (TraceBuilder event stream, any frontend).
        (c, "trace.operations", "events", "stable",
         "operation events recorded by the trace builder"),
        (c, "trace.implicit_flows", "events", "stable",
         "implicit-flow edges added (branches and indexed accesses)"),
        (c, "trace.outputs", "events", "stable",
         "public output events recorded"),
        (c, "trace.secret_input_bits", "bits", "stable",
         "total secret bits introduced at inputs"),
        (c, "trace.tainted_output_bits", "bits", "stable",
         "bits a plain tainting analysis would report at outputs"),
        # Python frontend (repro.pytrace.Session).
        (c, "pytrace.shadow_ops", "events", "stable",
         "shadow-transfer evaluations (binary/unary ops on tracked values)"),
        (c, "pytrace.implicit_events", "events", "stable",
         "branch/index events on tracked values observed by Session"),
        (g, "pytrace.enclosure_depth_max", "regions", "stable",
         "deepest enclosure-region nesting reached in a session"),
        # FlowLang frontend (repro.lang).
        (c, "lang.compile_cache_hits", "hits", "experimental",
         "compiled-program cache hits (compile_cached, keyed by source "
         "hash + filename)"),
        # Fast backend (repro.shadow.fast + frontend fast paths).
        (c, "shadow.fast.batch_ops", "calls", "experimental",
         "bulk shadow-propagation calls taken by the fast backend "
         "(secret_values batches, bulk array reads/writes)"),
        (c, "shadow.fast.batch_values", "values", "experimental",
         "individual values processed through fast-backend bulk calls"),
        # Native backend (repro._native compiled kernels).
        (c, "shadow.native.kernel_calls", "calls", "experimental",
         "compiled shadow-kernel invocations (fused binary-op "
         "evaluate+transfer calls by native-backend sessions)"),
        (HISTOGRAM, "shadow.native.batch_size", "values", "experimental",
         "distribution of batch sizes handed to native-backend bulk "
         "entry points, power-of-two buckets"),
        (c, "shadow.native.fallbacks", "calls", "experimental",
         "native shadow-kernel calls that punted to the pure-Python "
         "kernels (operands or widths beyond the machine-word fast "
         "path)"),
        # Collapsing (repro.graph.collapse).
        (c, "collapse.runs", "calls", "stable",
         "collapse/combine invocations"),
        (g, "collapse.nodes_before", "nodes", "stable",
         "node count entering the most recent collapse"),
        (g, "collapse.nodes_after", "nodes", "stable",
         "node count leaving the most recent collapse"),
        (g, "collapse.edges_before", "edges", "stable",
         "edge count entering the most recent collapse"),
        (g, "collapse.edges_after", "edges", "stable",
         "edge count leaving the most recent collapse"),
        (c, "collapse.label_merge_hits", "edges", "stable",
         "edges folded into an already-seen label bucket"),
        # Online collapsing (repro.core.tracker.CollapsingTraceBuilder).
        (c, "collapse.online.builds", "calls", "experimental",
         "online-collapsed traces finished"),
        (c, "collapse.online.merge_hits", "edges", "experimental",
         "trace edges folded into an existing bucket while tracing"),
        (g, "collapse.online.nodes_live", "nodes", "experimental",
         "live node count of the most recently finished online trace"),
        (g, "collapse.online.edges_live", "edges", "experimental",
         "live edge-bucket count of the most recently finished "
         "online trace"),
        (g, "collapse.online.nodes_peak", "nodes", "experimental",
         "largest live node count seen across online traces"),
        # Max-flow solvers.
        (c, "maxflow.solves", "calls", "stable",
         "solver invocations (any algorithm)"),
        (c, "maxflow.dinic.bfs_phases", "phases", "stable",
         "Dinic level-graph (BFS) phases"),
        (c, "maxflow.dinic.augmenting_paths", "paths", "stable",
         "Dinic augmenting paths pushed across all blocking flows"),
        (HISTOGRAM, "maxflow.dinic.path_length", "edges", "experimental",
         "distribution of Dinic augmenting-path lengths (arcs per path), "
         "power-of-two buckets"),
        (c, "maxflow.edmonds_karp.augmenting_paths", "paths", "stable",
         "Edmonds-Karp shortest augmenting paths"),
        (c, "maxflow.push_relabel.pushes", "events", "stable",
         "push-relabel push operations"),
        (c, "maxflow.push_relabel.relabels", "events", "stable",
         "push-relabel relabel operations"),
        # Warm-start incremental max-flow (dinic_max_flow(warm_start=...)).
        (c, "maxflow.warm_start.hits", "calls", "experimental",
         "solves that successfully reused a prior residual network"),
        (c, "maxflow.warm_start.fallbacks", "calls", "experimental",
         "warm-start attempts abandoned for a cold solve (infeasible "
         "carry-over)"),
        (c, "maxflow.warm_start.reused_bits", "bits", "experimental",
         "flow bits carried over from reused residuals instead of being "
         "re-augmented"),
        # Native compiled solver (repro._native Dinic kernel).
        (c, "maxflow.native.solves", "calls", "experimental",
         "Dinic solves executed by the compiled native kernel"),
        (c, "maxflow.native.fallbacks", "calls", "experimental",
         "native-backend solves that fell back to the Python loop "
         "(capacities beyond int64)"),
        # Measurement results (repro.core.measure).
        (g, "graph.nodes", "nodes", "stable",
         "node count of the most recently solved graph"),
        (g, "graph.edges", "edges", "stable",
         "edge count of the most recently solved graph"),
        (g, "flow.bits", "bits", "stable",
         "most recent max-flow bound"),
        (g, "mincut.edges", "edges", "stable",
         "edge count of the most recent minimum cut"),
        # Batch fan-out (repro.batch).
        (c, "batch.jobs", "jobs", "experimental",
         "measurement jobs executed by the batch engine"),
        (g, "batch.workers", "processes", "experimental",
         "worker pool size of the most recent batch fan-out (1 when "
         "in-process)"),
        (TIMER, "batch.worker_seconds", "seconds", "experimental",
         "accumulated in-job wall time across batch jobs (all workers)"),
        (HISTOGRAM, "batch.job_seconds", "seconds", "experimental",
         "distribution of per-job wall times across batch jobs, "
         "power-of-two buckets"),
        (c, "batch.graphs_bytes", "bytes", "experimental",
         "serialized flow-graph bytes shipped between batch workers and "
         "the parent"),
        (TIMER, "batch.merge_seconds", "seconds", "experimental",
         "parent-side wall time merging worker graphs and results"),
        (c, "batch.failures", "jobs", "experimental",
         "batch jobs that ended in a JobFailure record (worker "
         "exception, or transient-retry budget exhausted)"),
        (c, "batch.retries", "jobs", "experimental",
         "job re-submissions after a transient failure (timeout, broken "
         "pool, pickling transport)"),
        (c, "batch.timeouts", "jobs", "experimental",
         "job attempts cut off by the per-job wall-clock timeout"),
        (c, "batch.pool_restarts", "restarts", "experimental",
         "worker-pool teardown/resurrection cycles after a broken pool "
         "or a timed-out (hung) job"),
        (c, "batch.quarantined", "jobs", "experimental",
         "jobs dropped from rotation after exhausting their transient "
         "retry budget"),
        # Shard store (repro.store) and corpus combine (tree reduction).
        (c, "store.shards_written", "shards", "experimental",
         "distinct content-addressed shard blobs written to a store "
         "(corpus puts and intermediate merge objects)"),
        (c, "store.dedup_hits", "shards", "experimental",
         "store puts whose digest was already present (no blob write)"),
        (c, "store.bytes", "bytes", "experimental",
         "shard-blob bytes written to stores (dedup hits write none)"),
        (g, "combine.tree_levels", "levels", "experimental",
         "reduction levels of the most recent tree-reduction combine "
         "(the parent-side root fold counts as one)"),
        (c, "combine.kraft_updates", "updates", "experimental",
         "incremental Kraft accounting updates: recorded anytime-bound "
         "points after the corpus is sealed (merges, drops, the final "
         "exact solve)"),
        # Process-resource sampling (repro.obs.resources).
        (g, "resource.rss_bytes", "bytes", "experimental",
         "resident set size at the most recent resource sample"),
        (g, "resource.cpu_seconds", "seconds", "experimental",
         "accumulated process CPU time (user+system) at the most "
         "recent resource sample"),
        (g, "resource.open_fds", "fds", "experimental",
         "open file descriptors at the most recent resource sample"),
        (g, "resource.gc_collections", "collections", "experimental",
         "total garbage collections (all generations) at the most "
         "recent resource sample"),
        (g, "resource.graph_nodes_live", "nodes", "experimental",
         "summed live node count of online collapsers tracing at the "
         "most recent resource sample"),
        (g, "resource.graph_edges_live", "edges", "experimental",
         "summed live edge-bucket count of online collapsers tracing "
         "at the most recent resource sample"),
        # Continuous telemetry export (repro.obs.export).
        (c, "obs.export.flushes", "flushes", "experimental",
         "completed telemetry flushes (periodic and final)"),
        (c, "obs.export.bytes", "bytes", "experimental",
         "bytes written to the telemetry directory by flushes"),
        (c, "obs.export.errors", "errors", "experimental",
         "telemetry flushes that failed (the exporter keeps running)"),
        # Measurement service (repro.serve).
        (c, "serve.admitted", "jobs", "experimental",
         "jobs accepted by the measurement service's admission "
         "controller and journaled into the queue"),
        (c, "serve.rejected", "jobs", "experimental",
         "job submissions refused by admission control (backpressure, "
         "per-tenant caps, load shedding, or a drain in progress)"),
        (c, "serve.drained", "jobs", "experimental",
         "jobs checkpointed and left unacknowledged by a graceful "
         "drain (they resume on the next start)"),
        (c, "serve.replayed", "jobs", "experimental",
         "unacknowledged jobs re-enqueued from the queue journal at "
         "service start"),
        (g, "serve.queue_depth", "jobs", "experimental",
         "jobs currently queued (accepted, not yet running) in the "
         "measurement service"),
    ]
    phase_doc = {
        "trace": "instrumented execution (FlowLang VM run)",
        "collapse": "graph collapsing / multi-run combination",
        "solve": "max-flow computation",
        "mincut": "minimum-cut extraction from the residual",
        "measure": "end-to-end measure_graph / measure_runs",
    }
    for phase in PHASES:
        entries.append((TIMER, "phase.%s.seconds" % phase, "seconds",
                        "stable",
                        "accumulated wall time: %s" % phase_doc[phase]))
        entries.append((COUNTER, "phase.%s.calls" % phase, "calls",
                        "stable",
                        "times the %s phase ran" % phase))
    return entries


#: name -> :class:`MetricSpec`; insertion order is the canonical
#: rendering order for snapshots, tables, and the docs catalogue.
CATALOGUE = {}
for _kind, _name, _unit, _stability, _description in _specs():
    CATALOGUE[_name] = MetricSpec(_name, _kind, _unit, _stability,
                                  _description)
del _kind, _name, _unit, _stability, _description


def snapshot_keys():
    """All keys a full snapshot contains, in canonical order."""
    return list(CATALOGUE)
