"""Structured tracing: hierarchical spans over the measurement pipeline.

The metrics registry (:mod:`repro.obs.metrics`) answers *how much* — an
end-of-run total per catalogued name.  This module answers *when*: every
pipeline stage opens a :class:`Span` (a named interval with a parent, a
wall-clock start, a duration, and typed attributes such as graph sizes
and bits), so one run renders as a timeline instead of a totals table.
Batch workers trace under their own :class:`Tracer` and ship their
finished spans back to the parent alongside the metrics snapshot, where
:meth:`Tracer.adopt` re-roots them under the parent's ``batch.map`` span
— one timeline then shows the whole fan-out, worker tracks included.

Like the metrics registry, span *names are a documented contract*
(``docs/observability.md``, "Tracing"; :data:`SPAN_CATALOGUE` here) with
a drift test, and a live :class:`Tracer` rejects uncatalogued names.
The default process-wide instance is :data:`NULL_TRACER`, a no-op sink,
so instrumented code pays only an attribute lookup and an empty method
call per *stage* (never per event) when tracing is off.

Sinks:

* the in-memory recorder itself (``tracer.snapshot()``; surfaced as
  ``FlowReport.trace_spans``);
* :func:`write_jsonl` — one JSON object per span, append-friendly;
* :func:`write_chrome_trace` — Chrome ``trace_event`` JSON that loads
  in Perfetto / ``chrome://tracing`` with one track per process id.
"""

from __future__ import annotations

import json
import os
import time


class SpanSpec:
    """One catalogued span name: its stability and meaning."""

    __slots__ = ("name", "stability", "description")

    def __init__(self, name, stability, description):
        self.name = name
        self.stability = stability
        self.description = description

    def __repr__(self):
        return "SpanSpec(%r, %s)" % (self.name, self.stability)


def _span_specs():
    return [
        ("cli.command", "experimental",
         "one repro CLI subcommand invocation, end to end"),
        ("bench.run", "experimental",
         "one benchmark of the run_all.py harness"),
        ("lang.measure", "experimental",
         "one repro.lang.measure() call (compile excluded, trace through "
         "report)"),
        ("lang.measure_many", "experimental",
         "one multi-run repro.lang.measure_many() call"),
        ("lang.execute", "experimental",
         "one instrumented FlowLang VM run (the trace phase)"),
        ("pytrace.session", "experimental",
         "lifetime of a pytrace Session, construction to finish() "
         "(recorded retroactively at finish)"),
        ("measure.graph", "experimental",
         "one measure_graph() call: collapse + solve + mincut"),
        ("measure.runs", "experimental",
         "one measure_runs() call over a set of run graphs"),
        ("collapse.graphs", "experimental",
         "one post-hoc collapse_graphs() union-find pass"),
        ("collapse.online.materialize", "experimental",
         "materializing an online-collapsed trace into its final graph"),
        ("solve.dinic", "experimental",
         "one Dinic max-flow solve"),
        ("solve.edmonds_karp", "experimental",
         "one Edmonds-Karp max-flow solve"),
        ("solve.push_relabel", "experimental",
         "one FIFO push-relabel max-flow solve"),
        ("mincut.extract", "experimental",
         "extracting the canonical minimum cut from a saturated residual"),
        ("batch.map", "experimental",
         "one BatchEngine fan-out over a payload list"),
        ("batch.job", "experimental",
         "one batch job (in a worker process or in-process)"),
        ("batch.merge", "experimental",
         "parent-side merge of worker graphs/results after a fan-out"),
    ]


#: name -> :class:`SpanSpec`; insertion order is the canonical order of
#: the docs catalogue table.
SPAN_CATALOGUE = {}
for _name, _stability, _description in _span_specs():
    SPAN_CATALOGUE[_name] = SpanSpec(_name, _stability, _description)
del _name, _stability, _description


def span_names():
    """All catalogued span names, in canonical order."""
    return list(SPAN_CATALOGUE)


class Span:
    """One finished (or still-open) named interval.

    ``start`` is wall-clock epoch seconds (comparable across the
    processes of one machine, which is what lets worker spans land on
    the parent's timeline); ``duration`` is measured with the monotonic
    performance counter, so it is immune to clock adjustments.
    ``duration`` is ``None`` while the span is still open.
    """

    __slots__ = ("name", "span_id", "parent_id", "start", "duration",
                 "pid", "attrs")

    def __init__(self, name, span_id, parent_id, start, duration, pid,
                 attrs):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.duration = duration
        self.pid = pid
        self.attrs = attrs

    def to_dict(self):
        """The span as a plain (picklable, JSON-able) dict."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "pid": self.pid,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload):
        return cls(payload["name"], payload["span_id"],
                   payload.get("parent_id"), payload["start"],
                   payload.get("duration"), payload["pid"],
                   dict(payload.get("attrs") or {}))

    def __repr__(self):
        return "Span(%r, id=%s, parent=%s, dur=%s)" % (
            self.name, self.span_id, self.parent_id, self.duration)


class _NullSpan:
    """Open-span handle that does nothing (shared singleton)."""

    __slots__ = ()
    span_id = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **attrs):
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op sink with the :class:`Tracer` interface.

    Accepts any name without validation; every operation is a constant
    handful of bytecodes, so instrumented stages can call
    unconditionally.
    """

    __slots__ = ()
    enabled = False
    current_id = None
    current_name = None

    def span(self, name, **attrs):
        return _NULL_SPAN

    def record(self, name, start, duration, **attrs):
        pass

    def adopt(self, span_dicts, parent_id=None):
        pass

    def snapshot(self):
        """An empty list: a disabled tracer observes nothing."""
        return []

    @property
    def spans(self):
        return []


class _OpenSpan:
    """Context manager for one live span of a :class:`Tracer`."""

    __slots__ = ("_tracer", "_span", "_t0")

    def __init__(self, tracer, span):
        self._tracer = tracer
        self._span = span

    @property
    def span_id(self):
        return self._span.span_id

    def set(self, **attrs):
        """Attach (or overwrite) attributes on the still-open span."""
        self._span.attrs.update(attrs)

    def __enter__(self):
        self._span.start = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._span.duration = time.perf_counter() - self._t0
        if exc_type is not None:
            self._span.attrs["error"] = exc_type.__name__
        self._tracer._close(self._span)
        return False


class Tracer:
    """A live span recorder, pre-validated against the catalogue.

    Spans nest through an explicit stack: ``span()`` opens a child of
    the innermost open span (or a root span), and closing appends the
    finished :class:`Span` to the in-memory recording.  The tracer is
    process-wide and not thread-safe, like the metrics registry.
    """

    __slots__ = ("pid", "_spans", "_stack", "_next_id")
    enabled = True

    def __init__(self):
        self.pid = os.getpid()
        self._spans = []
        self._stack = []
        self._next_id = 1

    def _check(self, name):
        if name not in SPAN_CATALOGUE:
            raise KeyError("span %r is not in the catalogue; add it to "
                           "repro/obs/trace.py and docs/observability.md"
                           % name)

    def _alloc(self):
        span_id = self._next_id
        self._next_id += 1
        return span_id

    @property
    def current_id(self):
        """The innermost open span's id, or ``None`` at the root."""
        return self._stack[-1].span_id if self._stack else None

    @property
    def current_name(self):
        """The innermost open span's name, or ``None`` at the root."""
        return self._stack[-1].name if self._stack else None

    def span(self, name, **attrs):
        """Open a catalogued span as a context manager."""
        self._check(name)
        span = Span(name, self._alloc(), self.current_id, 0.0, None,
                    self.pid, attrs)
        self._stack.append(span)
        return _OpenSpan(self, span)

    def _close(self, span):
        # Tolerate mis-nested exits (an exception unwinding through
        # several spans): pop everything above the closing span too.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        self._spans.append(span)

    def record(self, name, start, duration, **attrs):
        """Record an already-measured interval as a leaf span.

        For intervals that only become known after the fact — e.g. a
        pytrace session's lifetime, whose start predates ``finish()``.
        The span is attached under the innermost currently-open span.
        """
        self._check(name)
        self._spans.append(Span(name, self._alloc(), self.current_id,
                                start, duration, self.pid, attrs))

    def adopt(self, span_dicts, parent_id=None):
        """Fold a worker's serialized spans into this recording.

        Span ids are remapped into this tracer's id space (so adopting
        several workers cannot collide) and each worker root span is
        re-rooted under ``parent_id`` — the parent's ``batch.map`` span
        in the batch engine's case.  Process ids are kept verbatim:
        they are what gives each worker its own track in the Chrome
        trace export.  Returns the adopted :class:`Span` list.
        """
        adopted = [Span.from_dict(payload) for payload in span_dicts]
        # Two passes: spans arrive in completion order (children before
        # parents), so every id must be remapped before parent links are.
        remap = {span.span_id: self._alloc() for span in adopted}
        for span in adopted:
            span.span_id = remap[span.span_id]
            span.parent_id = remap.get(span.parent_id, parent_id)
            self._spans.append(span)
        return adopted

    @property
    def spans(self):
        """The finished spans recorded so far, in completion order."""
        return list(self._spans)

    def snapshot(self):
        """The finished spans as plain dicts (picklable, JSON-able)."""
        return [span.to_dict() for span in self._spans]


# ----------------------------------------------------------------------
# Sinks


def write_jsonl(spans, destination):
    """Write spans (dicts or :class:`Span`) as one JSON object per line.

    ``destination`` is a path or a writable text file object.
    """
    payloads = [span.to_dict() if isinstance(span, Span) else span
                for span in spans]
    if hasattr(destination, "write"):
        for payload in payloads:
            destination.write(json.dumps(payload, sort_keys=True) + "\n")
        return
    with open(destination, "w") as handle:
        write_jsonl(payloads, handle)


def chrome_trace_events(spans, parent_pid=None):
    """Spans rendered as Chrome ``trace_event`` complete ("X") events.

    Timestamps are microseconds relative to the earliest span, one
    ``pid`` per traced process (so Perfetto shows one track per worker),
    with ``process_name`` metadata distinguishing the parent from the
    workers.  Still-open spans (``duration is None``) are skipped.
    """
    payloads = [span.to_dict() if isinstance(span, Span) else span
                for span in spans]
    payloads = [p for p in payloads if p.get("duration") is not None]
    if parent_pid is None:
        parent_pid = os.getpid()
    epoch = min((p["start"] for p in payloads), default=0.0)
    events = []
    for pid in sorted({p["pid"] for p in payloads}):
        name = "repro parent" if pid == parent_pid else "worker %d" % pid
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": pid, "args": {"name": name}})
    for payload in payloads:
        events.append({
            "ph": "X",
            "cat": "repro",
            "name": payload["name"],
            "ts": (payload["start"] - epoch) * 1e6,
            "dur": payload["duration"] * 1e6,
            "pid": payload["pid"],
            "tid": payload["pid"],
            "args": dict(payload.get("attrs") or {},
                         span_id=payload["span_id"],
                         parent_id=payload.get("parent_id")),
        })
    return events


def write_chrome_trace(spans, destination, parent_pid=None):
    """Write spans as a Chrome trace-event JSON file.

    The output is the ``{"traceEvents": [...]}`` object form, which
    both Perfetto and ``chrome://tracing`` load directly.
    """
    payload = {
        "displayTimeUnit": "ms",
        "traceEvents": chrome_trace_events(spans, parent_pid=parent_pid),
    }
    if hasattr(destination, "write"):
        json.dump(payload, destination, indent=1)
        destination.write("\n")
        return
    with open(destination, "w") as handle:
        write_chrome_trace(spans, handle, parent_pid=parent_pid)
