"""Render a metrics snapshot for humans (table) or machines (JSON)."""

from __future__ import annotations

import json

from .catalogue import CATALOGUE, TIMER


def to_json(snapshot, indent=2):
    """The snapshot as a JSON object, keys in catalogue order."""
    return json.dumps(snapshot, indent=indent)


def to_table(snapshot):
    """The snapshot as an aligned ``name value unit`` text table."""
    rows = []
    for name, value in snapshot.items():
        spec = CATALOGUE.get(name)
        if spec is not None and spec.kind == TIMER:
            rendered = "%.6f" % value
        else:
            rendered = str(value)
        rows.append((name, rendered, spec.unit if spec else ""))
    if not rows:
        return "(no metrics recorded)"
    name_width = max(len(name) for name, _, _ in rows)
    value_width = max(len(value) for _, value, _ in rows)
    return "\n".join("%-*s  %*s %s" % (name_width, name, value_width,
                                       value, unit)
                     for name, value, unit in rows)
