"""Render a metrics snapshot for humans (table) or machines (JSON)."""

from __future__ import annotations

import json

from .catalogue import CATALOGUE, HISTOGRAM, TIMER


def to_json(snapshot, indent=2):
    """The snapshot as a JSON object, keys in catalogue order.

    Histogram values render as ``{exponent: count}`` objects (JSON
    turns the integer exponents into string keys; ``Metrics.merge``
    accepts either form).
    """
    return json.dumps(snapshot, indent=indent)


def _histogram_cell(buckets):
    """A ``{exponent: count}`` histogram as a compact text cell."""
    total = sum(buckets.values())
    if not total:
        return "n=0"
    body = " ".join("2^%d:%d" % (int(e), buckets[e])
                    for e in sorted(buckets, key=int))
    return "n=%d [%s]" % (total, body)


def to_table(snapshot):
    """The snapshot as an aligned ``name value unit`` text table."""
    rows = []
    for name, value in snapshot.items():
        spec = CATALOGUE.get(name)
        if spec is not None and spec.kind == TIMER:
            rendered = "%.6f" % value
        elif spec is not None and spec.kind == HISTOGRAM:
            rendered = _histogram_cell(value)
        else:
            rendered = str(value)
        rows.append((name, rendered, spec.unit if spec else ""))
    if not rows:
        return "(no metrics recorded)"
    name_width = max(len(name) for name, _, _ in rows)
    value_width = max(len(value) for _, value, _ in rows)
    return "\n".join("%-*s  %*s %s" % (name_width, name, value_width,
                                       value, unit)
                     for name, value, unit in rows)
