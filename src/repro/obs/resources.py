"""Lightweight process-resource sampling for continuous telemetry.

One :func:`sample` call reads the handful of numbers that make the
paper's §5.3 live-memory claim — million-operation traces collapsing
to coverage-sized graphs — *continuously* observable while work is in
flight: resident set size, accumulated CPU time, garbage-collector
activity, open file descriptors, and the live node/edge counts of
every online collapser currently tracing in this process.  The same
call publishes the values as the catalogued ``resource.*`` gauges and
returns them as a plain JSON-able record (the ``resources.jsonl``
time-series format of the telemetry directory).

Everything here is stdlib-only and degrades gracefully: readings that
a platform cannot provide (``/proc`` on non-Linux hosts) come back as
zero rather than raising, so the sampler is safe to run from the
exporter's flusher thread and from inside every batch worker.

Live-graph gauges come from a weak registry: an online-collapsing
trace builder registers itself at construction
(:func:`track_builder`) and drops out automatically when collected,
so a mid-trace sample can read the *current* collapsed sizes without
the sampler keeping any builder alive.
"""

from __future__ import annotations

import gc
import os
import time
import weakref

#: The record keys of one sample, in serialization order.  ``ts`` and
#: ``pid`` identify the sample; each remaining key mirrors the
#: catalogued gauge ``resource.<key>``.
SAMPLE_FIELDS = ("ts", "pid", "rss_bytes", "cpu_seconds", "open_fds",
                 "gc_collections", "graph_nodes_live", "graph_edges_live")

try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, ValueError, OSError):
    _PAGE_SIZE = 4096

#: Weakly-held live online-collapse builders (see :func:`track_builder`).
_live_builders = weakref.WeakSet()


def track_builder(builder):
    """Register an online-collapsing builder for live-graph sampling.

    The builder must expose ``live_nodes`` and ``live_edges``; it is
    held weakly, so registration never extends its lifetime.  Builders
    that cannot be weakly referenced are silently skipped (sampling is
    best-effort by design).
    """
    try:
        _live_builders.add(builder)
    except TypeError:
        pass


def live_graph_sizes():
    """Summed ``(nodes, edges)`` over the registered live builders."""
    nodes = edges = 0
    for builder in list(_live_builders):
        try:
            nodes += builder.live_nodes
            edges += builder.live_edges
        except Exception:
            continue
    return nodes, edges


def rss_bytes():
    """Resident set size in bytes (0 when unreadable)."""
    try:
        with open("/proc/self/statm") as handle:
            return int(handle.read().split()[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource
        # ru_maxrss is kibibytes on Linux (bytes on macOS, where the
        # /proc read above already failed); a high-water mark is the
        # best available fallback.
        factor = 1 if os.uname().sysname == "Darwin" else 1024
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * factor
    except Exception:
        return 0


def cpu_seconds():
    """Accumulated user+system CPU seconds of this process."""
    times = os.times()
    return times.user + times.system


def open_fds():
    """Open file-descriptor count (0 when ``/proc`` is unavailable)."""
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return 0


def gc_collections():
    """Total garbage collections across all generations so far."""
    try:
        return sum(stat["collections"] for stat in gc.get_stats())
    except Exception:
        return 0


def sample(metrics=None):
    """Take one resource sample; returns the JSON-able record.

    When ``metrics`` (default: the process-wide registry) is a live
    registry, the sample is also published as the ``resource.*``
    gauges — plain last-written values locally, which the batch merge
    turns into cross-process high-water marks (gauges merge by max).
    """
    if metrics is None:
        from repro import obs
        metrics = obs.get_metrics()
    nodes, edges = live_graph_sizes()
    record = {
        "ts": time.time(),
        "pid": os.getpid(),
        "rss_bytes": rss_bytes(),
        "cpu_seconds": cpu_seconds(),
        "open_fds": open_fds(),
        "gc_collections": gc_collections(),
        "graph_nodes_live": nodes,
        "graph_edges_live": edges,
    }
    if metrics.enabled:
        for field in SAMPLE_FIELDS[2:]:
            metrics.gauge("resource.%s" % field, record[field])
    return record
