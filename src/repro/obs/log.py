"""Structured JSON event logging, correlated with the active span.

The metrics registry answers *how much* and the tracer answers *when*;
this module answers *what happened*: discrete, irregular occurrences —
a retry, a quarantine, a dedup hit, a backend fallback — that are
invisible as counter totals (the count survives, the circumstances do
not) and too rare to deserve their own spans.  Each record is a plain
JSON-able dict carrying a wall-clock timestamp, the recording process
id, the event name, the id and name of the span that was open when the
event fired (``None`` when tracing is off), and the event's own typed
fields.

Like metric and span names, **event names are a closed catalogue**
(:data:`EVENT_CATALOGUE`, the ``events-v1`` schema documented in
``docs/observability.md`` with its own drift test): a live
:class:`EventLog` rejects anything else, so the event stream cannot
drift away from the documented contract.

The process-wide instance defaults to :data:`repro.obs.NULL_EVENT_LOG`,
a no-op sink, so instrumented code pays only an attribute lookup and an
empty method call per *event site* when logging is off.  The live log
is a bounded ring (oldest records dropped, with a counter) drained by
the telemetry exporter; batch workers run their own fresh log and ship
drained records home for the parent to :meth:`~EventLog.adopt`,
exactly like metric snapshots and span dicts.
"""

from __future__ import annotations

import os
import threading
import time

#: Record keys reserved by the ``events-v1`` schema; event-specific
#: fields may not collide with them.
RESERVED_FIELDS = ("ts", "pid", "event", "span_id", "span")


class EventSpec:
    """One catalogued event name: its stability and meaning."""

    __slots__ = ("name", "stability", "description")

    def __init__(self, name, stability, description):
        self.name = name
        self.stability = stability
        self.description = description

    def __repr__(self):
        return "EventSpec(%r, %s)" % (self.name, self.stability)


def _event_specs():
    return [
        ("batch.retry", "experimental",
         "a transiently failed job attempt was re-queued for another try"),
        ("batch.timeout", "experimental",
         "a job attempt exceeded the per-job wall-clock budget"),
        ("batch.quarantine", "experimental",
         "a job exhausted its transient retry budget and was dropped "
         "from rotation"),
        ("batch.failure", "experimental",
         "a permanently failed job was collected as a JobFailure record"),
        ("batch.pool_restart", "experimental",
         "the worker pool was torn down and resurrected"),
        ("store.dedup", "experimental",
         "a store put's digest was already present, so no blob was "
         "written"),
        ("store.recovered", "experimental",
         "opening a shard store repaired or dropped corrupt manifest "
         "lines instead of raising"),
        ("combine.kraft_update", "experimental",
         "the incremental Kraft accountant recorded an anytime-bound "
         "trail point"),
        ("backend.fallback", "experimental",
         "a native or warm-start code path punted to the plain Python "
         "implementation"),
        ("export.flush_error", "experimental",
         "one telemetry flush failed; the exporter keeps running"),
        ("queue.submit", "experimental",
         "the measurement service journaled one accepted job "
         "(durable before the 202 response)"),
        ("queue.ack", "experimental",
         "one job reached a terminal state and its acknowledge record "
         "was journaled"),
        ("queue.replay", "experimental",
         "service start re-enqueued an unacknowledged job from the "
         "queue journal"),
        ("queue.reject", "experimental",
         "admission control refused a job submission (the HTTP 429/503 "
         "path)"),
        ("queue.cancel", "experimental",
         "a cancel request was journaled for a queued or running job"),
    ]


#: name -> :class:`EventSpec`; insertion order is the canonical order
#: of the docs catalogue table.
EVENT_CATALOGUE = {}
for _name, _stability, _description in _event_specs():
    EVENT_CATALOGUE[_name] = EventSpec(_name, _stability, _description)
del _name, _stability, _description


def event_names():
    """All catalogued event names, in canonical order."""
    return list(EVENT_CATALOGUE)


class NullEventLog:
    """No-op sink with the :class:`EventLog` interface.

    Accepts any name without validation; every operation is a constant
    handful of bytecodes, so event sites can call unconditionally.
    """

    __slots__ = ()
    enabled = False
    dropped = 0

    def event(self, name, **fields):
        pass

    def adopt(self, records):
        pass

    def snapshot(self):
        """An empty list: a disabled log observes nothing."""
        return []

    def drain(self):
        return []


class EventLog:
    """A live bounded event recorder, validated against the catalogue.

    Thread-safe by construction (a single lock guards the ring): the
    telemetry exporter's flusher thread drains records while
    instrumented code keeps appending.  ``capacity`` bounds memory for
    long-running processes; when the ring is full the *oldest* record
    is dropped and :attr:`dropped` counts it, so a stalled exporter
    degrades to losing history rather than growing without bound.
    """

    __slots__ = ("capacity", "dropped", "_records", "_lock")
    enabled = True

    def __init__(self, capacity=4096):
        capacity = int(capacity)
        if capacity < 1:
            raise ValueError("capacity must be >= 1, got %d" % capacity)
        self.capacity = capacity
        self.dropped = 0
        self._records = []
        self._lock = threading.Lock()

    def event(self, name, **fields):
        """Record one catalogued event with the given typed fields.

        The record automatically carries ``ts`` (epoch seconds),
        ``pid``, ``event`` (the name), and ``span_id``/``span`` — the
        id and name of the innermost open span of the process-wide
        tracer, or ``None`` when tracing is off.  Returns the record.
        """
        if name not in EVENT_CATALOGUE:
            raise KeyError("event %r is not in the catalogue; add it to "
                           "repro/obs/log.py and docs/observability.md"
                           % name)
        for reserved in RESERVED_FIELDS:
            if reserved in fields:
                raise ValueError("event field %r collides with a "
                                 "reserved events-v1 key" % reserved)
        from repro import obs
        tracer = obs.get_tracer()
        record = {"ts": time.time(), "pid": os.getpid(), "event": name,
                  "span_id": tracer.current_id,
                  "span": tracer.current_name}
        record.update(fields)
        self._append(record)
        return record

    def _append(self, record):
        with self._lock:
            if len(self._records) >= self.capacity:
                overflow = len(self._records) - self.capacity + 1
                del self._records[:overflow]
                self.dropped += overflow
            self._records.append(record)

    def adopt(self, records):
        """Fold a worker's drained records into this log, verbatim.

        Process ids and span ids are kept as the worker recorded them
        (worker span ids live in the worker tracer's id space; the
        ``pid`` disambiguates).  Every record's name must be catalogued
        — adopting an undocumented event raises ``KeyError``, keeping
        the contract intact across process boundaries.
        """
        for record in records:
            name = record.get("event")
            if name not in EVENT_CATALOGUE:
                raise KeyError("adopted record's event %r is not in the "
                               "catalogue; refusing to adopt "
                               "undocumented events" % (name,))
            self._append(record)

    def snapshot(self):
        """The buffered records, oldest first, without consuming them."""
        with self._lock:
            return list(self._records)

    def drain(self):
        """Remove and return the buffered records, oldest first."""
        with self._lock:
            records = self._records
            self._records = []
        return records
