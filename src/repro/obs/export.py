"""Continuous telemetry export: periodic JSONL + OpenMetrics snapshots.

A :class:`TelemetryExporter` turns the in-memory observability layer
(metrics registry, resource sampler, event log) into an on-disk
time-series a human or a Prometheus scraper can watch *while the
measurement is still running*.  A background daemon thread flushes at
a configurable interval into a ``telemetry-v1`` directory:

``format``
    a one-line marker file naming the layout version;
``metrics.jsonl``
    one record per flush: ``{"ts", "seq", "metrics"}`` where
    ``metrics`` is the full registry snapshot with counters, timers,
    and histogram buckets made *monotone across registry resets* by a
    publish ledger (see :class:`_Ledger`);
``metrics.prom``
    the most recent snapshot rendered as OpenMetrics exposition text,
    rewritten atomically each flush so a scrape never reads a torn
    file;
``resources.jsonl``
    the parent process's resource samples, one per flush;
``events.jsonl``
    structured event records drained from the event log;
``workers/<pid>/resources.jsonl``
    one file per batch worker that shipped a resource sample home;
``snapshot-<seq>.json`` + ``latest``
    the newest full snapshot plus an atomically swapped ``latest``
    symlink (a plain file on filesystems without symlinks), so
    ``repro obs tail`` always has one coherent snapshot to render.

Everything is append-or-atomic-replace: a crash mid-flush leaves at
worst one partial trailing JSONL line and never a torn ``.prom`` or
``latest``.  Flush failures are contained — counted on
``obs.export.errors``, logged as ``export.flush_error`` events, and
surfaced once via :attr:`TelemetryExporter.error` — so telemetry can
never take down the measurement it is observing.
"""

from __future__ import annotations

import json
import os
import threading
import time

from . import resources
from .catalogue import CATALOGUE, COUNTER, GAUGE, HISTOGRAM, TIMER
from .log import EVENT_CATALOGUE, RESERVED_FIELDS

#: The directory layout version written to the ``format`` marker file.
FORMAT = "telemetry-v1"

_PROM_PREFIX = "repro_"


def _prom_name(name):
    """The OpenMetrics family name for a catalogued metric name."""
    return _PROM_PREFIX + name.replace(".", "_")


def _escape_label_value(value):
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(text):
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value):
    if isinstance(value, float):
        return repr(value)
    return str(value)


def render_openmetrics(snapshot, resource_samples=None):
    """Render one registry snapshot as OpenMetrics exposition text.

    Counters and timers are exposed with the mandatory ``_total``
    sample suffix; histograms become cumulative ``_bucket{le="..."}``
    series (upper bounds ``2**e`` from the power-of-two exponents)
    plus ``+Inf`` and ``_count``.  When ``resource_samples`` — a dict
    mapping a worker label (``"parent"`` or a pid string) to that
    process's most recent resource record — is given, the
    ``resource.*`` gauges are rendered once per process with a
    ``worker`` label instead of from the merged snapshot, so parent
    and worker resource series stay distinguishable on a dashboard.
    The text ends with the ``# EOF`` terminator the OpenMetrics
    spec requires.
    """
    lines = []
    for name, spec in CATALOGUE.items():
        if name not in snapshot:
            continue
        value = snapshot[name]
        family = _prom_name(name)
        om_type = "histogram" if spec.kind == HISTOGRAM else (
            "counter" if spec.kind in (COUNTER, TIMER) else "gauge")
        lines.append("# HELP %s %s" % (family, _escape_help(spec.description)))
        lines.append("# TYPE %s %s" % (family, om_type))
        if spec.kind == HISTOGRAM:
            total = 0
            for exponent in sorted(int(e) for e in value):
                total += value[exponent] if exponent in value \
                    else value[str(exponent)]
                lines.append('%s_bucket{le="%s"} %d'
                             % (family, _format_value(float(2 ** exponent)),
                                total))
            lines.append('%s_bucket{le="+Inf"} %d' % (family, total))
            lines.append("%s_count %d" % (family, total))
        elif spec.kind in (COUNTER, TIMER):
            lines.append("%s_total %s" % (family, _format_value(value)))
        elif (resource_samples and name.startswith("resource.")):
            field = name[len("resource."):]
            for worker, record in resource_samples.items():
                if field not in record:
                    continue
                lines.append('%s{worker="%s"} %s'
                             % (family, _escape_label_value(worker),
                                _format_value(record[field])))
        else:
            lines.append("%s %s" % (family, _format_value(value)))
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _unescape_label_value(raw):
    out = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch == "\\" and i + 1 < len(raw):
            nxt = raw[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ("\\", '"'):
                out.append(nxt)
            else:
                out.append(nxt)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_labels(raw):
    """Parse ``name="value",...`` label text into a dict."""
    labels = {}
    i = 0
    while i < len(raw):
        if raw[i] == ",":
            i += 1
            continue
        eq = raw.index("=", i)
        label = raw[i:eq].strip()
        if raw[eq + 1] != '"':
            raise ValueError("label value for %r is not quoted" % label)
        j = eq + 2
        buf = []
        while j < len(raw):
            ch = raw[j]
            if ch == "\\" and j + 1 < len(raw):
                buf.append(ch)
                buf.append(raw[j + 1])
                j += 2
                continue
            if ch == '"':
                break
            buf.append(ch)
            j += 1
        else:
            raise ValueError("unterminated label value for %r" % label)
        labels[label] = _unescape_label_value("".join(buf))
        i = j + 1
    return labels


class MetricFamily:
    """One parsed OpenMetrics family: type, help, and samples."""

    __slots__ = ("name", "type", "help", "samples")

    def __init__(self, name):
        self.name = name
        self.type = None
        self.help = None
        #: list of ``(sample_name, labels_dict, value)`` tuples.
        self.samples = []


def parse_openmetrics(text):
    """Parse exposition text into ``{family_name: MetricFamily}``.

    A deliberately minimal parser — enough to round-trip everything
    :func:`render_openmetrics` emits and to power
    :func:`lint_openmetrics` — that raises ``ValueError`` on malformed
    lines rather than guessing.
    """
    families = {}
    saw_eof = False
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if saw_eof:
            raise ValueError("line %d: content after # EOF" % lineno)
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            keyword = line[2:6]
            rest = line[7:]
            try:
                name, payload = rest.split(" ", 1)
            except ValueError:
                raise ValueError("line %d: malformed # %s line"
                                 % (lineno, keyword))
            family = families.setdefault(name, MetricFamily(name))
            if keyword == "HELP":
                family.help = payload
            else:
                family.type = payload
            continue
        if line.startswith("#"):
            continue  # comment
        brace = line.find("{")
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                raise ValueError("line %d: unbalanced label braces" % lineno)
            sample_name = line[:brace]
            labels = _parse_labels(line[brace + 1:close])
            value_text = line[close + 1:].strip()
        else:
            parts = line.split()
            if len(parts) < 2:
                raise ValueError("line %d: sample without a value" % lineno)
            sample_name = parts[0]
            labels = {}
            value_text = parts[1]
        if value_text == "+Inf":
            value = float("inf")
        else:
            try:
                value = float(value_text)
            except ValueError:
                raise ValueError("line %d: unparseable sample value %r"
                                 % (lineno, value_text))
        base = sample_name
        for suffix in ("_total", "_bucket", "_count", "_sum"):
            if base.endswith(suffix) and base[:-len(suffix)] in families:
                base = base[:-len(suffix)]
                break
        family = families.setdefault(base, MetricFamily(base))
        family.samples.append((sample_name, labels, value))
    if not saw_eof:
        raise ValueError("missing # EOF terminator")
    return families


def lint_openmetrics(text):
    """Check exposition text against the rules we promise to follow.

    Returns a list of human-readable problem strings (empty when
    clean): every family must carry ``# HELP`` and ``# TYPE``; counter
    samples must end in ``_total``; histogram buckets must be
    cumulative, non-decreasing, include ``le="+Inf"``, and agree with
    ``_count``; the text must terminate with ``# EOF``.
    """
    problems = []
    try:
        families = parse_openmetrics(text)
    except ValueError as exc:
        return ["unparseable exposition text: %s" % exc]
    for name, family in families.items():
        if family.type is None:
            problems.append("family %s has no # TYPE line" % name)
            continue
        if family.help is None:
            problems.append("family %s has no # HELP line" % name)
        if family.type == "counter":
            for sample_name, _labels, _value in family.samples:
                if not sample_name.endswith("_total"):
                    problems.append(
                        "counter sample %s does not end in _total"
                        % sample_name)
        elif family.type == "histogram":
            buckets = [(labels.get("le"), value)
                       for sample_name, labels, value in family.samples
                       if sample_name == name + "_bucket"]
            counts = [value for sample_name, _labels, value
                      in family.samples if sample_name == name + "_count"]
            if not any(le == "+Inf" for le, _ in buckets):
                problems.append("histogram %s has no +Inf bucket" % name)
            previous = None
            for le, value in buckets:
                if previous is not None and value < previous:
                    problems.append(
                        "histogram %s buckets are not cumulative "
                        "(le=%s drops below the previous bucket)"
                        % (name, le))
                    break
                previous = value
            if buckets and counts:
                inf = [value for le, value in buckets if le == "+Inf"]
                if inf and counts[0] != inf[0]:
                    problems.append(
                        "histogram %s _count (%s) disagrees with its "
                        "+Inf bucket (%s)" % (name, counts[0], inf[0]))
    return problems


class _Ledger:
    """Keeps published counters monotone across registry resets.

    ``repro bench run_all`` (and anything else calling
    ``obs.enable()`` repeatedly) resets the live registry between
    benchmarks, so raw counter values can *drop*.  A Prometheus
    counter must never do that, and neither may ``metrics.jsonl`` if
    ``repro obs check`` is to assert monotonicity.  The ledger
    remembers, per counter/timer/bucket, the last raw reading and the
    running published total: a raw value that moved forward publishes
    the delta; a raw value below the last reading is a reset, and the
    whole new value is the delta.  Keys absent from a snapshot (a
    disabled-registry window) carry their published total forward.
    Gauges pass through untouched.
    """

    __slots__ = ("_last_raw", "_published")

    def __init__(self):
        self._last_raw = {}
        self._published = {}

    def _advance(self, key, raw):
        last = self._last_raw.get(key, 0)
        delta = raw - last if raw >= last else raw
        self._last_raw[key] = raw
        total = self._published.get(key, 0) + delta
        self._published[key] = total
        return total

    def publish(self, snapshot):
        """The monotone published view of one raw registry snapshot."""
        published = {}
        for name, spec in CATALOGUE.items():
            if name in snapshot:
                raw = snapshot[name]
                if spec.kind == GAUGE:
                    published[name] = raw
                elif spec.kind == HISTOGRAM:
                    buckets = {}
                    seen = set()
                    for bucket, count in raw.items():
                        bucket = int(bucket)
                        seen.add(bucket)
                        buckets[bucket] = self._advance((name, bucket),
                                                        count)
                    for key, total in self._published.items():
                        if (isinstance(key, tuple) and key[0] == name
                                and key[1] not in seen):
                            buckets[key[1]] = total
                    published[name] = buckets
                else:
                    published[name] = self._advance(name, raw)
            else:
                # Disabled-registry window: carry totals forward.
                if spec.kind == GAUGE:
                    if name in self._published:
                        published[name] = self._published[name]
                elif spec.kind == HISTOGRAM:
                    buckets = {}
                    for key, total in self._published.items():
                        if isinstance(key, tuple) and key[0] == name:
                            buckets[key[1]] = total
                            self._last_raw[key] = 0
                    published[name] = buckets
                else:
                    published[name] = self._published.get(name, 0)
                    self._last_raw[name] = 0
        return published

    def remember_gauges(self, published):
        """Stash gauges so disabled-registry windows keep the last value."""
        for name, spec in CATALOGUE.items():
            if spec.kind == GAUGE and name in published:
                self._published[name] = published[name]


#: Public name for the monotone-publishing ledger: the measurement
#: service's ``/metrics`` endpoint keeps its own instance so scrapes
#: stay monotone across registry resets, exactly like the exporter's.
Ledger = _Ledger


def _atomic_write(path, text):
    """Write ``text`` to ``path`` via a temp file and ``os.replace``."""
    tmp = "%s.tmp.%d" % (path, os.getpid())
    with open(tmp, "w") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return len(text)


def _swap_latest(directory, target_name):
    """Point ``<directory>/latest`` at ``target_name``, atomically.

    Prefers an atomically replaced symlink; on filesystems without
    symlink support, falls back to copying the target into a regular
    ``latest`` file (still via atomic rename).
    """
    latest = os.path.join(directory, "latest")
    tmp = os.path.join(directory, ".latest.tmp.%d" % os.getpid())
    try:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        os.symlink(target_name, tmp)
        os.replace(tmp, latest)
    except OSError:
        with open(os.path.join(directory, target_name)) as handle:
            _atomic_write(latest, handle.read())


class TelemetryExporter:
    """Background flusher writing the ``telemetry-v1`` directory.

    Create it pointed at a directory (created if missing, may be
    non-empty — appends continue an earlier series), then
    :meth:`start` the daemon thread; :meth:`stop` joins it and runs
    one final flush so short runs still leave a complete record.  Any
    OSError creating the directory propagates to the caller (the CLI
    maps it to the sink-failure exit contract); errors *during* a
    flush never propagate — they are counted, logged, and remembered
    on :attr:`error`.
    """

    def __init__(self, directory, interval=1.0):
        self.directory = str(directory)
        self.interval = float(interval)
        if self.interval <= 0:
            raise ValueError("interval must be positive, got %r" % interval)
        #: The first exception a flush raised, or ``None``.
        self.error = None
        self.flushes = 0
        self._seq = 0
        self._ledger = _Ledger()
        self._stop = threading.Event()
        self._thread = None
        self._worker_buffer = []
        self._worker_latest = {}
        self._buffer_lock = threading.Lock()
        self._previous_snapshot_name = None
        os.makedirs(self.directory, exist_ok=True)
        os.makedirs(os.path.join(self.directory, "workers"), exist_ok=True)
        _atomic_write(os.path.join(self.directory, "format"), FORMAT + "\n")

    def start(self):
        """Start the background flusher (idempotent)."""
        if self._thread is not None:
            return self
        from repro import obs
        obs.get_metrics().enable_thread_safety()
        self._stop.clear()
        self._thread = threading.Thread(target=self._run,
                                        name="repro-telemetry", daemon=True)
        self._thread.start()
        return self

    def _run(self):
        while not self._stop.wait(self.interval):
            self.flush()

    def absorb_worker(self, record):
        """Buffer one worker resource record for the next flush.

        Called from the batch engine's collection path (parent
        process, possibly concurrently with the flusher thread); the
        record lands in ``workers/<pid>/resources.jsonl`` and in the
        per-worker ``worker=<pid>`` series of ``metrics.prom``.
        """
        if not isinstance(record, dict) or "pid" not in record:
            return
        with self._buffer_lock:
            self._worker_buffer.append(record)

    def flush(self):
        """Run one flush; contain (but remember) any failure."""
        try:
            self._flush()
        except Exception as exc:  # noqa: BLE001 - containment is the point
            if self.error is None:
                self.error = exc
            from repro import obs
            metrics = obs.get_metrics()
            if metrics.enabled:
                try:
                    metrics.incr("obs.export.errors")
                except Exception:
                    pass
            try:
                obs.get_event_log().event("export.flush_error",
                                          error=str(exc))
            except Exception:
                pass

    def _flush(self):
        from repro import obs
        metrics = obs.get_metrics()
        if metrics.enabled:
            metrics.enable_thread_safety()
        now = time.time()
        parent_sample = resources.sample(metrics)
        raw = metrics.snapshot()
        published = self._ledger.publish(raw)
        self._ledger.remember_gauges(published)
        self._seq += 1
        seq = self._seq
        bytes_written = 0

        with self._buffer_lock:
            worker_records = self._worker_buffer
            self._worker_buffer = []
        for record in worker_records:
            self._worker_latest[record["pid"]] = record

        bytes_written += self._append_jsonl(
            "metrics.jsonl", [{"ts": now, "seq": seq, "metrics": published}])
        bytes_written += self._append_jsonl("resources.jsonl",
                                            [parent_sample])
        by_pid = {}
        for record in worker_records:
            by_pid.setdefault(record["pid"], []).append(record)
        for pid, records in by_pid.items():
            worker_dir = os.path.join(self.directory, "workers", str(pid))
            os.makedirs(worker_dir, exist_ok=True)
            bytes_written += self._append_jsonl(
                os.path.join("workers", str(pid), "resources.jsonl"),
                records)
        events = obs.get_event_log().drain()
        if events:
            bytes_written += self._append_jsonl("events.jsonl", events)

        samples = {"parent": parent_sample}
        for pid, record in self._worker_latest.items():
            samples[str(pid)] = record
        prom = render_openmetrics(published, resource_samples=samples)
        bytes_written += _atomic_write(
            os.path.join(self.directory, "metrics.prom"), prom)

        snapshot_name = "snapshot-%d.json" % seq
        snapshot_doc = {"ts": now, "seq": seq, "format": FORMAT,
                        "metrics": published, "resources": samples}
        bytes_written += _atomic_write(
            os.path.join(self.directory, snapshot_name),
            json.dumps(snapshot_doc, sort_keys=False) + "\n")
        _swap_latest(self.directory, snapshot_name)
        if (self._previous_snapshot_name
                and self._previous_snapshot_name != snapshot_name):
            try:
                os.unlink(os.path.join(self.directory,
                                       self._previous_snapshot_name))
            except OSError:
                pass
        self._previous_snapshot_name = snapshot_name

        self.flushes += 1
        if metrics.enabled:
            metrics.incr("obs.export.flushes")
            metrics.incr("obs.export.bytes", bytes_written)

    def _append_jsonl(self, relative, records):
        path = os.path.join(self.directory, relative)
        text = "".join(json.dumps(record, sort_keys=False) + "\n"
                       for record in records)
        with open(path, "a") as handle:
            handle.write(text)
        return len(text)

    def stop(self, flush=True):
        """Stop the flusher, run one final flush, return the first error."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=max(5.0, self.interval * 2))
            self._thread = None
        if flush:
            self.flush()
        return self.error


def read_latest(directory):
    """The most recent full snapshot document of a telemetry dir."""
    with open(os.path.join(str(directory), "latest")) as handle:
        return json.load(handle)


def _check_monotone(records, problems):
    """Assert counters/timers/buckets never decrease across records."""
    previous = None
    previous_seq = None
    for record in records:
        seq = record.get("seq")
        if previous_seq is not None and (seq is None or seq <= previous_seq):
            problems.append("metrics.jsonl seq is not strictly increasing "
                            "(%r after %r)" % (seq, previous_seq))
        previous_seq = seq
        snapshot = record.get("metrics", {})
        if previous is not None:
            for name, spec in CATALOGUE.items():
                if name not in snapshot or name not in previous:
                    continue
                if spec.kind == GAUGE:
                    continue
                if spec.kind == HISTOGRAM:
                    before, after = previous[name], snapshot[name]
                    for bucket, count in before.items():
                        if after.get(bucket, 0) < count:
                            problems.append(
                                "histogram %s bucket %s decreased at seq %s"
                                % (name, bucket, seq))
                            break
                elif snapshot[name] < previous[name]:
                    problems.append("counter %s decreased at seq %s "
                                    "(%r -> %r)" % (name, seq,
                                                    previous[name],
                                                    snapshot[name]))
        previous = snapshot


def _read_jsonl(path, problems, label):
    records = []
    try:
        with open(path) as handle:
            for lineno, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError:
                    problems.append("%s line %d is not valid JSON"
                                    % (label, lineno))
    except OSError as exc:
        problems.append("cannot read %s: %s" % (label, exc))
    return records


def check_dir(directory):
    """Lint a telemetry directory; returns a list of problems.

    The ``repro obs check`` implementation: verifies the format
    marker, lints ``metrics.prom`` as OpenMetrics, asserts
    counter/timer/histogram monotonicity and strictly increasing
    sequence numbers across ``metrics.jsonl``, checks that every
    event in ``events.jsonl`` is catalogued and schema-complete, and
    parses every ``resources.jsonl`` (parent and workers) and the
    ``latest`` snapshot.
    """
    directory = str(directory)
    problems = []
    marker = os.path.join(directory, "format")
    try:
        with open(marker) as handle:
            found = handle.read().strip()
        if found != FORMAT:
            problems.append("format marker says %r, expected %r"
                            % (found, FORMAT))
    except OSError:
        problems.append("missing format marker file")

    prom_path = os.path.join(directory, "metrics.prom")
    if os.path.exists(prom_path):
        with open(prom_path) as handle:
            problems.extend(lint_openmetrics(handle.read()))
    else:
        problems.append("missing metrics.prom")

    metrics_path = os.path.join(directory, "metrics.jsonl")
    if os.path.exists(metrics_path):
        records = _read_jsonl(metrics_path, problems, "metrics.jsonl")
        _check_monotone(records, problems)
    else:
        problems.append("missing metrics.jsonl")

    events_path = os.path.join(directory, "events.jsonl")
    if os.path.exists(events_path):
        for record in _read_jsonl(events_path, problems, "events.jsonl"):
            name = record.get("event")
            if name not in EVENT_CATALOGUE:
                problems.append("events.jsonl has uncatalogued event %r"
                                % (name,))
                continue
            for field in RESERVED_FIELDS:
                if field not in record:
                    problems.append("event %r record is missing required "
                                    "field %r" % (name, field))

    resources_path = os.path.join(directory, "resources.jsonl")
    if os.path.exists(resources_path):
        for record in _read_jsonl(resources_path, problems,
                                  "resources.jsonl"):
            for field in resources.SAMPLE_FIELDS:
                if field not in record:
                    problems.append("resources.jsonl record is missing "
                                    "field %r" % field)
                    break
    else:
        problems.append("missing resources.jsonl")

    workers_dir = os.path.join(directory, "workers")
    if os.path.isdir(workers_dir):
        for pid in sorted(os.listdir(workers_dir)):
            worker_path = os.path.join(workers_dir, pid, "resources.jsonl")
            if not os.path.exists(worker_path):
                problems.append("worker dir %s has no resources.jsonl" % pid)
                continue
            label = "workers/%s/resources.jsonl" % pid
            for record in _read_jsonl(worker_path, problems, label):
                for field in resources.SAMPLE_FIELDS:
                    if field not in record:
                        problems.append("%s record is missing field %r"
                                        % (label, field))
                        break

    latest = os.path.join(directory, "latest")
    if os.path.exists(latest):
        try:
            read_latest(directory)
        except (OSError, ValueError) as exc:
            problems.append("latest snapshot is unreadable: %s" % exc)
    return problems
