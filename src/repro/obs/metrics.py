"""Counters, gauges, and phase timers over the catalogued names.

Two implementations share one interface:

* :class:`Metrics` records for real and *rejects names missing from the
  catalogue*, so instrumentation cannot drift away from the documented
  contract;
* :class:`NullMetrics` is the no-op sink installed by default, making
  instrumented code essentially free when observability is off.

Instrumented modules fetch the process-wide instance via
:func:`repro.obs.get_metrics` at each use site (never caching it across
calls), so enabling metrics mid-process takes effect immediately.
"""

from __future__ import annotations

import math
import threading
import time

from .catalogue import (CATALOGUE, COUNTER, GAUGE, HISTOGRAM,
                        HISTOGRAM_MAX_EXPONENT, TIMER)

#: How worker snapshots fold into a parent registry, by metric kind:
#: counters, timers, and histogram buckets are extensive (they add);
#: gauges are point-in-time observations with no cross-process "most
#: recent", so merging keeps the high-water mark.
MERGE_BY_MAX = frozenset((GAUGE,))


def histogram_bucket(value):
    """The fixed power-of-two bucket exponent for one observation.

    Bucket ``e`` holds values with ``2**(e-1) <= value < 2**e``, clamped
    to ±``HISTOGRAM_MAX_EXPONENT``; non-positive observations land in
    the lowest bucket.
    """
    if value <= 0:
        return -HISTOGRAM_MAX_EXPONENT
    exponent = math.frexp(value)[1]
    if exponent < -HISTOGRAM_MAX_EXPONENT:
        return -HISTOGRAM_MAX_EXPONENT
    if exponent > HISTOGRAM_MAX_EXPONENT:
        return HISTOGRAM_MAX_EXPONENT
    return exponent


class _NullPhase:
    """Context manager that does nothing (shared singleton)."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_PHASE = _NullPhase()


class NullMetrics:
    """No-op sink with the :class:`Metrics` interface.

    Accepts any name without validation; every operation is a constant
    handful of bytecodes, so hot paths can call unconditionally.
    """

    __slots__ = ()
    enabled = False
    thread_safe = True

    def enable_thread_safety(self):
        return self

    def incr(self, name, amount=1):
        pass

    def gauge(self, name, value):
        pass

    def gauge_max(self, name, value):
        pass

    def add_seconds(self, name, seconds):
        pass

    def observe(self, name, value):
        pass

    def merge(self, snapshot):
        pass

    def phase(self, name):
        return _NULL_PHASE

    def snapshot(self):
        """An empty dict: a disabled registry observes nothing."""
        return {}


class _Phase:
    """Times one ``with metrics.phase(name):`` block."""

    __slots__ = ("_metrics", "_seconds_key", "_calls_key", "_t0")

    def __init__(self, metrics, seconds_key, calls_key):
        self._metrics = metrics
        self._seconds_key = seconds_key
        self._calls_key = calls_key

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        elapsed = time.perf_counter() - self._t0
        metrics = self._metrics
        lock = metrics._lock
        values = metrics._values
        if lock is None:
            values[self._seconds_key] += elapsed
            values[self._calls_key] += 1
        else:
            with lock:
                values[self._seconds_key] += elapsed
                values[self._calls_key] += 1
        return False


class Metrics:
    """A live metrics registry pre-populated from the catalogue.

    Every catalogued name is present (at zero) from construction, so a
    snapshot's key set is always exactly the catalogue -- the property
    the docs-drift test and the ``--metrics=json`` contract rely on.
    Values accumulate for the life of the instance; create a fresh one
    (:func:`repro.obs.enable` does) to start a new measurement window.

    The registry is single-threaded by default (no locking cost on the
    hot per-event paths).  :meth:`enable_thread_safety` installs an
    internal lock guarding every mutation and :meth:`snapshot`, so a
    background flusher (the telemetry exporter enables this
    automatically when it starts) can snapshot concurrently with
    instrumented code without lost increments or torn histograms.
    """

    __slots__ = ("_values", "_lock")
    enabled = True

    def __init__(self):
        self._values = {name: spec.zero for name, spec in CATALOGUE.items()}
        self._lock = None

    def enable_thread_safety(self):
        """Install (idempotently) a lock guarding every mutation.

        Off by default so single-threaded measurements pay nothing;
        the telemetry exporter calls this on whatever registry is
        current at each flush.  Once enabled, it stays enabled for the
        registry's lifetime.
        """
        if self._lock is None:
            self._lock = threading.Lock()
        return self

    @property
    def thread_safe(self):
        """Whether :meth:`enable_thread_safety` has been called."""
        return self._lock is not None

    def _spec(self, name, kind):
        spec = CATALOGUE.get(name)
        if spec is None:
            raise KeyError("metric %r is not in the catalogue; add it to "
                           "repro/obs/catalogue.py and docs/observability.md"
                           % name)
        if spec.kind != kind:
            raise ValueError("metric %r is a %s, not a %s"
                             % (name, spec.kind, kind))
        return spec

    def incr(self, name, amount=1):
        """Add ``amount`` to counter ``name``."""
        self._spec(name, COUNTER)
        lock = self._lock
        if lock is None:
            self._values[name] += amount
        else:
            with lock:
                self._values[name] += amount

    def gauge(self, name, value):
        """Set gauge ``name`` to ``value``."""
        self._spec(name, GAUGE)
        self._values[name] = value

    def gauge_max(self, name, value):
        """Raise gauge ``name`` to ``value`` if larger (high-water mark)."""
        self._spec(name, GAUGE)
        lock = self._lock
        if lock is None:
            if value > self._values[name]:
                self._values[name] = value
        else:
            with lock:
                if value > self._values[name]:
                    self._values[name] = value

    def add_seconds(self, name, seconds):
        """Accumulate ``seconds`` of wall time onto timer ``name``.

        For free-standing timers (``batch.worker_seconds`` and friends)
        whose intervals are measured outside a ``phase()`` block -- e.g.
        in a worker process whose registry is not this one.
        """
        self._spec(name, TIMER)
        lock = self._lock
        if lock is None:
            self._values[name] += seconds
        else:
            with lock:
                self._values[name] += seconds

    def observe(self, name, value):
        """Count one observation into histogram ``name``'s bucket."""
        self._spec(name, HISTOGRAM)
        bucket = histogram_bucket(value)
        lock = self._lock
        if lock is None:
            buckets = self._values[name]
            buckets[bucket] = buckets.get(bucket, 0) + 1
        else:
            with lock:
                buckets = self._values[name]
                buckets[bucket] = buckets.get(bucket, 0) + 1

    def merge(self, snapshot):
        """Fold another registry's :meth:`snapshot` into this one.

        The batch engine's registry-merge: counters, timers, and
        histogram buckets add (they are extensive across processes),
        gauges keep the maximum (a high-water mark; "most recent" has
        no meaning across concurrent workers).  Every key must be
        catalogued -- merging an uncatalogued snapshot raises
        ``KeyError``, keeping the documented contract intact across
        process boundaries.  Histogram bucket keys are accepted as ints
        or strings (a snapshot that round-tripped through JSON keeps
        its integer exponents as string keys).
        """
        lock = self._lock
        if lock is None:
            self._merge(snapshot)
        else:
            with lock:
                self._merge(snapshot)
        return self

    def _merge(self, snapshot):
        values = self._values
        for name, value in snapshot.items():
            spec = CATALOGUE.get(name)
            if spec is None:
                raise KeyError("snapshot key %r is not in the catalogue; "
                               "refusing to merge undocumented metrics"
                               % name)
            if spec.kind == HISTOGRAM:
                buckets = values[name]
                for bucket, count in value.items():
                    bucket = int(bucket)
                    buckets[bucket] = buckets.get(bucket, 0) + count
            elif spec.kind in MERGE_BY_MAX:
                if value > values[name]:
                    values[name] = value
            else:
                values[name] += value

    def phase(self, name):
        """Context manager accumulating ``phase.<name>.seconds``/``.calls``."""
        seconds_key = "phase.%s.seconds" % name
        calls_key = "phase.%s.calls" % name
        self._spec(seconds_key, TIMER)
        return _Phase(self, seconds_key, calls_key)

    def snapshot(self):
        """All metrics as a plain dict, in catalogue order.

        Histogram values are copied, so a snapshot stays frozen while
        the registry keeps observing.  With thread safety enabled the
        copy is taken under the registry lock, so a concurrent flusher
        never sees a torn multi-key update.
        """
        lock = self._lock
        if lock is None:
            values = self._values
        else:
            with lock:
                return {name: dict(value) if isinstance(value, dict)
                        else value for name, value in self._values.items()}
        return {name: dict(value) if isinstance(value, dict) else value
                for name, value in values.items()}
