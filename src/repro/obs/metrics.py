"""Counters, gauges, and phase timers over the catalogued names.

Two implementations share one interface:

* :class:`Metrics` records for real and *rejects names missing from the
  catalogue*, so instrumentation cannot drift away from the documented
  contract;
* :class:`NullMetrics` is the no-op sink installed by default, making
  instrumented code essentially free when observability is off.

Instrumented modules fetch the process-wide instance via
:func:`repro.obs.get_metrics` at each use site (never caching it across
calls), so enabling metrics mid-process takes effect immediately.
"""

from __future__ import annotations

import math
import time

from .catalogue import (CATALOGUE, COUNTER, GAUGE, HISTOGRAM,
                        HISTOGRAM_MAX_EXPONENT, TIMER)

#: How worker snapshots fold into a parent registry, by metric kind:
#: counters, timers, and histogram buckets are extensive (they add);
#: gauges are point-in-time observations with no cross-process "most
#: recent", so merging keeps the high-water mark.
MERGE_BY_MAX = frozenset((GAUGE,))


def histogram_bucket(value):
    """The fixed power-of-two bucket exponent for one observation.

    Bucket ``e`` holds values with ``2**(e-1) <= value < 2**e``, clamped
    to ±``HISTOGRAM_MAX_EXPONENT``; non-positive observations land in
    the lowest bucket.
    """
    if value <= 0:
        return -HISTOGRAM_MAX_EXPONENT
    exponent = math.frexp(value)[1]
    if exponent < -HISTOGRAM_MAX_EXPONENT:
        return -HISTOGRAM_MAX_EXPONENT
    if exponent > HISTOGRAM_MAX_EXPONENT:
        return HISTOGRAM_MAX_EXPONENT
    return exponent


class _NullPhase:
    """Context manager that does nothing (shared singleton)."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_PHASE = _NullPhase()


class NullMetrics:
    """No-op sink with the :class:`Metrics` interface.

    Accepts any name without validation; every operation is a constant
    handful of bytecodes, so hot paths can call unconditionally.
    """

    __slots__ = ()
    enabled = False

    def incr(self, name, amount=1):
        pass

    def gauge(self, name, value):
        pass

    def gauge_max(self, name, value):
        pass

    def add_seconds(self, name, seconds):
        pass

    def observe(self, name, value):
        pass

    def merge(self, snapshot):
        pass

    def phase(self, name):
        return _NULL_PHASE

    def snapshot(self):
        """An empty dict: a disabled registry observes nothing."""
        return {}


class _Phase:
    """Times one ``with metrics.phase(name):`` block."""

    __slots__ = ("_values", "_seconds_key", "_calls_key", "_t0")

    def __init__(self, values, seconds_key, calls_key):
        self._values = values
        self._seconds_key = seconds_key
        self._calls_key = calls_key

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._values[self._seconds_key] += time.perf_counter() - self._t0
        self._values[self._calls_key] += 1
        return False


class Metrics:
    """A live metrics registry pre-populated from the catalogue.

    Every catalogued name is present (at zero) from construction, so a
    snapshot's key set is always exactly the catalogue -- the property
    the docs-drift test and the ``--metrics=json`` contract rely on.
    Values accumulate for the life of the instance; create a fresh one
    (:func:`repro.obs.enable` does) to start a new measurement window.
    """

    __slots__ = ("_values",)
    enabled = True

    def __init__(self):
        self._values = {name: spec.zero for name, spec in CATALOGUE.items()}

    def _spec(self, name, kind):
        spec = CATALOGUE.get(name)
        if spec is None:
            raise KeyError("metric %r is not in the catalogue; add it to "
                           "repro/obs/catalogue.py and docs/observability.md"
                           % name)
        if spec.kind != kind:
            raise ValueError("metric %r is a %s, not a %s"
                             % (name, spec.kind, kind))
        return spec

    def incr(self, name, amount=1):
        """Add ``amount`` to counter ``name``."""
        self._spec(name, COUNTER)
        self._values[name] += amount

    def gauge(self, name, value):
        """Set gauge ``name`` to ``value``."""
        self._spec(name, GAUGE)
        self._values[name] = value

    def gauge_max(self, name, value):
        """Raise gauge ``name`` to ``value`` if larger (high-water mark)."""
        self._spec(name, GAUGE)
        if value > self._values[name]:
            self._values[name] = value

    def add_seconds(self, name, seconds):
        """Accumulate ``seconds`` of wall time onto timer ``name``.

        For free-standing timers (``batch.worker_seconds`` and friends)
        whose intervals are measured outside a ``phase()`` block -- e.g.
        in a worker process whose registry is not this one.
        """
        self._spec(name, TIMER)
        self._values[name] += seconds

    def observe(self, name, value):
        """Count one observation into histogram ``name``'s bucket."""
        self._spec(name, HISTOGRAM)
        bucket = histogram_bucket(value)
        buckets = self._values[name]
        buckets[bucket] = buckets.get(bucket, 0) + 1

    def merge(self, snapshot):
        """Fold another registry's :meth:`snapshot` into this one.

        The batch engine's registry-merge: counters, timers, and
        histogram buckets add (they are extensive across processes),
        gauges keep the maximum (a high-water mark; "most recent" has
        no meaning across concurrent workers).  Every key must be
        catalogued -- merging an uncatalogued snapshot raises
        ``KeyError``, keeping the documented contract intact across
        process boundaries.  Histogram bucket keys are accepted as ints
        or strings (a snapshot that round-tripped through JSON keeps
        its integer exponents as string keys).
        """
        values = self._values
        for name, value in snapshot.items():
            spec = CATALOGUE.get(name)
            if spec is None:
                raise KeyError("snapshot key %r is not in the catalogue; "
                               "refusing to merge undocumented metrics"
                               % name)
            if spec.kind == HISTOGRAM:
                buckets = values[name]
                for bucket, count in value.items():
                    bucket = int(bucket)
                    buckets[bucket] = buckets.get(bucket, 0) + count
            elif spec.kind in MERGE_BY_MAX:
                if value > values[name]:
                    values[name] = value
            else:
                values[name] += value
        return self

    def phase(self, name):
        """Context manager accumulating ``phase.<name>.seconds``/``.calls``."""
        seconds_key = "phase.%s.seconds" % name
        calls_key = "phase.%s.calls" % name
        self._spec(seconds_key, TIMER)
        return _Phase(self._values, seconds_key, calls_key)

    def snapshot(self):
        """All metrics as a plain dict, in catalogue order.

        Histogram values are copied, so a snapshot stays frozen while
        the registry keeps observing.
        """
        return {name: dict(value) if isinstance(value, dict) else value
                for name, value in self._values.items()}
