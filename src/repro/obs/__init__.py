"""Observability for the trace -> collapse -> max-flow pipeline.

The paper's scalability argument (Section 5.3: traces of millions of
operations collapsing to thousands of nodes) is an empirical claim, and
every optimization of the pipeline needs to know where the time and the
graph volume actually go.  This package is the measurement substrate:
a zero-dependency registry of counters, gauges, timers, and histograms
(:mod:`repro.obs.metrics`) plus a hierarchical span tracer
(:mod:`repro.obs.trace`), both behind *documented name contracts*
(``docs/observability.md``; see :mod:`repro.obs.catalogue` and
:data:`repro.obs.trace.SPAN_CATALOGUE`).

Usage::

    from repro import obs

    obs.enable()                        # install a live registry
    report = measure_graph(graph)       # pipeline records as it runs
    print(obs.to_table(obs.get_metrics().snapshot()))
    obs.disable()                       # back to the no-op sink

By default the process-wide instance is :data:`NULL_METRICS`, a no-op
sink, so instrumented code pays only an attribute lookup and an empty
method call when observability is off (measured at well under 2% on the
Figure 3 compressor benchmark; see ``docs/observability.md``).

The registry is process-wide and not thread-safe; enable it around one
measurement at a time.
"""

from __future__ import annotations

from .catalogue import CATALOGUE, PHASES, MetricSpec, snapshot_keys
from .metrics import Metrics, NullMetrics, histogram_bucket
from .render import to_json, to_table
from .trace import (SPAN_CATALOGUE, NullTracer, Span, SpanSpec, Tracer,
                    chrome_trace_events, span_names, write_chrome_trace,
                    write_jsonl)

#: The shared no-op sink (the default process-wide instance).
NULL_METRICS = NullMetrics()

_default = NULL_METRICS

#: The shared no-op tracer (the default process-wide instance).
NULL_TRACER = NullTracer()

_tracer = NULL_TRACER


def get_metrics():
    """The process-wide metrics instance (live or the null sink)."""
    return _default


def set_metrics(metrics):
    """Install ``metrics`` as the process-wide instance; returns the old one."""
    global _default
    previous = _default
    _default = metrics
    return previous


def enable():
    """Install (and return) a fresh live :class:`Metrics` registry."""
    metrics = Metrics()
    set_metrics(metrics)
    return metrics


def disable():
    """Restore the no-op sink; returns the previously installed instance."""
    return set_metrics(NULL_METRICS)


def enabled():
    """Whether the process-wide instance records anything."""
    return _default.enabled


def merge_snapshot(snapshot):
    """Fold a worker's snapshot into the process-wide registry.

    No-op when observability is disabled; see
    :meth:`~repro.obs.metrics.Metrics.merge` for the fold semantics
    (counters/timers add, gauges keep the maximum, histograms add
    bucket-wise).  Returns the process-wide instance.
    """
    _default.merge(snapshot)
    return _default


def get_tracer():
    """The process-wide tracer instance (live or the null sink)."""
    return _tracer


def set_tracer(tracer):
    """Install ``tracer`` as the process-wide instance; returns the old one."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


def enable_tracing():
    """Install (and return) a fresh live :class:`Tracer`."""
    tracer = Tracer()
    set_tracer(tracer)
    return tracer


def disable_tracing():
    """Restore the no-op tracer; returns the previously installed one."""
    return set_tracer(NULL_TRACER)


def tracing_enabled():
    """Whether the process-wide tracer records anything."""
    return _tracer.enabled


__all__ = [
    "CATALOGUE", "PHASES", "MetricSpec", "snapshot_keys",
    "Metrics", "NullMetrics", "NULL_METRICS", "histogram_bucket",
    "get_metrics", "set_metrics", "enable", "disable", "enabled",
    "merge_snapshot",
    "to_json", "to_table",
    "SPAN_CATALOGUE", "SpanSpec", "Span", "Tracer", "NullTracer",
    "NULL_TRACER", "span_names",
    "get_tracer", "set_tracer", "enable_tracing", "disable_tracing",
    "tracing_enabled",
    "write_jsonl", "write_chrome_trace", "chrome_trace_events",
]
