"""Observability for the trace -> collapse -> max-flow pipeline.

The paper's scalability argument (Section 5.3: traces of millions of
operations collapsing to thousands of nodes) is an empirical claim, and
every optimization of the pipeline needs to know where the time and the
graph volume actually go.  This package is the measurement substrate: a
zero-dependency registry of counters, gauges, and phase timers whose
*names are a documented contract* (``docs/observability.md``; see
:mod:`repro.obs.catalogue`).

Usage::

    from repro import obs

    obs.enable()                        # install a live registry
    report = measure_graph(graph)       # pipeline records as it runs
    print(obs.to_table(obs.get_metrics().snapshot()))
    obs.disable()                       # back to the no-op sink

By default the process-wide instance is :data:`NULL_METRICS`, a no-op
sink, so instrumented code pays only an attribute lookup and an empty
method call when observability is off (measured at well under 2% on the
Figure 3 compressor benchmark; see ``docs/observability.md``).

The registry is process-wide and not thread-safe; enable it around one
measurement at a time.
"""

from __future__ import annotations

from .catalogue import CATALOGUE, PHASES, MetricSpec, snapshot_keys
from .metrics import Metrics, NullMetrics
from .render import to_json, to_table

#: The shared no-op sink (the default process-wide instance).
NULL_METRICS = NullMetrics()

_default = NULL_METRICS


def get_metrics():
    """The process-wide metrics instance (live or the null sink)."""
    return _default


def set_metrics(metrics):
    """Install ``metrics`` as the process-wide instance; returns the old one."""
    global _default
    previous = _default
    _default = metrics
    return previous


def enable():
    """Install (and return) a fresh live :class:`Metrics` registry."""
    metrics = Metrics()
    set_metrics(metrics)
    return metrics


def disable():
    """Restore the no-op sink; returns the previously installed instance."""
    return set_metrics(NULL_METRICS)


def enabled():
    """Whether the process-wide instance records anything."""
    return _default.enabled


def merge_snapshot(snapshot):
    """Fold a worker's snapshot into the process-wide registry.

    No-op when observability is disabled; see
    :meth:`~repro.obs.metrics.Metrics.merge` for the fold semantics
    (counters/timers add, gauges keep the maximum).  Returns the
    process-wide instance.
    """
    _default.merge(snapshot)
    return _default


__all__ = [
    "CATALOGUE", "PHASES", "MetricSpec", "snapshot_keys",
    "Metrics", "NullMetrics", "NULL_METRICS",
    "get_metrics", "set_metrics", "enable", "disable", "enabled",
    "merge_snapshot",
    "to_json", "to_table",
]
