"""Observability for the trace -> collapse -> max-flow pipeline.

The paper's scalability argument (Section 5.3: traces of millions of
operations collapsing to thousands of nodes) is an empirical claim, and
every optimization of the pipeline needs to know where the time and the
graph volume actually go.  This package is the measurement substrate:
a zero-dependency registry of counters, gauges, timers, and histograms
(:mod:`repro.obs.metrics`) plus a hierarchical span tracer
(:mod:`repro.obs.trace`), both behind *documented name contracts*
(``docs/observability.md``; see :mod:`repro.obs.catalogue` and
:data:`repro.obs.trace.SPAN_CATALOGUE`).

Usage::

    from repro import obs

    obs.enable()                        # install a live registry
    report = measure_graph(graph)       # pipeline records as it runs
    print(obs.to_table(obs.get_metrics().snapshot()))
    obs.disable()                       # back to the no-op sink

By default the process-wide instance is :data:`NULL_METRICS`, a no-op
sink, so instrumented code pays only an attribute lookup and an empty
method call when observability is off (measured at well under 2% on the
Figure 3 compressor benchmark; see ``docs/observability.md``).

The registry is process-wide and single-threaded by default; enable it
around one measurement at a time.  Background consumers (the telemetry
exporter's flusher thread) call
:meth:`~repro.obs.metrics.Metrics.enable_thread_safety` on whatever
registry is live, which installs a lock guarding every mutation and
snapshot from then on.

Three further layers ride on the same enable/disable pattern: a
hierarchical span tracer (:mod:`repro.obs.trace`), a structured event
log (:mod:`repro.obs.log`), and a continuous telemetry exporter
(:mod:`repro.obs.export`) that periodically writes registry snapshots,
resource samples (:mod:`repro.obs.resources`), and drained events to a
``telemetry-v1`` directory as JSONL and OpenMetrics text.
"""

from __future__ import annotations

from .catalogue import CATALOGUE, PHASES, MetricSpec, snapshot_keys
from .export import (FORMAT, Ledger, TelemetryExporter, check_dir,
                     lint_openmetrics, parse_openmetrics, read_latest,
                     render_openmetrics)
from .log import (EVENT_CATALOGUE, RESERVED_FIELDS, EventLog, EventSpec,
                  NullEventLog, event_names)
from .metrics import Metrics, NullMetrics, histogram_bucket
from .render import to_json, to_table
from .resources import SAMPLE_FIELDS, live_graph_sizes, sample, track_builder
from .trace import (SPAN_CATALOGUE, NullTracer, Span, SpanSpec, Tracer,
                    chrome_trace_events, span_names, write_chrome_trace,
                    write_jsonl)

#: The shared no-op sink (the default process-wide instance).
NULL_METRICS = NullMetrics()

_default = NULL_METRICS

#: The shared no-op tracer (the default process-wide instance).
NULL_TRACER = NullTracer()

_tracer = NULL_TRACER

#: The shared no-op event log (the default process-wide instance).
NULL_EVENT_LOG = NullEventLog()

_event_log = NULL_EVENT_LOG

_exporter = None


def get_metrics():
    """The process-wide metrics instance (live or the null sink)."""
    return _default


def set_metrics(metrics):
    """Install ``metrics`` as the process-wide instance; returns the old one."""
    global _default
    previous = _default
    _default = metrics
    return previous


def enable():
    """Install (and return) a fresh live :class:`Metrics` registry."""
    metrics = Metrics()
    set_metrics(metrics)
    return metrics


def disable():
    """Restore the no-op sink; returns the previously installed instance."""
    return set_metrics(NULL_METRICS)


def enabled():
    """Whether the process-wide instance records anything."""
    return _default.enabled


def merge_snapshot(snapshot):
    """Fold a worker's snapshot into the process-wide registry.

    No-op when observability is disabled; see
    :meth:`~repro.obs.metrics.Metrics.merge` for the fold semantics
    (counters/timers add, gauges keep the maximum, histograms add
    bucket-wise).  Returns the process-wide instance.
    """
    _default.merge(snapshot)
    return _default


def get_tracer():
    """The process-wide tracer instance (live or the null sink)."""
    return _tracer


def set_tracer(tracer):
    """Install ``tracer`` as the process-wide instance; returns the old one."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


def enable_tracing():
    """Install (and return) a fresh live :class:`Tracer`."""
    tracer = Tracer()
    set_tracer(tracer)
    return tracer


def disable_tracing():
    """Restore the no-op tracer; returns the previously installed one."""
    return set_tracer(NULL_TRACER)


def tracing_enabled():
    """Whether the process-wide tracer records anything."""
    return _tracer.enabled


def get_event_log():
    """The process-wide event log instance (live or the null sink)."""
    return _event_log


def set_event_log(event_log):
    """Install ``event_log`` as the process-wide instance; returns the old one."""
    global _event_log
    previous = _event_log
    _event_log = event_log
    return previous


def enable_events(capacity=4096):
    """Install (and return) a fresh live :class:`EventLog`."""
    event_log = EventLog(capacity=capacity)
    set_event_log(event_log)
    return event_log


def disable_events():
    """Restore the no-op event log; returns the previously installed one."""
    return set_event_log(NULL_EVENT_LOG)


def events_enabled():
    """Whether the process-wide event log records anything."""
    return _event_log.enabled


def get_exporter():
    """The process-wide telemetry exporter, or ``None``."""
    return _exporter


def set_exporter(exporter):
    """Install ``exporter`` (may be ``None``); returns the previous one.

    Unlike the metrics/tracer/event-log accessors there is no null
    object: producers (the batch engine shipping worker resource
    samples home) check for ``None``, since telemetry export is the
    exception, not the default.
    """
    global _exporter
    previous = _exporter
    _exporter = exporter
    return previous


__all__ = [
    "CATALOGUE", "PHASES", "MetricSpec", "snapshot_keys",
    "Metrics", "NullMetrics", "NULL_METRICS", "histogram_bucket",
    "get_metrics", "set_metrics", "enable", "disable", "enabled",
    "merge_snapshot",
    "to_json", "to_table",
    "SPAN_CATALOGUE", "SpanSpec", "Span", "Tracer", "NullTracer",
    "NULL_TRACER", "span_names",
    "get_tracer", "set_tracer", "enable_tracing", "disable_tracing",
    "tracing_enabled",
    "write_jsonl", "write_chrome_trace", "chrome_trace_events",
    "EVENT_CATALOGUE", "RESERVED_FIELDS", "EventSpec", "EventLog",
    "NullEventLog", "NULL_EVENT_LOG", "event_names",
    "get_event_log", "set_event_log", "enable_events", "disable_events",
    "events_enabled",
    "SAMPLE_FIELDS", "sample", "track_builder", "live_graph_sizes",
    "FORMAT", "Ledger", "TelemetryExporter", "render_openmetrics",
    "parse_openmetrics", "lint_openmetrics", "read_latest", "check_dir",
    "get_exporter", "set_exporter",
]
