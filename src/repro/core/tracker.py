"""Trace-to-graph construction (Sections 2 and 4.2).

:class:`TraceBuilder` is the measurement core: frontends (the FlowLang VM
and the Python ``pytrace`` frontend) report execution events to it --
secret inputs, operations, branches, indexed accesses, enclosure-region
entry/exit, outputs -- and it incrementally builds the flow graph whose
maximum s-t flow bounds the information revealed.

Graph shape (one value = one split node, per Figure 1):

* A value with secrecy mask ``m`` becomes a capped node of capacity
  ``popcount(m)``; fully-public results create no node at all (the
  paper's tag 0).
* An operation adds edges from each secret operand's node to the result
  node, each with capacity equal to the operand's secret-bit count.
* Copies reuse the operand's node (no new nodes or edges, Section 2.1).
* A branch on a secret condition adds a ⌈log2(arms)⌉-bit *implicit* edge
  from the condition's node to the innermost enclosure target; an
  indexed access through a secret index contributes ``popcount(index
  mask)`` bits the same way (Section 2.2).
* The default, whole-program enclosure target is a time-ordered chain of
  output events: an implicit flow can escape through any *subsequent*
  public output, and program termination itself is the final observable
  event (which is how the unary-encoding loop of Section 3.2 measures
  n+1 bits).
* When an enclosure region exits having absorbed implicit flows, each of
  its declared output locations receives a fresh all-secret value fed by
  both its previous node and the region node.

Every edge carries an :class:`~repro.graph.flowgraph.EdgeLabel` with the
reporting code location and the current calling-context hash, enabling
the collapsing and multi-run combining of Sections 3.2 and 5.2.

:class:`CollapsingTraceBuilder` is the online-collapse variant: it
performs the Section 5.2 collapse *while tracing*, so the live graph is
coverage-sized throughout instead of runtime-sized until a post-hoc
pass.  Frontends drive both builders through the identical event API.
"""

from __future__ import annotations

from .. import obs
from ..errors import TraceError
from ..obs import resources
from ..graph.collapse import CollapseStats, OnlineCollapser
from ..graph.flowgraph import INF, EdgeLabel, FlowGraph
from ..shadow.bitmask import popcount, width_mask
from ..shadow.fast import resolve_backend
from .locations import ContextHasher, Location

_LOG2_CACHE = {1: 0, 2: 1}

_SOURCE = FlowGraph.SOURCE
_SINK = FlowGraph.SINK


def bits_for_arms(arms):
    """Bits revealed by an ``arms``-way control transfer: ⌈log2(arms)⌉."""
    bits = _LOG2_CACHE.get(arms)
    if bits is None:
        if arms < 1:
            raise ValueError("a control transfer needs at least one arm")
        bits = (arms - 1).bit_length()
        _LOG2_CACHE[arms] = bits
    return bits


class Provenance:
    """A value's graph identity: its secrecy mask and (outer) node id.

    ``node is None`` means the value is untracked (tag 0 in the paper);
    its mask is then necessarily zero.
    """

    __slots__ = ("mask", "node", "_bits")

    def __init__(self, mask, node):
        self.mask = mask
        self.node = node
        self._bits = None

    @property
    def is_public(self):
        return self.node is None

    @property
    def bits(self):
        """Secret-bit capacity of this value (cached; masks are immutable)."""
        bits = self._bits
        if bits is None:
            bits = self._bits = popcount(self.mask)
        return bits

    def __repr__(self):
        if self.node is None:
            return "Provenance(public)"
        return "Provenance(mask=%#x, node=%d)" % (self.mask, self.node)


#: The shared provenance of all untracked values.
PUBLIC = Provenance(0, None)


class RegionExit:
    """Token returned by :meth:`TraceBuilder.leave_region`.

    ``node`` is the region's collector node, or ``None`` when no implicit
    flow occurred inside the region (in which case region outputs keep
    their old provenance unchanged).
    """

    __slots__ = ("node", "location", "implicit_bits")

    def __init__(self, node, location, implicit_bits):
        self.node = node
        self.location = location
        self.implicit_bits = implicit_bits

    @property
    def had_implicit_flows(self):
        return self.node is not None


class _Region:
    __slots__ = ("node", "location", "bits")

    def __init__(self, location):
        self.node = None  # created lazily on the first implicit flow
        self.location = location
        self.bits = 0  # implicit capacity absorbed by this instance


class TraceBuilder:
    """Builds a flow graph from a stream of execution events.

    All graph mutations go through the small ``_g_*`` backend hooks so
    that :class:`CollapsingTraceBuilder` can swap the runtime-sized
    per-value graph for an incrementally collapsed one without touching
    the event semantics.

    Args:
        context_sensitive: attach the calling-context hash to edge labels
            (can be stripped later by context-insensitive collapsing).
    """

    def __init__(self, context_sensitive=True):
        self.context = ContextHasher()
        self.context_sensitive = context_sensitive
        self._regions = []
        self._finished = False
        self._output_events = 0
        self._implicit_events = 0
        self._operation_events = 0
        self._secret_input_bits = 0
        self._tainted_output_bits = 0
        #: category -> list of input-edge refs (Section 10.1); for the
        #: default builder these are edge indices into ``graph.edges``.
        self.category_edges = {}
        #: ctx -> {(kind, location) -> interned EdgeLabel}.  The table
        #: of the *current* context is kept in ``_active_labels`` (and
        #: swapped on push/pop), so the hot ``_label`` lookup hashes a
        #: 2-tuple instead of rebuilding a 3-tuple key per event.
        self._label_tables = {}
        self._active_ctx = self.context.current if context_sensitive else None
        self._active_labels = self._label_tables.setdefault(
            self._active_ctx, {})
        self._trace_published = {}  # stat key -> amount already published
        self._setup()
        self._pending = self._g_node()  # tail of the output chain

    # ------------------------------------------------------------------
    # Graph backend hooks (overridden by CollapsingTraceBuilder)

    def _setup(self):
        self.graph = FlowGraph()

    def _g_node(self):
        """Allocate a plain node."""
        return self.graph.add_node()

    def _g_value(self, capacity, label):
        """Allocate a split (inner, outer) value-node pair."""
        return self.graph.add_capped_node(capacity, label)

    def _g_edge(self, tail, head, capacity, label):
        """Add an edge; returns an opaque edge ref (here: its index)."""
        return self.graph.add_edge(tail, head, capacity, label)

    def _g_head(self, tail, capacity, label):
        """Allocate a node fed by an edge from ``tail``; returns it."""
        head = self.graph.add_node()
        self.graph.add_edge(tail, head, capacity, label)
        return head

    def _g_size(self):
        return self.graph.num_nodes, self.graph.num_edges

    def _result(self):
        """The finished trace result handed back by :meth:`finish`."""
        return self.graph

    # ------------------------------------------------------------------
    # Labels and bookkeeping

    def _label(self, location, kind):
        table = self._active_labels
        key = (kind, location)
        label = table.get(key)
        if label is None:
            label = EdgeLabel(location, self._active_ctx, kind)
            table[key] = label
        return label

    def _activate_context(self, ctx):
        self._active_ctx = ctx
        table = self._label_tables.get(ctx)
        if table is None:
            table = self._label_tables[ctx] = {}
        self._active_labels = table

    def _check_live(self):
        if self._finished:
            raise TraceError("trace already finished")

    def push_call(self, callsite_id):
        """Record entry to a callee (updates the calling-context hash)."""
        self.context.push_call(callsite_id)
        if self.context_sensitive:
            self._activate_context(self.context.current)

    def pop_call(self):
        """Record return to the caller."""
        self.context.pop_call()
        if self.context_sensitive:
            self._activate_context(self.context.current)

    # ------------------------------------------------------------------
    # Values

    def public(self):
        """Provenance for an untracked value."""
        return PUBLIC

    def secret_value(self, location, width, mask=None, category=None):
        """Introduce a secret input value of ``width`` bits.

        ``mask`` defaults to all-secret; the source feeds the new node
        with the mask's full bit count.  ``category`` optionally tags
        the input's secret class for per-category analysis (§10.1, see
        :mod:`repro.core.multisecret`).
        """
        self._check_live()
        if mask is None:
            mask = width_mask(width)
        if mask == 0:
            return PUBLIC
        bits = popcount(mask)
        self._secret_input_bits += bits
        inner, outer = self._g_value(bits, self._label(location, "value"))
        edge_ref = self._g_edge(_SOURCE, inner, bits,
                                self._label(location, "input"))
        if category is not None:
            self.category_edges.setdefault(category, []).append(edge_ref)
        return Provenance(mask, outer)

    def secret_values(self, location, width, count, mask=None,
                      category=None):
        """Introduce ``count`` identically-shaped secret inputs at once.

        Bit-identical to ``count`` calls of :meth:`secret_value` with
        the same arguments (this reference implementation *is* that
        loop); returns the list of ``count`` provenances.  The bulk
        entry point exists so fast-backend frontends can hand over whole
        buffers in one call -- :class:`CollapsingTraceBuilder` overrides
        it with an O(1)-per-batch arithmetic update.
        """
        return [self.secret_value(location, width, mask=mask,
                                  category=category)
                for _ in range(count)]

    def operation(self, location, result_mask, operands):
        """Record a basic operation producing a value with ``result_mask``.

        ``operands`` is an iterable of :class:`Provenance`.  Returns the
        result's provenance; public results (mask 0) create no node.
        """
        self._check_live()
        self._operation_events += 1
        if result_mask == 0:
            return PUBLIC
        bits = popcount(result_mask)
        inner, outer = self._g_value(bits, self._label(location, "value"))
        seen_input = False
        for op in operands:
            if op.node is not None and op.mask:
                self._g_edge(op.node, inner, popcount(op.mask),
                             self._label(location, "data"))
                seen_input = True
        if not seen_input:
            # A secret result must have a secret ancestor; frontends only
            # report non-zero result masks when some operand was secret,
            # so this indicates a transfer-function/frontend mismatch.
            raise TraceError(
                "operation at %s produced secret mask %#x from public operands"
                % (location, result_mask))
        return Provenance(result_mask, outer)

    def copy(self, provenance):
        """Copies create no nodes or edges (Section 2.1)."""
        return provenance

    def declassify(self, provenance):
        """Deliberately mark a value as public (Section 8.1's GUI carve-out)."""
        return PUBLIC

    # ------------------------------------------------------------------
    # Implicit flows and enclosure regions

    def implicit_flow(self, location, provenance, bits):
        """An implicit flow of up to ``bits`` bits from ``provenance``.

        No-op for public values or zero capacities.
        """
        self._check_live()
        if provenance.node is None or bits == 0 or provenance.mask == 0:
            return
        self._implicit_events += 1
        label = self._label(location, "implicit")
        if self._regions:
            region = self._regions[-1]
            region.bits += bits
            if region.node is None:
                region.node = self._g_head(provenance.node, bits, label)
                return
            target = region.node
        else:
            target = self._pending
        self._g_edge(provenance.node, target, bits, label)

    def branch(self, location, condition, arms=2):
        """A control-flow branch on ``condition`` with ``arms`` targets."""
        self.implicit_flow(location, condition, bits_for_arms(arms))

    def indexed(self, location, index):
        """An indirect load/store/jump through ``index``.

        Capacity is the number of secret bits in the index (Section 2.2).
        """
        self.implicit_flow(location, index, index.bits)

    def enter_region(self, location):
        """Enter an enclosure region (ENTER_ENCLOSE)."""
        self._check_live()
        self._regions.append(_Region(location))

    def leave_region(self, location):
        """Leave the innermost region; returns a :class:`RegionExit`.

        The caller is responsible for routing every *declared output* of
        the region through :meth:`region_output` with the returned token.
        """
        self._check_live()
        if not self._regions:
            raise TraceError("leave_region at %s without a matching enter"
                             % (location,))
        region = self._regions.pop()
        return RegionExit(region.node, location, region.bits)

    def region_output(self, location, region_exit, old_provenance, width):
        """Produce the post-region provenance of one declared output.

        If the region saw no implicit flow the old provenance is returned
        unchanged.  Otherwise the location's value becomes all-secret at
        ``width`` bits, fed by the region node (capacity ``width``) and
        by its previous node (its previous capacity).
        """
        self._check_live()
        if region_exit.node is None:
            return old_provenance
        mask = width_mask(width)
        inner, outer = self._g_value(width, self._label(location, "value"))
        self._g_edge(region_exit.node, inner, width,
                     self._label(location, "region"))
        if old_provenance.node is not None and old_provenance.mask:
            self._g_edge(old_provenance.node, inner,
                         popcount(old_provenance.mask),
                         self._label(location, "data"))
        return Provenance(mask, outer)

    @property
    def region_depth(self):
        """Number of currently active enclosure regions."""
        return len(self._regions)

    # ------------------------------------------------------------------
    # Outputs and termination

    def output(self, location, provenances):
        """A public output event carrying the given values.

        Creates the next link of the output chain; earlier implicit flows
        (attached to the previous pending node) can escape through it.
        """
        self._check_live()
        self._output_events += 1
        chain_label = self._label(location, "chain")
        event = self._g_head(self._pending, INF, chain_label)
        for prov in provenances:
            if prov.node is not None and prov.mask:
                bits = popcount(prov.mask)
                self._tainted_output_bits += bits
                self._g_edge(prov.node, event, bits,
                             self._label(location, "io"))
        self._g_edge(event, _SINK, INF, self._label(location, "output"))
        self._pending = self._g_head(self._pending, INF, chain_label)

    def finish(self, exit_observable=True):
        """End the trace; returns the completed :class:`FlowGraph`.

        With ``exit_observable`` (the default), program termination is a
        final output event, so implicit flows after the last explicit
        output still escape -- the choice that makes a loop printing n
        items reveal n+1 bits under a per-iteration cut (Section 3.2).
        """
        self._check_live()
        if self._regions:
            raise TraceError("trace finished with %d open enclosure regions"
                             % len(self._regions))
        if exit_observable:
            self._g_edge(self._pending, _SINK, INF,
                         self._label(Location("<program>", "exit"),
                                     "output"))
        self._finished = True
        metrics = obs.get_metrics()
        if metrics.enabled:
            self.publish_trace_counters(metrics)
        return self._result()

    # ------------------------------------------------------------------
    # Statistics

    #: stat keys published as catalogued ``trace.*`` counters at finish().
    _TRACE_COUNTERS = (
        ("operations", "trace.operations"),
        ("implicit_flows", "trace.implicit_flows"),
        ("outputs", "trace.outputs"),
        ("secret_input_bits", "trace.secret_input_bits"),
        ("tainted_output_bits", "trace.tainted_output_bits"),
    )

    def publish_trace_counters(self, metrics):
        """Publish the event counters as ``trace.*`` metric deltas.

        Only the growth since the previous publish is added, so the call
        is idempotent for a quiescent builder: downstream code can take
        any number of report snapshots of one builder without
        double-counting (the republish-per-measurement wart documented
        in earlier versions of ``docs/observability.md``).
        """
        stats = self.stats
        ledger = self._trace_published
        for stat_key, metric_name in self._TRACE_COUNTERS:
            amount = stats.get(stat_key, 0) - ledger.get(stat_key, 0)
            if amount:
                metrics.incr(metric_name, amount)
                ledger[stat_key] = stats[stat_key]

    @property
    def stats(self):
        """Event counts: dict with operations/implicit/outputs/input bits."""
        nodes, edges = self._g_size()
        return {
            "operations": self._operation_events,
            "implicit_flows": self._implicit_events,
            "outputs": self._output_events,
            "secret_input_bits": self._secret_input_bits,
            "tainted_output_bits": self._tainted_output_bits,
            "graph_nodes": nodes,
            "graph_edges": edges,
        }


class _OpSite:
    """Fast-backend cache entry for one operation site.

    Holds the site's interned labels, its collapsed value pair, and the
    two buckets repeats accumulate into.
    """

    __slots__ = ("value_label", "data_label", "pair", "pair_edge",
                 "data_edge", "merged")

    def __init__(self, value_label, data_label):
        self.value_label = value_label
        self.data_label = data_label
        self.pair = None
        self.pair_edge = None
        self.data_edge = None
        #: operand node ids already folded into the data bucket's tail
        #: class (classes never split, so membership is permanent)
        self.merged = set()


class CollapsingTraceBuilder(TraceBuilder):
    """A trace builder that collapses by code location *while tracing*.

    Section 5.2's post-hoc collapse shrinks the graph from runtime-sized
    to coverage-sized only after the whole per-value graph has been
    materialized, so peak memory and a large share of wall time still
    scale with trace length.  This builder never materializes that
    intermediate graph: nodes and edges are merged by
    :class:`~repro.graph.flowgraph.EdgeLabel` key as events arrive (an
    already-seen label adds its capacity to the existing collapsed edge,
    saturating at INF), through an incremental union-find that keeps
    :attr:`Provenance.node` ids stable for live values.

    :meth:`finish` returns the collapsed :class:`FlowGraph`, annotated
    with ``precollapsed`` (the equivalent collapse mode, ``"context"``
    or ``"location"``) and ``collapse_stats`` (a
    :class:`~repro.graph.collapse.CollapseStats` whose *before* numbers
    are the sizes a plain :class:`TraceBuilder` would have built, from
    counters kept during tracing), so
    :func:`~repro.core.measure.measure_graph` skips the post-hoc
    collapse.  The resulting graph is equivalent to post-hoc collapsing
    the plain builder's graph: same partition, same collapsed edge
    capacities, same max-flow bound.

    Not for multi-run combination: :func:`~repro.graph.collapse.combine_runs`
    stays the (only) path for Section 3.2, and remains the reference
    implementation for this builder's equivalence suite.

    Args:
        context_sensitive: merge edges by (kind, location, context hash)
            when true, by (kind, location) when false — the latter is
            the smaller, coverage-sized graph.
        backend: ``"reference"`` replays every event through the
            generic bucket machinery; ``"fast"`` adds per-site caches
            that turn exact event repeats (the common case in loops)
            into capacity arithmetic, skipping label interning and
            union-find work that is provably a no-op.  ``None``/
            ``"auto"`` consult ``REPRO_BACKEND`` and auto-detection.
            Both backends are bit-identical (see ``docs/backends.md``
            and the equivalence suite).
    """

    def __init__(self, context_sensitive=True, backend=None):
        # The native backend's tracker-side behaviour IS the fast
        # backend: its compiled kernels live in the frontends and the
        # solver, while the repeat-event caches here are shared.
        self._fast = resolve_backend(backend) in ("fast", "native")
        #: (location, tail node, target node, ctx) -> implicit bucket
        self._implicit_cache = {}
        #: (location, ctx) -> _OpSite
        self._op_cache = {}
        super().__init__(context_sensitive=context_sensitive)
        if self._fast:
            # Bound as instance attributes so the per-event dispatch is
            # a plain attribute load; the reference backend keeps the
            # unmodified TraceBuilder methods.
            self.implicit_flow = self._implicit_flow_fast
            self.operation = self._operation_fast

    def _setup(self):
        self._collapser = OnlineCollapser(
            context_sensitive=self.context_sensitive)
        # Sizes a plain TraceBuilder would have reached (source + sink
        # pre-allocated), kept for CollapseStats' "before" numbers.
        self._virtual_nodes = 2
        self._virtual_edges = 0
        # Weakly registered so the telemetry resource sampler can read
        # live graph sizes mid-trace (resource.graph_*_live gauges).
        resources.track_builder(self)

    @property
    def collapse_mode(self):
        """The post-hoc collapse mode this builder is equivalent to."""
        return "context" if self.context_sensitive else "location"

    # -- backend hooks ------------------------------------------------

    def _g_node(self):
        self._virtual_nodes += 1
        return self._collapser.new_node()

    def _g_value(self, capacity, label):
        self._virtual_nodes += 2
        self._virtual_edges += 1
        return self._collapser.capped_pair(capacity, label)

    def _g_edge(self, tail, head, capacity, label):
        self._virtual_edges += 1
        return self._collapser.add_edge(tail, head, capacity, label)

    def _g_head(self, tail, capacity, label):
        self._virtual_nodes += 1
        self._virtual_edges += 1
        return self._collapser.head_for(tail, capacity, label)

    def _g_size(self):
        # Trace-equivalent sizes, so ``stats`` agrees with what a plain
        # TraceBuilder reports for the same events; the collapsed sizes
        # live in ``live_nodes``/``live_edges`` and CollapseStats.
        return self._virtual_nodes, self._virtual_edges

    # -- fast-backend repeat caches ------------------------------------
    #
    # Loops replay the same event sites over and over: the same implicit
    # flow from the same value class into the same pending node, the
    # same operation feeding the same collapsed value pair.  After the
    # first occurrence the generic path's label interning, bucket lookup
    # and union-find merges are all no-ops (classes only ever grow, so
    # once two endpoints coincide they coincide forever); the caches
    # below recognize exact repeats and reduce them to the observable
    # effects -- capacity accumulation and the same counter increments.
    # The equivalence suite checks the result is bit-identical.

    def _implicit_flow_fast(self, location, provenance, bits):
        if self._finished:
            raise TraceError("trace already finished")
        node = provenance.node
        if node is None or bits == 0 or provenance.mask == 0:
            return
        self._implicit_events += 1
        regions = self._regions
        if regions:
            region = regions[-1]
            region.bits += bits
            target = region.node
            if target is None:
                region.node = self._g_head(
                    node, bits, self._label(location, "implicit"))
                return
        else:
            target = self._pending
        key = (location, node, target, self._active_ctx)
        edge = self._implicit_cache.get(key)
        if edge is not None:
            # Same tail class, same target, same label: the reference
            # path's two merges are no-ops, only capacity accumulates
            # (inlined add_capacity, same INF saturation).
            self._virtual_edges += 1
            self._collapser.merge_hits += 1
            cap = edge.capacity
            edge.capacity = INF if cap >= INF or bits >= INF else cap + bits
            return
        self._implicit_cache[key] = self._g_edge(
            node, target, bits, self._label(location, "implicit"))

    def _operation_fast(self, location, result_mask, operands):
        if self._finished:
            raise TraceError("trace already finished")
        self._operation_events += 1
        if result_mask == 0:
            return PUBLIC
        bits = result_mask.bit_count()
        collapser = self._collapser
        site_key = (location, self._active_ctx)
        site = self._op_cache.get(site_key)
        if site is None:
            site = self._op_cache[site_key] = _OpSite(
                self._label(location, "value"),
                self._label(location, "data"))
        self._virtual_nodes += 2
        self._virtual_edges += 1
        pair = site.pair
        if pair is None:
            pair = site.pair = collapser.capped_pair(bits, site.value_label)
            site.pair_edge = collapser.bucket_for(site.value_label)
        else:
            # Exact repeat of the value pair: the reference capped_pair
            # only adds capacity and re-finds the endpoints.
            collapser.merge_hits += 1
            edge = site.pair_edge
            cap = edge.capacity
            edge.capacity = INF if cap >= INF or bits >= INF else cap + bits
        inner, outer = pair
        seen_input = False
        data_edge = site.data_edge
        merged = site.merged
        for op in operands:
            op_node = op.node
            if op_node is not None and op.mask:
                seen_input = True
                self._virtual_edges += 1
                if data_edge is None:
                    data_edge = site.data_edge = collapser.add_edge(
                        op_node, inner, op.mask.bit_count(), site.data_label)
                    merged.add(op_node)
                else:
                    # The head merge is a no-op (the bucket's head is
                    # this site's inner node); the tail merge folds the
                    # operand's class in, exactly as add_edge would --
                    # skipped once this operand id has been folded.
                    collapser.merge_hits += 1
                    op_bits = op.mask.bit_count()
                    cap = data_edge.capacity
                    data_edge.capacity = (INF if cap >= INF or op_bits >= INF
                                          else cap + op_bits)
                    if op_node not in merged:
                        merged.add(op_node)
                        collapser._merge(data_edge.tail, op_node)
        if not seen_input:
            raise TraceError(
                "operation at %s produced secret mask %#x from public operands"
                % (location, result_mask))
        return Provenance(result_mask, outer)

    # -- bulk events ---------------------------------------------------

    def secret_values(self, location, width, count, mask=None,
                      category=None):
        """Bulk :meth:`~TraceBuilder.secret_value`, O(1) per batch.

        The first value goes through the normal path (creating or
        reusing the location's value and input buckets); each of the
        remaining ``count - 1`` events is an exact repeat -- same label
        keys, same endpoints, same capacity -- so the whole tail reduces
        to arithmetic on the two buckets, the virtual-size counters, and
        the category refs.  The equivalence suite asserts the result
        matches the reference loop bucket-for-bucket.
        """
        self._check_live()
        if count <= 0:
            return []
        if mask is None:
            mask = width_mask(width)
        if mask == 0:
            return [PUBLIC] * count
        first = self.secret_value(location, width, mask=mask,
                                  category=category)
        extra = count - 1
        if extra:
            bits = first.bits
            self._collapser.repeat_edge(
                self._label(location, "value"), bits, extra)
            self._collapser.repeat_edge(
                self._label(location, "input"), bits, extra)
            self._secret_input_bits += extra * bits
            self._virtual_nodes += 2 * extra
            self._virtual_edges += 2 * extra
            if category is not None:
                refs = self.category_edges[category]
                refs.extend(refs[-1:] * extra)
        return [first] * count

    # -- results ------------------------------------------------------

    @property
    def graph(self):
        """The current collapsed graph, materialized on demand.

        Rebuilding is O(collapsed size), so mid-trace snapshots (the
        §8.1 real-time mode) stay cheap even on long traces.
        """
        return self._materialize()

    @property
    def live_nodes(self):
        """Current live collapsed node count (the O(coverage) gauge)."""
        return self._collapser.live_nodes

    @property
    def live_edges(self):
        """Current live collapsed edge-bucket count."""
        return self._collapser.live_edges

    @property
    def peak_live_nodes(self):
        """High-water mark of the live collapsed node count."""
        return self._collapser.peak_live_nodes

    def _materialize(self):
        span = obs.get_tracer().span("collapse.online.materialize",
                                     nodes_live=self._collapser.live_nodes,
                                     edges_live=self._collapser.live_edges)
        with span:
            graph = self._collapser.materialize()
            span.set(nodes=graph.num_nodes, edges=graph.num_edges)
        graph.precollapsed = self.collapse_mode
        graph.collapse_stats = CollapseStats(
            self._virtual_nodes, self._virtual_edges,
            graph.num_nodes, graph.num_edges)
        return graph

    def _result(self):
        graph = self._materialize()
        # Collapsed-edge refs -> final edge indices (self-loops dropped).
        self.category_edges = {
            category: [ref.index for ref in refs if ref.index is not None]
            for category, refs in self.category_edges.items()}
        metrics = obs.get_metrics()
        if metrics.enabled:
            collapser = self._collapser
            metrics.incr("collapse.online.builds")
            metrics.incr("collapse.online.merge_hits", collapser.merge_hits)
            metrics.gauge("collapse.online.nodes_live", collapser.live_nodes)
            metrics.gauge("collapse.online.edges_live", collapser.live_edges)
            metrics.gauge_max("collapse.online.nodes_peak",
                              collapser.peak_live_nodes)
        return graph
