"""Trace-to-graph construction (Sections 2 and 4.2).

:class:`TraceBuilder` is the measurement core: frontends (the FlowLang VM
and the Python ``pytrace`` frontend) report execution events to it --
secret inputs, operations, branches, indexed accesses, enclosure-region
entry/exit, outputs -- and it incrementally builds the flow graph whose
maximum s-t flow bounds the information revealed.

Graph shape (one value = one split node, per Figure 1):

* A value with secrecy mask ``m`` becomes a capped node of capacity
  ``popcount(m)``; fully-public results create no node at all (the
  paper's tag 0).
* An operation adds edges from each secret operand's node to the result
  node, each with capacity equal to the operand's secret-bit count.
* Copies reuse the operand's node (no new nodes or edges, Section 2.1).
* A branch on a secret condition adds a ⌈log2(arms)⌉-bit *implicit* edge
  from the condition's node to the innermost enclosure target; an
  indexed access through a secret index contributes ``popcount(index
  mask)`` bits the same way (Section 2.2).
* The default, whole-program enclosure target is a time-ordered chain of
  output events: an implicit flow can escape through any *subsequent*
  public output, and program termination itself is the final observable
  event (which is how the unary-encoding loop of Section 3.2 measures
  n+1 bits).
* When an enclosure region exits having absorbed implicit flows, each of
  its declared output locations receives a fresh all-secret value fed by
  both its previous node and the region node.

Every edge carries an :class:`~repro.graph.flowgraph.EdgeLabel` with the
reporting code location and the current calling-context hash, enabling
the collapsing and multi-run combining of Sections 3.2 and 5.2.
"""

from __future__ import annotations

from ..errors import TraceError
from ..graph.flowgraph import INF, EdgeLabel, FlowGraph
from ..shadow.bitmask import popcount, width_mask
from .locations import ContextHasher, Location

_LOG2_CACHE = {1: 0, 2: 1}


def bits_for_arms(arms):
    """Bits revealed by an ``arms``-way control transfer: ⌈log2(arms)⌉."""
    bits = _LOG2_CACHE.get(arms)
    if bits is None:
        if arms < 1:
            raise ValueError("a control transfer needs at least one arm")
        bits = (arms - 1).bit_length()
        _LOG2_CACHE[arms] = bits
    return bits


class Provenance:
    """A value's graph identity: its secrecy mask and (outer) node id.

    ``node is None`` means the value is untracked (tag 0 in the paper);
    its mask is then necessarily zero.
    """

    __slots__ = ("mask", "node")

    def __init__(self, mask, node):
        self.mask = mask
        self.node = node

    @property
    def is_public(self):
        return self.node is None

    @property
    def bits(self):
        """Secret-bit capacity of this value."""
        return popcount(self.mask)

    def __repr__(self):
        if self.node is None:
            return "Provenance(public)"
        return "Provenance(mask=%#x, node=%d)" % (self.mask, self.node)


#: The shared provenance of all untracked values.
PUBLIC = Provenance(0, None)


class RegionExit:
    """Token returned by :meth:`TraceBuilder.leave_region`.

    ``node`` is the region's collector node, or ``None`` when no implicit
    flow occurred inside the region (in which case region outputs keep
    their old provenance unchanged).
    """

    __slots__ = ("node", "location", "implicit_bits")

    def __init__(self, node, location, implicit_bits):
        self.node = node
        self.location = location
        self.implicit_bits = implicit_bits

    @property
    def had_implicit_flows(self):
        return self.node is not None


class _Region:
    __slots__ = ("node", "location")

    def __init__(self, location):
        self.node = None  # created lazily on the first implicit flow
        self.location = location


class TraceBuilder:
    """Builds a flow graph from a stream of execution events.

    Args:
        context_sensitive: attach the calling-context hash to edge labels
            (can be stripped later by context-insensitive collapsing).
    """

    def __init__(self, context_sensitive=True):
        self.graph = FlowGraph()
        self.context = ContextHasher()
        self.context_sensitive = context_sensitive
        self._regions = []
        self._pending = self.graph.add_node()  # tail of the output chain
        self._finished = False
        self._output_events = 0
        self._implicit_events = 0
        self._operation_events = 0
        self._secret_input_bits = 0
        self._tainted_output_bits = 0
        #: category -> list of input-edge indices (Section 10.1).
        self.category_edges = {}

    # ------------------------------------------------------------------
    # Labels and bookkeeping

    def _label(self, location, kind):
        ctx = self.context.current if self.context_sensitive else None
        return EdgeLabel(location, ctx, kind)

    def _check_live(self):
        if self._finished:
            raise TraceError("trace already finished")

    def push_call(self, callsite_id):
        """Record entry to a callee (updates the calling-context hash)."""
        self.context.push_call(callsite_id)

    def pop_call(self):
        """Record return to the caller."""
        self.context.pop_call()

    # ------------------------------------------------------------------
    # Values

    def public(self):
        """Provenance for an untracked value."""
        return PUBLIC

    def secret_value(self, location, width, mask=None, category=None):
        """Introduce a secret input value of ``width`` bits.

        ``mask`` defaults to all-secret; the source feeds the new node
        with the mask's full bit count.  ``category`` optionally tags
        the input's secret class for per-category analysis (§10.1, see
        :mod:`repro.core.multisecret`).
        """
        self._check_live()
        if mask is None:
            mask = width_mask(width)
        if mask == 0:
            return PUBLIC
        bits = popcount(mask)
        self._secret_input_bits += bits
        inner, outer = self.graph.add_capped_node(
            bits, self._label(location, "value"))
        edge_index = self.graph.add_edge(
            self.graph.source, inner, bits, self._label(location, "input"))
        if category is not None:
            self.category_edges.setdefault(category, []).append(edge_index)
        return Provenance(mask, outer)

    def operation(self, location, result_mask, operands):
        """Record a basic operation producing a value with ``result_mask``.

        ``operands`` is an iterable of :class:`Provenance`.  Returns the
        result's provenance; public results (mask 0) create no node.
        """
        self._check_live()
        self._operation_events += 1
        if result_mask == 0:
            return PUBLIC
        bits = popcount(result_mask)
        inner, outer = self.graph.add_capped_node(
            bits, self._label(location, "value"))
        seen_input = False
        for op in operands:
            if op.node is not None and op.mask:
                self.graph.add_edge(op.node, inner, popcount(op.mask),
                                    self._label(location, "data"))
                seen_input = True
        if not seen_input:
            # A secret result must have a secret ancestor; frontends only
            # report non-zero result masks when some operand was secret,
            # so this indicates a transfer-function/frontend mismatch.
            raise TraceError(
                "operation at %s produced secret mask %#x from public operands"
                % (location, result_mask))
        return Provenance(result_mask, outer)

    def copy(self, provenance):
        """Copies create no nodes or edges (Section 2.1)."""
        return provenance

    def declassify(self, provenance):
        """Deliberately mark a value as public (Section 8.1's GUI carve-out)."""
        return PUBLIC

    # ------------------------------------------------------------------
    # Implicit flows and enclosure regions

    def _implicit_target(self, location):
        if self._regions:
            region = self._regions[-1]
            if region.node is None:
                region.node = self.graph.add_node()
            return region.node
        return self._pending

    def implicit_flow(self, location, provenance, bits):
        """An implicit flow of up to ``bits`` bits from ``provenance``.

        No-op for public values or zero capacities.
        """
        self._check_live()
        if provenance.node is None or bits == 0 or provenance.mask == 0:
            return
        self._implicit_events += 1
        target = self._implicit_target(location)
        self.graph.add_edge(provenance.node, target, bits,
                            self._label(location, "implicit"))

    def branch(self, location, condition, arms=2):
        """A control-flow branch on ``condition`` with ``arms`` targets."""
        self.implicit_flow(location, condition, bits_for_arms(arms))

    def indexed(self, location, index):
        """An indirect load/store/jump through ``index``.

        Capacity is the number of secret bits in the index (Section 2.2).
        """
        self.implicit_flow(location, index, index.bits)

    def enter_region(self, location):
        """Enter an enclosure region (ENTER_ENCLOSE)."""
        self._check_live()
        self._regions.append(_Region(location))

    def leave_region(self, location):
        """Leave the innermost region; returns a :class:`RegionExit`.

        The caller is responsible for routing every *declared output* of
        the region through :meth:`region_output` with the returned token.
        """
        self._check_live()
        if not self._regions:
            raise TraceError("leave_region at %s without a matching enter"
                             % (location,))
        region = self._regions.pop()
        implicit_bits = 0
        if region.node is not None:
            for e in self.graph.in_edges(region.node):
                implicit_bits += e.capacity
        return RegionExit(region.node, location, implicit_bits)

    def region_output(self, location, region_exit, old_provenance, width):
        """Produce the post-region provenance of one declared output.

        If the region saw no implicit flow the old provenance is returned
        unchanged.  Otherwise the location's value becomes all-secret at
        ``width`` bits, fed by the region node (capacity ``width``) and
        by its previous node (its previous capacity).
        """
        self._check_live()
        if region_exit.node is None:
            return old_provenance
        mask = width_mask(width)
        inner, outer = self.graph.add_capped_node(
            width, self._label(location, "value"))
        self.graph.add_edge(region_exit.node, inner, width,
                            self._label(location, "region"))
        if old_provenance.node is not None and old_provenance.mask:
            self.graph.add_edge(old_provenance.node, inner,
                                popcount(old_provenance.mask),
                                self._label(location, "data"))
        return Provenance(mask, outer)

    @property
    def region_depth(self):
        """Number of currently active enclosure regions."""
        return len(self._regions)

    # ------------------------------------------------------------------
    # Outputs and termination

    def output(self, location, provenances):
        """A public output event carrying the given values.

        Creates the next link of the output chain; earlier implicit flows
        (attached to the previous pending node) can escape through it.
        """
        self._check_live()
        self._output_events += 1
        event = self.graph.add_node()
        self.graph.add_edge(self._pending, event, INF,
                            self._label(location, "chain"))
        for prov in provenances:
            if prov.node is not None and prov.mask:
                bits = popcount(prov.mask)
                self._tainted_output_bits += bits
                self.graph.add_edge(prov.node, event, bits,
                                    self._label(location, "io"))
        self.graph.add_edge(event, self.graph.sink, INF,
                            self._label(location, "output"))
        new_pending = self.graph.add_node()
        self.graph.add_edge(self._pending, new_pending, INF,
                            self._label(location, "chain"))
        self._pending = new_pending

    def finish(self, exit_observable=True):
        """End the trace; returns the completed :class:`FlowGraph`.

        With ``exit_observable`` (the default), program termination is a
        final output event, so implicit flows after the last explicit
        output still escape -- the choice that makes a loop printing n
        items reveal n+1 bits under a per-iteration cut (Section 3.2).
        """
        self._check_live()
        if self._regions:
            raise TraceError("trace finished with %d open enclosure regions"
                             % len(self._regions))
        if exit_observable:
            self.graph.add_edge(self._pending, self.graph.sink, INF,
                                self._label(Location("<program>", "exit"),
                                            "output"))
        self._finished = True
        return self.graph

    # ------------------------------------------------------------------
    # Statistics

    @property
    def stats(self):
        """Event counts: dict with operations/implicit/outputs/input bits."""
        return {
            "operations": self._operation_events,
            "implicit_flows": self._implicit_events,
            "outputs": self._output_events,
            "secret_input_bits": self._secret_input_bits,
            "tainted_output_bits": self._tainted_output_bits,
            "graph_nodes": self.graph.num_nodes,
            "graph_edges": self.graph.num_edges,
        }
