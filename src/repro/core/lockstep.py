"""Output-comparison checking (Section 6.3).

The cheapest enforcement mode runs two copies of the program: one on the
real secret input, one on a non-sensitive dummy input of the same size.
Both run (mostly) uninstrumented; only at the policy's cut points does
the secret-holding copy send its concrete values to the shadow copy,
which substitutes them for its own.  If the copies then produce the same
public output, the data forwarded at the cut is the only secret
information the output depends on and the policy holds; divergence means
an unsanctioned flow exists.

The two copies are realized as two sequential executions coordinated by
interceptors: the first run records (cut values, outputs); the second
replays the cut values and its outputs are compared.  This preserves the
technique's semantics (lockstep scheduling only matters for wall-clock
overlap, which a simulation does not need).
"""

from __future__ import annotations

from ..errors import PolicyViolation


class RecordingInterceptor:
    """First copy: runs on the real secret; records cut values + outputs."""

    def __init__(self, policy):
        self.policy = policy
        self.cut_values = []
        self.cut_bits = 0
        self.outputs = []

    def at_cut(self, kind, location):
        """Whether ``(kind, location)`` is a sanctioned cut point."""
        return self.policy.allows_location(kind, location)

    def intercept(self, kind, location, value, width):
        """Called by the frontend for every potential cut event.

        Returns the value the program should continue with (always the
        original, for the recording copy).
        """
        if self.at_cut(kind, location):
            self.cut_values.append((kind, str(location), value))
            self.cut_bits += width
        return value

    def output(self, value):
        self.outputs.append(value)


class ReplayInterceptor:
    """Second copy: runs on the dummy secret; substitutes cut values."""

    def __init__(self, policy, cut_values):
        self.policy = policy
        self._queue = list(cut_values)
        self._pos = 0
        self.outputs = []
        self.desynchronized = False

    def at_cut(self, kind, location):
        return self.policy.allows_location(kind, location)

    def intercept(self, kind, location, value, width):
        if not self.at_cut(kind, location):
            return value
        if self._pos >= len(self._queue):
            self.desynchronized = True
            return value
        rec_kind, rec_loc, rec_value = self._queue[self._pos]
        if rec_kind != kind or rec_loc != str(location):
            # The copies reached cut points in different orders: control
            # flow already diverged, itself a policy violation.
            self.desynchronized = True
            return value
        self._pos += 1
        return rec_value

    def output(self, value):
        self.outputs.append(value)

    @property
    def fully_consumed(self):
        return self._pos == len(self._queue)


class LockstepResult:
    """Outcome of an output-comparison check."""

    def __init__(self, ok, bits_forwarded, real_outputs, shadow_outputs,
                 desynchronized, policy):
        self.ok = ok
        self.bits_forwarded = bits_forwarded
        self.real_outputs = real_outputs
        self.shadow_outputs = shadow_outputs
        self.desynchronized = desynchronized
        self.policy = policy

    def enforce(self):
        """Raise :class:`PolicyViolation` unless the copies agreed."""
        if self.desynchronized:
            raise PolicyViolation(
                "lockstep copies reached cut points inconsistently",
                measured=None, allowed=self.policy.max_bits)
        if not self.ok:
            raise PolicyViolation(
                "public outputs diverged between the secret-holding and "
                "dummy copies: an information flow bypasses the cut",
                measured=None, allowed=self.policy.max_bits)
        self.policy.check(self.bits_forwarded)
        return self

    def __repr__(self):
        return ("LockstepResult(ok=%s, bits_forwarded=%d, outputs=%d/%d)"
                % (self.ok, self.bits_forwarded,
                   len(self.real_outputs), len(self.shadow_outputs)))


def run_lockstep(run, real_secret, dummy_secret, policy):
    """Run the two-copy output-comparison check.

    Args:
        run: callable ``run(secret_input, interceptor)`` executing the
            program; it must route every potential cut event through
            ``interceptor.intercept(kind, location, value, width)`` and
            every public output through ``interceptor.output(value)``.
            Both frontends provide such adapters.
        real_secret: the sensitive input for the first copy.
        dummy_secret: a non-sensitive input of the same size/shape for
            the second copy (it must keep the enclosed code from
            crashing or looping, per Section 6.3).
        policy: a :class:`~repro.core.policy.CutPolicy`.

    Returns:
        a :class:`LockstepResult` (call ``enforce()`` to raise on
        violations).
    """
    recorder = RecordingInterceptor(policy)
    run(real_secret, recorder)
    replayer = ReplayInterceptor(policy, recorder.cut_values)
    run(dummy_secret, replayer)
    desync = replayer.desynchronized or not replayer.fully_consumed
    ok = (not desync) and recorder.outputs == replayer.outputs
    return LockstepResult(ok, recorder.cut_bits, recorder.outputs,
                          replayer.outputs, desync, policy)
