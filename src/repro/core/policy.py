"""Flow policies (Sections 6 and 7).

A quantitative policy is a whole number of bits; a *cut policy* extends
it with the minimum cut discovered during measurement, giving the
deployment checkers of Sections 6.2 and 6.3 the static program points at
which declassification-and-counting is allowed.

Cut policies serialize to plain dicts (JSON-friendly) so a bound found
under testing can be shipped alongside the program and enforced later.
"""

from __future__ import annotations

from ..errors import PolicyViolation
from ..graph.flowgraph import INF


class FlowPolicy:
    """A plain numeric bound: at most ``max_bits`` may be revealed."""

    def __init__(self, max_bits):
        if max_bits < 0:
            raise ValueError("a flow bound cannot be negative")
        self.max_bits = max_bits

    def check(self, measured_bits, location=None):
        """Raise :class:`PolicyViolation` if ``measured_bits`` exceeds the bound."""
        if measured_bits > self.max_bits:
            raise PolicyViolation(
                "flow of %s bits exceeds policy bound of %d bits"
                % (measured_bits, self.max_bits),
                measured=measured_bits, allowed=self.max_bits,
                location=location)
        return measured_bits

    def permits(self, measured_bits):
        """Boolean form of :meth:`check`."""
        return measured_bits <= self.max_bits

    def __repr__(self):
        return "FlowPolicy(max_bits=%d)" % self.max_bits


class CutPolicy(FlowPolicy):
    """A numeric bound plus the minimum cut that witnesses it.

    ``cut_points`` maps ``(kind, location_string)`` pairs -- the static
    identity of a cut edge -- to the bit capacity measured across that
    edge.  The checkers treat these locations as sanctioned
    declassification points; the capacities document the expected flow
    but enforcement is against :attr:`max_bits` (the cut is "an
    untrusted hint to assist enforcement", Section 9.1).
    """

    def __init__(self, max_bits, cut_points):
        super().__init__(max_bits)
        self.cut_points = dict(cut_points)

    #: Edge kinds as seen by the checkers: every edge that represents
    #: "the value produced at this location" (the node-split edge, the
    #: operand data edges, the region/input feeds) normalizes to
    #: ``"value"``; implicit-flow and output-data edges keep their kinds.
    KIND_NORMALIZATION = {
        "value": "value", "data": "value", "region": "value",
        "input": "value", "implicit": "implicit", "io": "io",
        "chain": "chain", "output": "io",
    }

    @classmethod
    def from_report(cls, report, slack_bits=0):
        """Build a policy from a :class:`~repro.core.report.FlowReport`.

        ``slack_bits`` loosens the numeric bound without moving the cut,
        for policies meant to tolerate slightly larger runs.
        """
        points = {}
        for kind, loc, _ctx, cap in report.cut:
            if loc is None:
                continue
            key = (cls.KIND_NORMALIZATION.get(kind, kind), str(loc))
            prev = points.get(key, 0)
            points[key] = INF if (cap >= INF or prev >= INF) else prev + cap
        return cls(report.bits + slack_bits, points)

    def allows_location(self, kind, location):
        """Whether ``(kind, location)`` is a sanctioned cut point."""
        return (kind, str(location)) in self.cut_points

    def to_dict(self):
        """JSON-serializable form."""
        return {
            "max_bits": self.max_bits,
            "cut_points": [
                {"kind": kind, "location": loc,
                 "bits": ("inf" if cap >= INF else cap)}
                for (kind, loc), cap in sorted(self.cut_points.items())
            ],
        }

    @classmethod
    def from_dict(cls, data):
        """Inverse of :meth:`to_dict`."""
        points = {}
        for entry in data["cut_points"]:
            cap = entry["bits"]
            points[(entry["kind"], entry["location"])] = (
                INF if cap == "inf" else int(cap))
        return cls(int(data["max_bits"]), points)

    def __repr__(self):
        return "CutPolicy(max_bits=%d, cut_points=%d)" % (
            self.max_bits, len(self.cut_points))
