"""Code locations and calling-context hashing (Sections 3.2, 4.2).

Edges in the flow graph are labelled with a static code location plus,
optionally, a 64-bit hash of the calling context, "similarly to Bond and
McKinley's probabilistic calling context": the hash is updated on every
call as ``ctx' = 3 * ctx + callsite`` (mod 2**64) and restored on return.
Two dynamic instances of an instruction merge under collapsing iff their
locations (and, context-sensitively, their hashes) agree.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1


class Location:
    """A static program point: a source unit, a position, and a descriptor.

    ``unit`` is typically a file name or function name, ``point`` a line
    number or bytecode address, and ``detail`` an optional disambiguator
    (e.g. ``"then-store"``).  Locations are immutable, hashable, and
    render as ``unit:point`` for reports.
    """

    __slots__ = ("unit", "point", "detail", "_hash")

    def __init__(self, unit, point, detail=None):
        self.unit = unit
        self.point = point
        self.detail = detail
        # Locations key every label table and collapse bucket, so the
        # hash is precomputed once instead of per lookup.
        self._hash = hash((unit, point, detail))

    def __eq__(self, other):
        return (isinstance(other, Location)
                and self.unit == other.unit
                and self.point == other.point
                and self.detail == other.detail)

    def __hash__(self):
        return self._hash

    def __repr__(self):
        base = "%s:%s" % (self.unit, self.point)
        if self.detail:
            base += "(%s)" % self.detail
        return base

    def __str__(self):
        return self.__repr__()


class ContextHasher:
    """Bond–McKinley-style probabilistic calling-context hash.

    Maintains a stack so that :meth:`pop_call` restores the caller's
    context exactly; the 64-bit multiplicative update makes collisions
    between distinct contexts improbable, which is all the collapsing
    machinery needs.
    """

    __slots__ = ("_stack", "_current")

    def __init__(self):
        self._stack = []
        self._current = 0

    @property
    def current(self):
        """The context hash for the currently executing frame."""
        return self._current

    @property
    def depth(self):
        """Current call depth."""
        return len(self._stack)

    def push_call(self, callsite_id):
        """Enter a callee from the call site identified by ``callsite_id``."""
        self._stack.append(self._current)
        self._current = (3 * self._current + hash(callsite_id)) & _MASK64

    def pop_call(self):
        """Return to the caller, restoring its context hash."""
        if not self._stack:
            raise IndexError("pop_call with empty call stack")
        self._current = self._stack.pop()

    def reset(self):
        """Clear to the top-level (empty) context."""
        self._stack.clear()
        self._current = 0
