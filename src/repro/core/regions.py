"""Enclosure-region frontend bookkeeping (Section 2.2).

The graph-side mechanics of enclosure regions live in
:class:`~repro.core.tracker.TraceBuilder`; this module holds the pieces
shared by the frontends: the description of a region's declared outputs
and the dynamic soundness check that every location written inside a
region was declared (the paper's runtime check for annotations).

Frontends identify storage locations by opaque hashable keys (the
FlowLang VM uses ``("local", frame_id, slot)`` / ``("heap", addr)``
tuples; the Python frontend uses user-supplied cell objects).
"""

from __future__ import annotations

from ..errors import RegionError


class DeclaredOutput:
    """One declared output of an enclosure region.

    ``key`` identifies a storage location (or, for arrays, the base); for
    array outputs ``length`` gives the declared element count -- the
    "need length" annotations of Figure 6 -- and ``key`` covers the keys
    ``base .. base+length-1`` as interpreted by the frontend.
    """

    __slots__ = ("key", "width", "length")

    def __init__(self, key, width, length=1):
        self.key = key
        self.width = width
        self.length = length

    def __repr__(self):
        if self.length == 1:
            return "DeclaredOutput(%r, %d bits)" % (self.key, self.width)
        return "DeclaredOutput(%r, %d bits x %d)" % (
            self.key, self.width, self.length)


class RegionWriteChecker:
    """Tracks writes during an enclosure region and validates them.

    The paper notes the tool "can also dynamically check that the
    soundness requirements for an enclosure region hold at runtime".
    Frontends call :meth:`note_write` for every store while a region is
    active; :meth:`validate` raises :class:`RegionError` (strict mode) or
    returns the undeclared keys (audit mode) at region exit.
    """

    def __init__(self, declared, location, strict=True):
        self.location = location
        self.strict = strict
        self._declared = set()
        for out in declared:
            if out.length == 1:
                self._declared.add(out.key)
            else:
                base = out.key
                for i in range(out.length):
                    self._declared.add(self._element_key(base, i))
        self._undeclared = []

    @staticmethod
    def _element_key(base, index):
        """Key of element ``index`` of an array whose base key is ``base``.

        Array bases are ``(kind, addr)`` tuples in both frontends, so the
        element key offsets the address component.
        """
        if isinstance(base, tuple) and len(base) >= 2 and isinstance(base[-1], int):
            return base[:-1] + (base[-1] + index,)
        if isinstance(base, int):
            return base + index
        raise RegionError(
            "array output %r at %s has a base that cannot be indexed"
            % (base, index))

    def covers(self, key):
        """Whether ``key`` is a declared output location."""
        return key in self._declared

    def declare_local(self, key):
        """Exempt a location declared *inside* the region from checking.

        A variable whose scope is contained in the region cannot carry
        information out of it, so writes to it need no annotation.
        """
        self._declared.add(key)

    def note_write(self, key):
        """Record a store to ``key`` while the region is active."""
        if key not in self._declared:
            self._undeclared.append(key)

    def validate(self):
        """Check the region's writes; returns the undeclared keys.

        Raises :class:`RegionError` in strict mode when any write target
        was not declared as an output.
        """
        if self._undeclared and self.strict:
            sample = self._undeclared[:5]
            raise RegionError(
                "region at %s wrote %d undeclared location(s), e.g. %r"
                % (self.location, len(self._undeclared), sample))
        return list(self._undeclared)
