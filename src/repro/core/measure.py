"""Measurement orchestration: trace graph -> max flow -> report.

Ties the pipeline together: optionally collapse the trace graph by code
location (Section 5.2), run the max-flow solver (Section 5), extract the
minimum cut (Section 6.1), and package everything as a
:class:`~repro.core.report.FlowReport`.

When observability is enabled (:func:`repro.obs.enable`), each stage is
timed under ``phase.collapse`` / ``phase.solve`` / ``phase.mincut`` with
the whole call under ``phase.measure``, and the report carries a metrics
snapshot in :attr:`FlowReport.metrics`.  The trace builder's event
counters are *not* republished here: the builder publishes them itself,
exactly once, when :meth:`~repro.core.tracker.TraceBuilder.finish` runs
(see the delta-publishing note in ``docs/observability.md``).  With
tracing enabled (:func:`repro.obs.enable_tracing`), each call runs under
a ``measure.graph`` / ``measure.runs`` span and the report carries the
recorded spans in :attr:`FlowReport.trace_spans`.
"""

from __future__ import annotations

from .. import obs
from ..graph.collapse import CollapseStats, collapse_graphs
from ..graph.maxflow import dinic_max_flow
from ..graph.mincut import min_cut_from_residual
from .report import FlowReport

#: Collapse modes: ``"none"`` solves the raw per-value graph,
#: ``"context"`` merges edges by (location, calling-context hash),
#: ``"location"`` merges by location only (smallest graph).
COLLAPSE_MODES = ("none", "context", "location")

def _publish(metrics, solved, value, cut):
    """Record the result gauges of one measurement.

    The trace builder's ``trace.*`` counters are published by the
    builder itself at ``finish()`` time (delta-tracked, so repeated
    snapshots of one builder never double-count); only the
    point-in-time result gauges belong here.
    """
    metrics.gauge("graph.nodes", solved.num_nodes)
    metrics.gauge("graph.edges", solved.num_edges)
    metrics.gauge("flow.bits", value)
    metrics.gauge("mincut.edges", len(cut.edges))


def measure_graph(graph, collapse="context", stats=None, warnings=None,
                  solver=dinic_max_flow):
    """Measure the information flow bound of a completed trace graph.

    Args:
        graph: a finished :class:`~repro.graph.flowgraph.FlowGraph`.
        collapse: one of :data:`COLLAPSE_MODES`.
        stats: optional event-counter dict from the trace builder,
            carried through to the report.
        warnings: optional list of notes carried through to the report.
        solver: max-flow function of signature ``graph -> (value,
            residual)``; defaults to Dinic's algorithm.

    A graph built by an online-collapsing tracker
    (:class:`~repro.core.tracker.CollapsingTraceBuilder`) arrives
    already collapsed — annotated with ``precollapsed`` and
    ``collapse_stats`` — so the post-hoc collapse is skipped: a
    matching ``collapse`` mode (or ``"none"``) solves the graph as-is,
    ``"location"`` on a context-collapsed graph refines it with a
    (cheap, coverage-sized) second collapse, and ``"context"`` on a
    location-collapsed graph raises ``ValueError`` because the context
    hashes are already gone.

    Returns:
        a :class:`FlowReport`.
    """
    if collapse not in COLLAPSE_MODES:
        raise ValueError("collapse must be one of %r, got %r"
                         % (COLLAPSE_MODES, collapse))
    precollapsed = getattr(graph, "precollapsed", None)
    if precollapsed == "location" and collapse == "context":
        raise ValueError(
            "graph was online-collapsed by location; context-sensitive "
            "collapse is no longer possible")
    metrics = obs.get_metrics()
    tracer = obs.get_tracer()
    collapse_stats = None
    solved = graph
    span = tracer.span("measure.graph", collapse=collapse,
                       nodes=graph.num_nodes, edges=graph.num_edges)
    with span, metrics.phase("measure"):
        if precollapsed is not None:
            collapse_stats = getattr(graph, "collapse_stats", None)
            if precollapsed == "context" and collapse == "location":
                with metrics.phase("collapse"):
                    solved, refined = collapse_graphs(
                        [graph], context_sensitive=False)
                if collapse_stats is not None:
                    collapse_stats = CollapseStats(
                        collapse_stats.original_nodes,
                        collapse_stats.original_edges,
                        refined.collapsed_nodes, refined.collapsed_edges)
                else:
                    collapse_stats = refined
        elif collapse != "none":
            with metrics.phase("collapse"):
                solved, collapse_stats = collapse_graphs(
                    [graph], context_sensitive=(collapse == "context"))
        value, residual = solver(solved)
        with metrics.phase("mincut"):
            cut = min_cut_from_residual(solved, residual)
        span.set(bits=value)
    stats = dict(stats or {})
    if metrics.enabled:
        _publish(metrics, solved, value, cut)
    return FlowReport(
        bits=value,
        mincut=cut,
        graph=solved,
        secret_input_bits=stats.get("secret_input_bits"),
        tainted_output_bits=stats.get("tainted_output_bits"),
        collapse_stats=collapse_stats,
        stats=stats,
        warnings=warnings,
        metrics=metrics.snapshot() if metrics.enabled else None,
        trace_spans=tracer.snapshot() if tracer.enabled else None,
    )


def measure_runs(graphs, collapse="context", stats_list=None, warnings=None,
                 solver=dinic_max_flow, jobs=1, faults=None, store=None):
    """Measure several runs *together* (Section 3.2).

    The graphs are combined by edge label before solving, which forces a
    single consistent cut placement across the runs; the resulting bound
    covers the whole set soundly (it is the length of one code word that
    could carry any of the runs' messages... more precisely, the sum of
    per-run flows is feasible in the combined graph).

    ``jobs > 1`` combines the graphs by tree reduction across worker
    processes (:func:`repro.batch.runs.combine_graphs_jobs`); the
    result — bound, cut, and combined graph — is identical to the
    serial combination.  A collecting ``faults`` policy there can drop
    failed subtrees; the report then comes back marked ``partial`` with
    the failures noted in ``collapse_stats.failures``.

    ``store`` (a :class:`~repro.store.ShardStore` or a directory path)
    routes the combine through the corpus pipeline instead: the graphs
    are appended to the store content-addressed (identical graphs dedup
    to a multiplicity) and the bound is computed over the *entire*
    store corpus by :func:`repro.batch.runs.combine_store_jobs` — so
    the report also covers shards appended in earlier calls against the
    same store.  On a fresh store the result is bit-identical to the
    plain combine of ``graphs``.
    """
    if store is not None:
        from ..batch.runs import combine_store_jobs
        from ..store import ShardStore
        shard_store = store if isinstance(store, ShardStore) \
            else ShardStore(store)
        for graph in graphs:
            shard_store.put(graph)
        result = combine_store_jobs(
            shard_store, context_sensitive=(collapse == "context"),
            jobs=jobs or 1, faults=faults, stats_list=stats_list,
            warnings=warnings)
        return result.report
    graphs = list(graphs)
    metrics = obs.get_metrics()
    tracer = obs.get_tracer()
    span = tracer.span("measure.runs", runs=len(graphs), collapse=collapse,
                       jobs=jobs or 1)
    with span, metrics.phase("measure"):
        with metrics.phase("collapse"):
            if jobs and jobs > 1:
                from ..batch.runs import combine_graphs_jobs
                combined, collapse_stats = combine_graphs_jobs(
                    graphs, context_sensitive=(collapse == "context"),
                    jobs=jobs, faults=faults)
            else:
                combined, collapse_stats = collapse_graphs(
                    graphs, context_sensitive=(collapse == "context"))
        value, residual = solver(combined)
        with metrics.phase("mincut"):
            cut = min_cut_from_residual(combined, residual)
        span.set(bits=value)
    merged_stats = {}
    for stats in stats_list or []:
        for key, val in stats.items():
            merged_stats[key] = merged_stats.get(key, 0) + val
    if metrics.enabled:
        _publish(metrics, combined, value, cut)
    report = FlowReport(
        bits=value,
        mincut=cut,
        graph=combined,
        secret_input_bits=merged_stats.get("secret_input_bits"),
        tainted_output_bits=merged_stats.get("tainted_output_bits"),
        collapse_stats=collapse_stats,
        stats=merged_stats,
        warnings=warnings,
        metrics=metrics.snapshot() if metrics.enabled else None,
        trace_spans=tracer.snapshot() if tracer.enabled else None,
        partial=bool(getattr(collapse_stats, "failures", None)),
    )
    return report
