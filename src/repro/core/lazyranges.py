"""Lazy large-region operations (Section 4.3).

When an enclosure region's output is a large array, updating the tag of
every element at region exit would cost O(n) per exit -- quadratic in a
loop whose every iteration might modify the whole array.  The paper's
tool instead keeps a bounded set of *region descriptors*: each covers a
contiguous range of addresses (more than :data:`MIN_RANGE` locations)
and carries a list of excepted addresses (later single-location writes).
If a descriptor accumulates more than :data:`MAX_EXCEPTIONS` exceptions
it is shrunk (when the exceptions all fall in its first half) or
eliminated (materialized eagerly).

:class:`LazyRangeTable` is storage-agnostic: the owner supplies a
``materialize(start, length, exceptions, payload)`` callback that writes
the deferred per-element state for the covered, non-excepted addresses.
"""

from __future__ import annotations

#: Default maximum number of live descriptors (paper: 40).
MAX_DESCRIPTORS = 40
#: Minimum range length worth a descriptor (paper: "more than 10").
MIN_RANGE = 10
#: Maximum exceptions a descriptor may hold (paper: "up to 30").
MAX_EXCEPTIONS = 30


class RangeDescriptor:
    """Deferred updates covering ``[start, start + length)``.

    ``payloads`` is a list: repeated covers of the *same* range (the
    loop-with-a-region-exit-per-iteration pattern the paper's laziness
    exists for) compose in order rather than forcing materialization.
    """

    __slots__ = ("start", "length", "payloads", "exceptions")

    def __init__(self, start, length, payload):
        self.start = start
        self.length = length
        self.payloads = [payload]
        self.exceptions = set()

    @property
    def end(self):
        return self.start + self.length

    def contains(self, addr):
        return self.start <= addr < self.end and addr not in self.exceptions

    def __repr__(self):
        return "RangeDescriptor([%d,%d), %d exceptions)" % (
            self.start, self.end, len(self.exceptions))


class LazyRangeTable:
    """A bounded table of range descriptors with exception lists.

    Args:
        materialize: callback ``(start, length, exceptions, payload)``
            invoked when a descriptor is eliminated and its deferred
            state must be written out eagerly.
        max_descriptors / min_range / max_exceptions: the paper's limits,
            overridable for the ablation benchmarks.
    """

    def __init__(self, materialize, max_descriptors=MAX_DESCRIPTORS,
                 min_range=MIN_RANGE, max_exceptions=MAX_EXCEPTIONS):
        self._materialize = materialize
        self.max_descriptors = max_descriptors
        self.min_range = min_range
        self.max_exceptions = max_exceptions
        self._descriptors = []
        self.stats = {"covers": 0, "eager_covers": 0, "eliminations": 0,
                      "shrinks": 0, "exceptions": 0}

    def __len__(self):
        return len(self._descriptors)

    def descriptors(self):
        """A snapshot of the live descriptors (for tests/inspection)."""
        return list(self._descriptors)

    def cover(self, start, length, payload):
        """Defer an update of ``[start, start + length)`` with ``payload``.

        Returns ``True`` when a descriptor was created; ``False`` when
        the range is too small to qualify, in which case the *caller*
        must apply the update eagerly.
        """
        if length <= self.min_range:
            self.stats["eager_covers"] += 1
            return False
        for desc in list(self._descriptors):
            if desc.start == start and desc.length == length:
                # The recurring case: a region exit re-covers exactly
                # the same array each loop iteration.  Compose in place
                # -- O(1) per exit, the point of Section 4.3.  Clearing
                # the exceptions over-applies earlier payloads to
                # recently-written cells, which only adds flow (sound).
                desc.payloads.append(payload)
                desc.exceptions.clear()
                self._descriptors.remove(desc)
                self._descriptors.append(desc)
                self.stats["covers"] += 1
                return True
            if max(desc.start, start) < min(desc.end, start + length):
                # Partial overlap: materialize the old deferred state
                # first; the new cover composes on top of the cells'
                # then-current state.
                self._eliminate(desc)
        if len(self._descriptors) >= self.max_descriptors:
            self._eliminate(self._descriptors[0])
        self._descriptors.append(RangeDescriptor(start, length, payload))
        self.stats["covers"] += 1
        return True

    def lookup(self, addr):
        """The deferred payloads at ``addr`` (oldest first), or ``None``.

        Descriptors are searched newest-first so the most recent cover of
        an address wins (older overlaps were materialized at cover time,
        but newest-first is also the correct tie-break).
        """
        for desc in reversed(self._descriptors):
            if desc.contains(addr):
                return desc.payloads
        return None

    def exclude(self, addr):
        """Record a single-address write that overrides deferred state."""
        touched = False
        for desc in self._descriptors:
            if desc.start <= addr < desc.end and addr not in desc.exceptions:
                desc.exceptions.add(addr)
                self.stats["exceptions"] += 1
                touched = True
        if touched:
            for desc in list(self._descriptors):
                self._check_exceptions(desc)

    def flush(self):
        """Materialize every descriptor (e.g. at program exit)."""
        while self._descriptors:
            self._eliminate(self._descriptors[0])

    def discard(self):
        """Drop all deferred state without materializing.

        Sound at end of trace: a deferred update only matters when its
        location is later *read*, and reads materialize on demand -- a
        value nobody reads again contributes no further flow.
        """
        self._descriptors.clear()

    # ------------------------------------------------------------------

    def _check_exceptions(self, desc):
        if desc not in self._descriptors:
            return
        live = sum(1 for a in desc.exceptions if desc.start <= a < desc.end)
        if live <= self.max_exceptions:
            if live == desc.length:
                self._descriptors.remove(desc)  # fully overwritten
            return
        midpoint = desc.start + desc.length // 2
        if all(a < midpoint for a in desc.exceptions):
            # All exceptions in the first half: shrink to the second
            # half, materializing the covered-but-dropped prefix so no
            # deferred state is lost.
            dropped = midpoint - desc.start
            if dropped > 0:
                for payload in desc.payloads:
                    self._materialize(desc.start, dropped,
                                      frozenset(desc.exceptions), payload)
            desc.length = desc.end - midpoint
            desc.start = midpoint
            desc.exceptions = set()
            self.stats["shrinks"] += 1
            if desc.length <= 0:
                self._descriptors.remove(desc)
        else:
            self._eliminate(desc)

    def _eliminate(self, desc):
        self._descriptors.remove(desc)
        self.stats["eliminations"] += 1
        for payload in desc.payloads:
            self._materialize(desc.start, desc.length,
                              frozenset(desc.exceptions), payload)
