"""The paper's primary contribution: flow measurement and checking.

Frontends report execution events to a :class:`TraceBuilder` (measuring
mode) or a :class:`CheckTracker` (deployment checking); the measurement
pipeline collapses the resulting graph, computes a maximum flow and
minimum cut, and reports a sound per-execution bound in bits.
"""

from .locations import ContextHasher, Location
from .tracker import (PUBLIC, CollapsingTraceBuilder, Provenance,
                      RegionExit, TraceBuilder, bits_for_arms)
from .regions import DeclaredOutput, RegionWriteChecker
from .lazyranges import (LazyRangeTable, MAX_DESCRIPTORS, MAX_EXCEPTIONS,
                         MIN_RANGE, RangeDescriptor)
from .measure import COLLAPSE_MODES, measure_graph, measure_runs
from .multisecret import CategoryBounds, measure_by_category
from .combine import (IncrementalKraft, StreamingCombiner,
                      code_lengths_for, consistent_bounds,
                      demonstrate_inconsistency, kraft_satisfied,
                      kraft_sum)
from .report import CutDescription, FlowReport
from .policy import CutPolicy, FlowPolicy
from .checking import CheckResult, CheckTracker, UnexpectedFlow
from .lockstep import (LockstepResult, RecordingInterceptor,
                       ReplayInterceptor, run_lockstep)

__all__ = [
    "ContextHasher", "Location",
    "PUBLIC", "CollapsingTraceBuilder", "Provenance", "RegionExit",
    "TraceBuilder", "bits_for_arms",
    "DeclaredOutput", "RegionWriteChecker",
    "LazyRangeTable", "MAX_DESCRIPTORS", "MAX_EXCEPTIONS", "MIN_RANGE",
    "RangeDescriptor",
    "COLLAPSE_MODES", "measure_graph", "measure_runs",
    "CategoryBounds", "measure_by_category",
    "IncrementalKraft", "StreamingCombiner", "code_lengths_for",
    "consistent_bounds", "demonstrate_inconsistency", "kraft_satisfied",
    "kraft_sum",
    "CutDescription", "FlowReport",
    "CutPolicy", "FlowPolicy",
    "CheckResult", "CheckTracker", "UnexpectedFlow",
    "LockstepResult", "RecordingInterceptor", "ReplayInterceptor",
    "run_lockstep",
]
