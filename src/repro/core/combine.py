"""Soundness across multiple runs (Section 3).

The paper defines a set of per-run flow bounds k(i) to be *sound* when a
uniquely decodable code exists whose i-th code word has length k(i) --
equivalently (Kraft's inequality) when sum_i 2**-k(i) <= 1.  Bounds
computed independently per run can violate this (the min(8, n+1) example
of Section 3.2: sum over n of 2**-min(8, n+1) = 503/256 > 1); combining
the runs' graphs before solving restores soundness.

This module provides the Kraft arithmetic (exactly, with
:class:`fractions.Fraction`) plus helpers that demonstrate/repair the
inconsistency.
"""

from __future__ import annotations

from fractions import Fraction

from .measure import measure_runs


def kraft_sum(bounds):
    """Exact value of sum_i 2**-k(i) for integer bit bounds ``bounds``."""
    total = Fraction(0)
    for k in bounds:
        if k < 0:
            raise ValueError("negative flow bound %r" % (k,))
        total += Fraction(1, 2 ** k)
    return total


def kraft_satisfied(bounds):
    """Whether a uniquely decodable code with these lengths exists."""
    return kraft_sum(bounds) <= 1


def code_lengths_for(num_messages):
    """Minimum uniform code length for ``num_messages`` distinct messages.

    Section 3.1: k bits distinguish 2**k possibilities, so N messages
    need ceil(log2 N) bits each.
    """
    if num_messages < 1:
        raise ValueError("need at least one message")
    return (num_messages - 1).bit_length()


def consistent_bounds(graphs, stats_list=None, collapse="context"):
    """A single sound bound covering all ``graphs`` (Section 3.2).

    Combines the runs' graphs by edge label and measures the result; the
    returned report's ``bits`` is sound for the whole set of runs in the
    Kraft sense (it corresponds to one fixed cut position, i.e. one code).
    """
    return measure_runs(graphs, collapse=collapse, stats_list=stats_list)


def demonstrate_inconsistency(per_run_bounds):
    """Summarize whether independently measured bounds are jointly sound.

    Returns a dict with the exact Kraft sum, a float rendering, and the
    verdict -- the shape of the Section 3.2 discussion, used by the
    consistency benchmark.
    """
    total = kraft_sum(per_run_bounds)
    return {
        "bounds": list(per_run_bounds),
        "kraft_sum": total,
        "kraft_sum_float": float(total),
        "sound": total <= 1,
    }
