"""Soundness across multiple runs (Section 3).

The paper defines a set of per-run flow bounds k(i) to be *sound* when a
uniquely decodable code exists whose i-th code word has length k(i) --
equivalently (Kraft's inequality) when sum_i 2**-k(i) <= 1.  Bounds
computed independently per run can violate this (the min(8, n+1) example
of Section 3.2: sum over n of 2**-min(8, n+1) = 503/256 > 1); combining
the runs' graphs before solving restores soundness.

This module provides the Kraft arithmetic (exactly, with
:class:`fractions.Fraction`) plus helpers that demonstrate/repair the
inconsistency.
"""

from __future__ import annotations

from fractions import Fraction

from .. import obs
from ..graph.collapse import CollapseStats, collapse_graphs
from ..graph.flowgraph import INF
from ..graph.maxflow import WarmStart, dinic_max_flow
from ..graph.mincut import min_cut_from_residual
from .measure import _publish, measure_runs
from .report import FlowReport


def kraft_sum(bounds):
    """Exact value of sum_i 2**-k(i) for integer bit bounds ``bounds``."""
    total = Fraction(0)
    for k in bounds:
        if k < 0:
            raise ValueError("negative flow bound %r" % (k,))
        total += Fraction(1, 2 ** k)
    return total


def kraft_satisfied(bounds):
    """Whether a uniquely decodable code with these lengths exists."""
    return kraft_sum(bounds) <= 1


def code_lengths_for(num_messages):
    """Minimum uniform code length for ``num_messages`` distinct messages.

    Section 3.1: k bits distinguish 2**k possibilities, so N messages
    need ceil(log2 N) bits each.
    """
    if num_messages < 1:
        raise ValueError("need at least one message")
    return (num_messages - 1).bit_length()


def consistent_bounds(graphs, stats_list=None, collapse="context"):
    """A single sound bound covering all ``graphs`` (Section 3.2).

    Combines the runs' graphs by edge label and measures the result; the
    returned report's ``bits`` is sound for the whole set of runs in the
    Kraft sense (it corresponds to one fixed cut position, i.e. one code).
    """
    return measure_runs(graphs, collapse=collapse, stats_list=stats_list)


class StreamingCombiner:
    """Fold run graphs in one at a time, re-solving incrementally.

    The streaming counterpart of :func:`consistent_bounds` /
    :func:`~repro.core.measure.measure_runs`: each :meth:`add` combines
    the new run's graph into the accumulated combined graph (the same
    label-driven union-find as the one-shot path -- contiguous-order
    associativity makes the final graph identical to combining the whole
    list at once) and re-solves.  Because the merged graph is the old
    graph plus summed capacities, the previous solve's residual is a
    feasible starting flow, so each re-solve warm-starts from it
    (:class:`~repro.graph.maxflow.WarmStart`) and only augments the
    increment -- near-free when a run adds little new coverage.

    After every ``add`` the current Kraft-sound bound over all runs so
    far is available as :attr:`bits` -- an *anytime* bound that only the
    streaming path can provide.  The bound is identical to the one-shot
    combination's (the max-flow value is unique); with warm starting the
    minimum *cut* may sit elsewhere when several cuts tie, which is
    sound -- any minimum cut of the combined graph yields a valid §3
    policy (``docs/backends.md`` has the full argument).

    Args:
        context_sensitive: merge-key sensitivity, as for
            :func:`~repro.graph.collapse.collapse_graphs`.
        warm_start: seed each re-solve from the previous residual;
            disable to re-solve cold every time (the reference
            behaviour the equivalence suite compares against).
    """

    def __init__(self, context_sensitive=True, warm_start=True):
        self.context_sensitive = context_sensitive
        self.warm_start = warm_start
        self.graph = None
        self.residual = None
        self.bits = None
        self.runs = 0
        self._warm = None
        self._original_nodes = 0
        self._original_edges = 0

    def add(self, graph, times=1, original_nodes=None, original_edges=None,
            run_count=None):
        """Fold one run's graph in and re-solve; returns the new bound.

        ``times > 1`` folds that many repeats of the graph in one step
        (the shard-store dedup path), via the same
        ``multiplicities`` contract as
        :func:`~repro.graph.collapse.collapse_graphs`.
        ``original_nodes``/``original_edges``/``run_count`` override the
        pre-collapse size and run count attributed to this addition (per
        repeat) when ``graph`` is itself already a combination — the
        tree-reduction merge uses this to keep :attr:`stats` and
        :attr:`runs` counting the true corpus size.
        """
        if times < 1:
            raise ValueError("times must be >= 1, got %r" % (times,))
        metrics = obs.get_metrics()
        with metrics.phase("collapse"):
            if self.graph is None:
                combined, _ = collapse_graphs(
                    [graph], context_sensitive=self.context_sensitive,
                    multiplicities=[times])
            else:
                combined, _ = collapse_graphs(
                    [self.graph, graph],
                    context_sensitive=self.context_sensitive,
                    multiplicities=[1, times])
        if original_nodes is None:
            original_nodes = graph.num_nodes
        if original_edges is None:
            original_edges = graph.num_edges
        self._original_nodes += times * original_nodes
        self._original_edges += times * original_edges
        self.runs += times * (1 if run_count is None else run_count)
        value, residual = dinic_max_flow(
            combined, warm_start=self._warm if self.warm_start else None)
        self.graph = combined
        self.residual = residual
        self.bits = value
        self._warm = WarmStart(combined, residual)
        return value

    @property
    def stats(self):
        """Cumulative :class:`CollapseStats` over every added graph."""
        if self.graph is None:
            raise ValueError("no graphs added yet")
        return CollapseStats(self._original_nodes, self._original_edges,
                             self.graph.num_nodes, self.graph.num_edges)

    def report(self, stats_list=None, warnings=None, failures=()):
        """Package the current state as a
        :class:`~repro.core.report.FlowReport`, mirroring
        :func:`~repro.core.measure.measure_runs`' assembly."""
        if self.graph is None:
            raise ValueError("no graphs added yet")
        metrics = obs.get_metrics()
        tracer = obs.get_tracer()
        with metrics.phase("mincut"):
            cut = min_cut_from_residual(self.graph, self.residual)
        merged_stats = {}
        for stats in stats_list or []:
            for key, val in stats.items():
                merged_stats[key] = merged_stats.get(key, 0) + val
        collapse_stats = self.stats
        collapse_stats.failures = list(failures)
        if metrics.enabled:
            _publish(metrics, self.graph, self.bits, cut)
        return FlowReport(
            bits=self.bits,
            mincut=cut,
            graph=self.graph,
            secret_input_bits=merged_stats.get("secret_input_bits"),
            tainted_output_bits=merged_stats.get("tainted_output_bits"),
            collapse_stats=collapse_stats,
            stats=merged_stats,
            warnings=warnings,
            metrics=metrics.snapshot() if metrics.enabled else None,
            trace_spans=tracer.snapshot() if tracer.enabled else None,
            partial=bool(collapse_stats.failures),
        )


class IncrementalKraft:
    """Sound anytime upper bound on a corpus combine, updated as
    shards merge.

    The tree-reduction merge only knows the exact Kraft-sound bound
    (the combined max-flow) at the root; this accountant gives a sound
    bound at *every* moment in between, from two globally consistent
    structural cuts.  For each live merge group ``g`` (initially one
    per shard, merged as reduction proceeds) it tracks the group
    graph's source-cut and sink-cut capacities; since every s-t flow in
    the final combined graph decomposes into flows crossing each
    group's source (and sink) cut,

        bound = min(sum_g source_cap(g), sum_g sink_cap(g))

    is an upper bound on the final combined max-flow at all times.
    Merging groups only lowers it (a merged graph's structural cuts
    are at most the sums of its parts' — label merges saturate and
    self-loops drop capacity), so once :meth:`seal` marks the corpus
    complete the recorded :attr:`trail` is monotone nonincreasing and
    every entry is ``>=`` the final exact bound, which
    :meth:`finalize` snaps to.  Note the *per-group min-cut* sum is
    not usable here: merging can unlock capacity across groups, so it
    is a lower trail, not an upper bound.
    """

    def __init__(self):
        self._groups = {}
        self._next_id = 0
        self._src_finite = 0
        self._src_inf = 0
        self._sink_finite = 0
        self._sink_inf = 0
        self._sealed = False
        self._final = None
        self.trail = []
        self.updates = 0

    @staticmethod
    def _scale(capacity, multiplicity):
        if capacity >= INF:
            return INF
        return min(capacity * multiplicity, INF)

    def _account(self, source_cap, sink_cap, sign):
        if source_cap >= INF:
            self._src_inf += sign
        else:
            self._src_finite += sign * source_cap
        if sink_cap >= INF:
            self._sink_inf += sign
        else:
            self._sink_finite += sign * sink_cap

    def admit(self, source_cap, sink_cap, multiplicity=1):
        """Register one shard (``multiplicity`` identical runs) as its
        own merge group; returns the group id."""
        if self._sealed:
            raise ValueError("cannot admit shards after seal()")
        if multiplicity < 1:
            raise ValueError("multiplicity must be >= 1")
        gid = self._next_id
        self._next_id += 1
        caps = (self._scale(source_cap, multiplicity),
                self._scale(sink_cap, multiplicity))
        self._groups[gid] = caps
        self._account(caps[0], caps[1], +1)
        return gid

    @property
    def sealed(self):
        """Whether :meth:`seal` has marked the corpus complete."""
        return self._sealed

    def seal(self):
        """Mark the corpus complete; starts the monotone trail.

        From here on the bound only moves down (merges, drops, the
        final exact solve), so :attr:`trail` is the sound anytime
        sequence the CLI reports.
        """
        self._sealed = True
        self._record()
        return self.bits

    def merge(self, group_ids, source_cap, sink_cap):
        """Replace ``group_ids`` by their merged group, whose combined
        graph has the given structural cut capacities; returns the new
        group id."""
        for gid in group_ids:
            src, sink = self._groups.pop(gid)
            self._account(src, sink, -1)
        gid = self._next_id
        self._next_id += 1
        caps = (min(source_cap, INF), min(sink_cap, INF))
        self._groups[gid] = caps
        self._account(caps[0], caps[1], +1)
        self._record()
        return gid

    def drop(self, group_id):
        """Remove a group whose subtree failed (``on_error="collect"``):
        the bound then covers only the surviving shards."""
        src, sink = self._groups.pop(group_id)
        self._account(src, sink, -1)
        self._record()

    def finalize(self, bits):
        """Snap to the exact combined bound from the root solve."""
        self._final = bits
        self._record()
        return self.bits

    def _record(self):
        if self._sealed:
            bits = self.bits
            self.trail.append(bits)
            self.updates += 1
            metrics = obs.get_metrics()
            if metrics.enabled:
                metrics.incr("combine.kraft_updates")
            obs.get_event_log().event(
                "combine.kraft_update",
                bits=None if bits >= INF else bits,
                groups=len(self._groups))

    def to_dict(self):
        """The accountant's complete state as a JSON-able dict.

        The measurement service checkpoints this after every admitted
        shard so a crashed job resumes its anytime accounting instead
        of restarting it; :meth:`from_dict` round-trips exactly
        (groups, accumulators, seal state, trail, and update count).
        """
        return {
            "groups": [[gid, src, sink]
                       for gid, (src, sink) in sorted(self._groups.items())],
            "next_id": self._next_id,
            "sealed": self._sealed,
            "final": self._final,
            "trail": list(self.trail),
            "updates": self.updates,
        }

    @classmethod
    def from_dict(cls, doc):
        """Rebuild an accountant from :meth:`to_dict` output.

        The source/sink accumulators are re-derived from the group
        table, so a hand-edited or torn document cannot smuggle in an
        inconsistent sum.
        """
        kraft = cls()
        for gid, src, sink in doc["groups"]:
            gid = int(gid)
            if gid in kraft._groups:
                raise ValueError("duplicate group id %d" % gid)
            caps = (min(int(src), INF), min(int(sink), INF))
            kraft._groups[gid] = caps
            kraft._account(caps[0], caps[1], +1)
        kraft._next_id = int(doc["next_id"])
        if kraft._groups and kraft._next_id <= max(kraft._groups):
            raise ValueError("next_id %d collides with live groups"
                             % kraft._next_id)
        kraft._sealed = bool(doc["sealed"])
        final = doc.get("final")
        kraft._final = None if final is None else int(final)
        kraft.trail = [int(b) for b in doc.get("trail", [])]
        kraft.updates = int(doc.get("updates", 0))
        return kraft

    @property
    def groups_live(self):
        return len(self._groups)

    @property
    def bits(self):
        """The current sound upper bound (:data:`~repro.graph.flowgraph.INF`
        when both structural cuts are unbounded)."""
        if self._final is not None:
            return self._final
        src = INF if self._src_inf else min(self._src_finite, INF)
        sink = INF if self._sink_inf else min(self._sink_finite, INF)
        return min(src, sink)


def demonstrate_inconsistency(per_run_bounds):
    """Summarize whether independently measured bounds are jointly sound.

    Returns a dict with the exact Kraft sum, a float rendering, and the
    verdict -- the shape of the Section 3.2 discussion, used by the
    consistency benchmark.
    """
    total = kraft_sum(per_run_bounds)
    return {
        "bounds": list(per_run_bounds),
        "kraft_sum": total,
        "kraft_sum_float": float(total),
        "sound": total <= 1,
    }
