"""Soundness across multiple runs (Section 3).

The paper defines a set of per-run flow bounds k(i) to be *sound* when a
uniquely decodable code exists whose i-th code word has length k(i) --
equivalently (Kraft's inequality) when sum_i 2**-k(i) <= 1.  Bounds
computed independently per run can violate this (the min(8, n+1) example
of Section 3.2: sum over n of 2**-min(8, n+1) = 503/256 > 1); combining
the runs' graphs before solving restores soundness.

This module provides the Kraft arithmetic (exactly, with
:class:`fractions.Fraction`) plus helpers that demonstrate/repair the
inconsistency.
"""

from __future__ import annotations

from fractions import Fraction

from .. import obs
from ..graph.collapse import CollapseStats, collapse_graphs
from ..graph.maxflow import WarmStart, dinic_max_flow
from ..graph.mincut import min_cut_from_residual
from .measure import _publish, measure_runs
from .report import FlowReport


def kraft_sum(bounds):
    """Exact value of sum_i 2**-k(i) for integer bit bounds ``bounds``."""
    total = Fraction(0)
    for k in bounds:
        if k < 0:
            raise ValueError("negative flow bound %r" % (k,))
        total += Fraction(1, 2 ** k)
    return total


def kraft_satisfied(bounds):
    """Whether a uniquely decodable code with these lengths exists."""
    return kraft_sum(bounds) <= 1


def code_lengths_for(num_messages):
    """Minimum uniform code length for ``num_messages`` distinct messages.

    Section 3.1: k bits distinguish 2**k possibilities, so N messages
    need ceil(log2 N) bits each.
    """
    if num_messages < 1:
        raise ValueError("need at least one message")
    return (num_messages - 1).bit_length()


def consistent_bounds(graphs, stats_list=None, collapse="context"):
    """A single sound bound covering all ``graphs`` (Section 3.2).

    Combines the runs' graphs by edge label and measures the result; the
    returned report's ``bits`` is sound for the whole set of runs in the
    Kraft sense (it corresponds to one fixed cut position, i.e. one code).
    """
    return measure_runs(graphs, collapse=collapse, stats_list=stats_list)


class StreamingCombiner:
    """Fold run graphs in one at a time, re-solving incrementally.

    The streaming counterpart of :func:`consistent_bounds` /
    :func:`~repro.core.measure.measure_runs`: each :meth:`add` combines
    the new run's graph into the accumulated combined graph (the same
    label-driven union-find as the one-shot path -- contiguous-order
    associativity makes the final graph identical to combining the whole
    list at once) and re-solves.  Because the merged graph is the old
    graph plus summed capacities, the previous solve's residual is a
    feasible starting flow, so each re-solve warm-starts from it
    (:class:`~repro.graph.maxflow.WarmStart`) and only augments the
    increment -- near-free when a run adds little new coverage.

    After every ``add`` the current Kraft-sound bound over all runs so
    far is available as :attr:`bits` -- an *anytime* bound that only the
    streaming path can provide.  The bound is identical to the one-shot
    combination's (the max-flow value is unique); with warm starting the
    minimum *cut* may sit elsewhere when several cuts tie, which is
    sound -- any minimum cut of the combined graph yields a valid §3
    policy (``docs/backends.md`` has the full argument).

    Args:
        context_sensitive: merge-key sensitivity, as for
            :func:`~repro.graph.collapse.collapse_graphs`.
        warm_start: seed each re-solve from the previous residual;
            disable to re-solve cold every time (the reference
            behaviour the equivalence suite compares against).
    """

    def __init__(self, context_sensitive=True, warm_start=True):
        self.context_sensitive = context_sensitive
        self.warm_start = warm_start
        self.graph = None
        self.residual = None
        self.bits = None
        self.runs = 0
        self._warm = None
        self._original_nodes = 0
        self._original_edges = 0

    def add(self, graph):
        """Fold one run's graph in and re-solve; returns the new bound."""
        metrics = obs.get_metrics()
        with metrics.phase("collapse"):
            if self.graph is None:
                combined, _ = collapse_graphs(
                    [graph], context_sensitive=self.context_sensitive)
            else:
                combined, _ = collapse_graphs(
                    [self.graph, graph],
                    context_sensitive=self.context_sensitive)
        self._original_nodes += graph.num_nodes
        self._original_edges += graph.num_edges
        self.runs += 1
        value, residual = dinic_max_flow(
            combined, warm_start=self._warm if self.warm_start else None)
        self.graph = combined
        self.residual = residual
        self.bits = value
        self._warm = WarmStart(combined, residual)
        return value

    @property
    def stats(self):
        """Cumulative :class:`CollapseStats` over every added graph."""
        if self.graph is None:
            raise ValueError("no graphs added yet")
        return CollapseStats(self._original_nodes, self._original_edges,
                             self.graph.num_nodes, self.graph.num_edges)

    def report(self, stats_list=None, warnings=None, failures=()):
        """Package the current state as a
        :class:`~repro.core.report.FlowReport`, mirroring
        :func:`~repro.core.measure.measure_runs`' assembly."""
        if self.graph is None:
            raise ValueError("no graphs added yet")
        metrics = obs.get_metrics()
        tracer = obs.get_tracer()
        with metrics.phase("mincut"):
            cut = min_cut_from_residual(self.graph, self.residual)
        merged_stats = {}
        for stats in stats_list or []:
            for key, val in stats.items():
                merged_stats[key] = merged_stats.get(key, 0) + val
        collapse_stats = self.stats
        collapse_stats.failures = list(failures)
        if metrics.enabled:
            _publish(metrics, self.graph, self.bits, cut)
        return FlowReport(
            bits=self.bits,
            mincut=cut,
            graph=self.graph,
            secret_input_bits=merged_stats.get("secret_input_bits"),
            tainted_output_bits=merged_stats.get("tainted_output_bits"),
            collapse_stats=collapse_stats,
            stats=merged_stats,
            warnings=warnings,
            metrics=metrics.snapshot() if metrics.enabled else None,
            trace_spans=tracer.snapshot() if tracer.enabled else None,
            partial=bool(collapse_stats.failures),
        )


def demonstrate_inconsistency(per_run_bounds):
    """Summarize whether independently measured bounds are jointly sound.

    Returns a dict with the exact Kraft sum, a float rendering, and the
    verdict -- the shape of the Section 3.2 discussion, used by the
    consistency benchmark.
    """
    total = kraft_sum(per_run_bounds)
    return {
        "bounds": list(per_run_bounds),
        "kraft_sum": total,
        "kraft_sum_float": float(total),
        "sound": total <= 1,
    }
