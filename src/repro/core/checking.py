"""Tainting-based policy checking (Section 6.2).

Once measurement has produced a minimum cut, future runs can be checked
much more cheaply: re-run with plain bit-level tainting (no graph) and
treat the cut's program points as sanctioned declassification sites --
"the cut edges correspond to annotations that clear the taint bits on
data, while simultaneously incrementing a counter of information
revealed.  If any other tainted bits reach the output or an implicit
flow operation, they are conservatively counted in the same way, and the
location reported."

:class:`CheckTracker` implements the same event interface as
:class:`~repro.core.tracker.TraceBuilder`, so the FlowLang VM and the
Python frontend run unmodified against either.
"""

from __future__ import annotations

from ..errors import PolicyViolation, TraceError
from ..shadow.bitmask import popcount, width_mask
from .tracker import PUBLIC, Provenance, bits_for_arms

#: Sentinel node id marking "tainted" in check mode (no graph is built).
TAINTED = -1


class UnexpectedFlow:
    """A tainted flow observed at a location the cut does not sanction."""

    __slots__ = ("kind", "location", "bits")

    def __init__(self, kind, location, bits):
        self.kind = kind
        self.location = location
        self.bits = bits

    def __repr__(self):
        return "UnexpectedFlow(%s at %s, %d bits)" % (
            self.kind, self.location, self.bits)


class CheckResult:
    """Outcome of a tainting-based check of one run."""

    def __init__(self, revealed_bits, sanctioned_bits, unexpected, policy):
        self.revealed_bits = revealed_bits
        self.sanctioned_bits = sanctioned_bits
        self.unexpected = unexpected
        self.policy = policy

    @property
    def ok(self):
        """Whether the run stayed within the policy with no novel leaks."""
        return (not self.unexpected
                and self.policy.permits(self.revealed_bits))

    def enforce(self):
        """Raise :class:`PolicyViolation` unless the run passed."""
        if self.unexpected:
            first = self.unexpected[0]
            raise PolicyViolation(
                "tainted %s flow at unsanctioned location %s (%d bits; %d "
                "unexpected flows total)" % (first.kind, first.location,
                                             first.bits, len(self.unexpected)),
                measured=self.revealed_bits, allowed=self.policy.max_bits,
                location=first.location)
        self.policy.check(self.revealed_bits)
        return self

    def __repr__(self):
        return ("CheckResult(revealed=%d, sanctioned=%d, unexpected=%d, ok=%s)"
                % (self.revealed_bits, self.sanctioned_bits,
                   len(self.unexpected), self.ok))


class _CheckRegion:
    __slots__ = ("location", "tainted")

    def __init__(self, location):
        self.location = location
        self.tainted = False


class _CheckRegionExit:
    __slots__ = ("tainted", "location")

    def __init__(self, tainted, location):
        self.tainted = tainted
        self.location = location

    @property
    def had_implicit_flows(self):
        return self.tainted


class CheckTracker:
    """Drop-in replacement for ``TraceBuilder`` that checks a cut policy.

    Builds no graph; maintains only taint (via the same secrecy masks)
    and counters.  Runtime overhead is therefore that of tainting alone,
    which is the point of Section 6.2.
    """

    def __init__(self, policy):
        self.policy = policy
        self._regions = []
        self._revealed = 0
        self._sanctioned = 0
        self._unexpected = []
        self._finished = False
        self._stats = {"operations": 0, "implicit_flows": 0, "outputs": 0,
                       "secret_input_bits": 0, "tainted_output_bits": 0}

    # -- the TraceBuilder event interface ------------------------------

    def push_call(self, callsite_id):
        """Context hashes are not needed for checking; accepted for parity."""

    def pop_call(self):
        pass

    def public(self):
        return PUBLIC

    def secret_value(self, location, width, mask=None, category=None):
        if mask is None:
            mask = width_mask(width)
        if mask == 0:
            return PUBLIC
        self._stats["secret_input_bits"] += popcount(mask)
        if self.policy.allows_location("value", location):
            # The cut sits at the input itself (the whole value is
            # revealed): declassify-and-count right away.
            self._count(popcount(mask), sanctioned=True)
            return PUBLIC
        return Provenance(mask, TAINTED)

    def operation(self, location, result_mask, operands):
        self._stats["operations"] += 1
        if result_mask == 0:
            return PUBLIC
        bits = popcount(result_mask)
        if self.policy.allows_location("value", location):
            self._count(bits, sanctioned=True)
            return PUBLIC
        return Provenance(result_mask, TAINTED)

    def copy(self, provenance):
        return provenance

    def declassify(self, provenance):
        return PUBLIC

    def implicit_flow(self, location, provenance, bits):
        if provenance.node is None or bits == 0 or provenance.mask == 0:
            return
        self._stats["implicit_flows"] += 1
        if self.policy.allows_location("implicit", location):
            self._count(bits, sanctioned=True)
            return
        if self._regions:
            self._regions[-1].tainted = True
            return
        # A tainted implicit flow at an unsanctioned location outside any
        # region can reach the output chain: count it and report it.
        self._count(bits, sanctioned=False)
        self._unexpected.append(UnexpectedFlow("implicit", location, bits))

    def branch(self, location, condition, arms=2):
        self.implicit_flow(location, condition, bits_for_arms(arms))

    def indexed(self, location, index):
        self.implicit_flow(location, index, index.bits)

    def enter_region(self, location):
        self._regions.append(_CheckRegion(location))

    def leave_region(self, location):
        if not self._regions:
            raise TraceError("leave_region at %s without a matching enter"
                             % (location,))
        region = self._regions.pop()
        return _CheckRegionExit(region.tainted, location)

    def region_output(self, location, region_exit, old_provenance, width):
        if not region_exit.tainted:
            if (old_provenance.node is not None
                    and self.policy.allows_location("value", location)):
                self._count(popcount(old_provenance.mask), sanctioned=True)
                return PUBLIC
            return old_provenance
        if self.policy.allows_location("value", location):
            # A cut at this location accounts for everything the value
            # can carry -- the region's influence and the previous data
            # alike -- so the result continues as public.
            self._count(width, sanctioned=True)
            return PUBLIC
        return Provenance(width_mask(width), TAINTED)

    def output(self, location, provenances):
        self._stats["outputs"] += 1
        for prov in provenances:
            if prov.node is None or prov.mask == 0:
                continue
            bits = popcount(prov.mask)
            self._stats["tainted_output_bits"] += bits
            if self.policy.allows_location("io", location):
                self._count(bits, sanctioned=True)
            else:
                self._count(bits, sanctioned=False)
                self._unexpected.append(UnexpectedFlow("io", location, bits))

    def finish(self, exit_observable=True):
        """End the run; returns a :class:`CheckResult`."""
        if self._finished:
            raise TraceError("check already finished")
        if self._regions:
            raise TraceError("check finished with %d open enclosure regions"
                             % len(self._regions))
        self._finished = True
        return CheckResult(self._revealed, self._sanctioned,
                           list(self._unexpected), self.policy)

    @property
    def stats(self):
        return dict(self._stats)

    @property
    def region_depth(self):
        return len(self._regions)

    # ------------------------------------------------------------------

    def _count(self, bits, sanctioned):
        self._revealed += bits
        if sanctioned:
            self._sanctioned += bits
