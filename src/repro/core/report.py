"""Measurement results (what the tool reports to the developer).

A :class:`FlowReport` bundles the headline number -- the max-flow bound
on bits revealed -- with the artifacts around it: the minimum cut (the
checkable policy of Section 6), graph sizes before and after collapsing
(the Section 5.3 statistics), and the coarser bound plain tainting would
have produced (the Section 7 comparison).
"""

from __future__ import annotations

from ..graph.flowgraph import INF


class CutDescription:
    """A minimum cut rendered in program terms: labelled edges with bits."""

    __slots__ = ("entries",)

    def __init__(self, mincut):
        # entries: list of (kind, location, context, capacity)
        self.entries = []
        for ce in mincut.edges:
            if ce.label is None:
                self.entries.append((None, None, None, ce.capacity))
            else:
                self.entries.append((ce.label.kind, ce.label.location,
                                     ce.label.context, ce.capacity))

    def __len__(self):
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def locations(self):
        """The distinct (kind, location) pairs crossing the cut."""
        return sorted({(kind, str(loc)) for kind, loc, _, _ in self.entries
                       if loc is not None})

    def describe(self):
        """Multi-line human-readable rendering."""
        lines = []
        for kind, loc, _ctx, cap in self.entries:
            cap_text = "inf" if cap >= INF else "%d bits" % cap
            where = "%s at %s" % (kind, loc) if loc is not None else "(unlabelled)"
            lines.append("  %-9s %s" % (cap_text, where))
        return "\n".join(lines)


class FlowReport:
    """Result of measuring one (or a combined set of) execution(s).

    Attributes:
        bits: the max-flow bound on secret bits revealed.
        cut: a :class:`CutDescription` of the minimum cut.
        mincut: the underlying :class:`~repro.graph.mincut.MinCut`.
        graph: the (possibly collapsed) graph that was solved.
        secret_input_bits: total secret bits read (an upper bound from
            the input side).
        tainted_output_bits: bits a plain tainting analysis would report
            (total tainted output width, Section 7).
        collapse_stats: sizes before/after collapsing, or ``None``.
        stats: raw event counters from the trace builder(s).
        warnings: list of human-readable soundness/precision notes
            (e.g. undeclared region writes in audit mode).
        metrics: observability snapshot taken at the end of the
            measurement (a dict over the ``docs/observability.md``
            catalogue), or ``None`` when metrics were disabled.
        trace_spans: list of span dicts recorded by the structured
            tracer up to the end of the measurement (see the Tracing
            section of ``docs/observability.md``), or ``None`` when
            tracing was disabled.
        partial: ``True`` when the report deliberately covers only a
            subset of the requested executions — e.g. a batch under
            ``on_error="collect"`` whose failed runs were excluded
            from the combined graph.  A partial bound is sound *for
            the surviving runs only*: the Section 3 Kraft guarantee
            says nothing about what the failed runs would have
            revealed, so callers must never treat a partial report as
            a complete bound.
    """

    def __init__(self, bits, mincut, graph, secret_input_bits=None,
                 tainted_output_bits=None, collapse_stats=None, stats=None,
                 warnings=None, metrics=None, trace_spans=None,
                 partial=False):
        self.bits = bits
        self.mincut = mincut
        self.cut = CutDescription(mincut)
        self.graph = graph
        self.secret_input_bits = secret_input_bits
        self.tainted_output_bits = tainted_output_bits
        self.collapse_stats = collapse_stats
        self.stats = stats or {}
        self.warnings = list(warnings or [])
        self.metrics = metrics
        self.trace_spans = trace_spans
        self.partial = partial

    def describe(self):
        """Multi-line summary in the style of the paper's reports."""
        lines = ["flow bound: %s bits%s"
                 % ("inf" if self.bits >= INF else self.bits,
                    " (PARTIAL: failed runs excluded)" if self.partial
                    else "")]
        if self.secret_input_bits is not None:
            lines.append("secret input: %d bits" % self.secret_input_bits)
        if self.tainted_output_bits is not None:
            lines.append("tainting would report: %d bits"
                         % self.tainted_output_bits)
        if self.collapse_stats is not None:
            cs = self.collapse_stats
            lines.append("graph: %d nodes / %d edges (collapsed from %d / %d)"
                         % (cs.collapsed_nodes, cs.collapsed_edges,
                            cs.original_nodes, cs.original_edges))
        else:
            lines.append("graph: %d nodes / %d edges"
                         % (self.graph.num_nodes, self.graph.num_edges))
        lines.append("minimum cut (%d edges):" % len(self.cut))
        lines.append(self.cut.describe())
        for w in self.warnings:
            lines.append("warning: %s" % w)
        return "\n".join(lines)

    def __repr__(self):
        return "FlowReport(bits=%s, cut_edges=%d%s)" % (
            self.bits, len(self.cut), ", partial" if self.partial else "")
