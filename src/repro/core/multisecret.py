"""Different kinds of secret (Section 10.1, implemented).

The paper sketches analyzing multiple secret classes -- Alice's secrets
vs. Bob's, "classified" vs. "top secret" -- and notes the obvious
approach (run the tool once per class) shares no work, while true
multi-commodity flow would be unsound (flows can share capacity via
coding).

This module implements the sound middle ground the paper hints at: one
instrumented execution builds one graph whose *source edges* are tagged
with their secret's category; per-category bounds come from re-solving
the same graph with the other categories' source edges closed.  That
shares the expensive part (instrumentation + graph construction) across
categories and additionally exposes the *crowding-out* effect the paper
mentions: the joint bound can be less than the sum of the per-category
bounds when classes compete for the same channel.
"""

from __future__ import annotations

from ..graph.maxflow import dinic_max_flow
from ..graph.mincut import min_cut_from_residual
from .measure import measure_graph

#: Category used when callers don't specify one.
DEFAULT_CATEGORY = "secret"


class CategoryBounds:
    """Per-category and joint flow bounds from one execution.

    ``failures`` is normally empty; a parallel sweep running under
    ``on_error="collect"`` records there the
    :class:`~repro.batch.engine.JobFailure` of every category whose
    solve job failed — those categories are then missing from
    ``per_category``, and the sweep is partial.
    """

    def __init__(self, per_category, joint, reports, failures=()):
        self.per_category = dict(per_category)
        self.joint = joint
        self.reports = reports
        self.failures = list(failures)

    @property
    def partial(self):
        return bool(self.failures)

    @property
    def sum_of_categories(self):
        return sum(self.per_category.values())

    @property
    def crowding_out(self):
        """Bits saved by analyzing jointly: sum of parts minus joint.

        Positive when the categories compete for shared channel
        capacity (a byte can carry 8 of Alice's bits or 8 of Bob's, but
        not both at once).
        """
        return self.sum_of_categories - self.joint

    def __repr__(self):
        parts = ", ".join("%s=%d" % kv
                          for kv in sorted(self.per_category.items()))
        return "CategoryBounds(%s, joint=%d)" % (parts, self.joint)


def _restricted_copy(graph, category_edges, enabled):
    """A copy of ``graph`` with only ``enabled`` categories' sources open."""
    allowed = set()
    for category in enabled:
        allowed.update(category_edges.get(category, ()))
    all_tagged = set()
    for indices in category_edges.values():
        all_tagged.update(indices)
    restricted = graph.copy()
    for index in all_tagged - allowed:
        restricted.edges[index].capacity = 0
    return restricted


def _solve_with_categories(graph, category_edges, enabled):
    """Max-flow with only ``enabled`` categories' source edges open."""
    restricted = _restricted_copy(graph, category_edges, enabled)
    value, residual = dinic_max_flow(restricted)
    return value, min_cut_from_residual(restricted, residual)


def measure_by_category(graph, category_edges, collapse="none",
                        stats=None, jobs=1, faults=None):
    """Measure one graph per-category and jointly.

    Args:
        graph: the finished trace graph.
        category_edges: mapping category -> list of *input-edge indices*
            (as recorded by ``TraceBuilder.category_edges``).
        collapse: collapsing is applied to the *joint* report only; the
            per-category solves run on the graph as given, where the
            edge indices are valid.  With the default builder that is
            the raw trace graph; with an online-collapsing builder it is
            the collapsed graph, which can make per-category bounds
            coarser (never lower) when categories share program points
            — see ``docs/performance.md``.
        stats: optional tracker stats for the joint report.
        jobs: fan the per-category solves over this many worker
            processes (:func:`repro.batch.runs.measure_by_category_jobs`);
            bounds and cuts are identical to the serial sweep.
        faults: a :class:`~repro.batch.engine.FaultPolicy` for the
            parallel sweep; under ``on_error="collect"`` failed
            categories land in the result's ``failures``.

    Returns a :class:`CategoryBounds`.
    """
    if jobs and jobs > 1:
        from ..batch.runs import measure_by_category_jobs
        return measure_by_category_jobs(graph, category_edges,
                                        collapse=collapse, stats=stats,
                                        jobs=jobs, faults=faults)
    per_category = {}
    reports = {}
    for category in sorted(category_edges):
        value, cut = _solve_with_categories(graph, category_edges,
                                            [category])
        per_category[category] = value
        reports[category] = cut
    joint = measure_graph(graph, collapse=collapse, stats=stats)
    return CategoryBounds(per_category, joint.bits,
                          {"joint": joint, **reports})
