"""Docs-drift test for ``docs/api.md``: every name in its tables exists.

The API overview documents public entry points as markdown tables under
section headers that name a module in backticks, e.g.::

    ## Graphs — `repro.graph`

    | name | purpose |
    |---|---|
    | `dinic_max_flow / edmonds_karp_max_flow` | ... |

This test parses those tables and resolves every listed name (splitting
``a / b`` alternatives, dropping call signatures, following dotted
attributes) against the stated module, so a rename or a dropped
re-export breaks the suite instead of silently rotting the doc.
"""

import importlib
import pathlib
import re

import pytest

DOC = pathlib.Path(__file__).resolve().parents[1] / "docs" / "api.md"

_HEADER = re.compile(r"^#+\s+.*`(?P<module>[\w.]+)`\s*$")
_CELL_NAME = re.compile(r"`(?P<text>[^`]+)`")


def parse_api_tables():
    """Yield ``(module, name)`` pairs from every table in docs/api.md."""
    module = None
    pairs = []
    for line in DOC.read_text().splitlines():
        header = _HEADER.match(line.strip())
        if header:
            module = header.group("module")
            continue
        if module is None or not line.startswith("|"):
            continue
        first_cell = line.strip().strip("|").split("|")[0].strip()
        if not first_cell or set(first_cell) <= {"-", " ", ":"}:
            continue
        if first_cell.lower() == "name":
            continue
        for backticked in _CELL_NAME.findall(first_cell):
            for alternative in backticked.split("/"):
                name = alternative.strip().split("(")[0].strip()
                if name:
                    pairs.append((module, name))
    return pairs


def resolve(module_name, dotted):
    """Import ``module_name`` and getattr down ``dotted``.

    A name that itself starts with ``repro.`` is treated as a full path:
    the longest importable prefix is imported and the rest resolved as
    attributes.
    """
    if dotted.startswith("repro."):
        parts = dotted.split(".")
        for split in range(len(parts), 0, -1):
            try:
                obj = importlib.import_module(".".join(parts[:split]))
            except ImportError:
                continue
            for attr in parts[split:]:
                obj = getattr(obj, attr)
            return obj
        raise ImportError(dotted)
    obj = importlib.import_module(module_name)
    for attr in dotted.split("."):
        obj = getattr(obj, attr)
    return obj


def test_tables_found():
    pairs = parse_api_tables()
    assert len(pairs) > 40, "api.md tables went missing or unparseable"
    modules = {module for module, _ in pairs}
    assert "repro.pytrace" in modules
    assert "repro.graph" in modules


@pytest.mark.parametrize(
    "module,name",
    parse_api_tables(),
    ids=["%s:%s" % pair for pair in parse_api_tables()])
def test_documented_name_exists(module, name):
    try:
        resolve(module, name)
    except (ImportError, AttributeError) as error:
        pytest.fail("docs/api.md lists %r under `%s`, but it does not "
                    "resolve: %s" % (name, module, error))
