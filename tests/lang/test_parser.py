"""Tests for the FlowLang parser."""

import pytest

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.parser import parse


def parse_expr(text):
    program = parse("fn main() { var x: u32 = %s; }" % text)
    return program.functions[0].body.statements[0].init


def parse_stmt(text):
    program = parse("fn main() { %s }" % text)
    return program.functions[0].body.statements[0]


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"

    def test_precedence_shift_below_add(self):
        expr = parse_expr("1 << 2 + 3")
        assert expr.op == "<<"
        assert expr.right.op == "+"

    def test_precedence_compare_below_bitand(self):
        # C-style trap avoided: & binds *looser* than == in FlowLang?
        # No: we follow the table -- & is above ==.
        expr = parse_expr("a & b == c")
        assert expr.op == "&"
        assert expr.right.op == "=="

    def test_left_associativity(self):
        expr = parse_expr("a - b - c")
        assert expr.op == "-"
        assert isinstance(expr.left, ast.Binary) and expr.left.op == "-"

    def test_parentheses(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_chains(self):
        expr = parse_expr("- - x")
        assert isinstance(expr, ast.Unary) and expr.op == "-"
        assert isinstance(expr.operand, ast.Unary)

    def test_index_and_call_postfix(self):
        expr = parse_expr("f(a[1], b)[2]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.base, ast.Call)
        assert len(expr.base.args) == 2

    def test_cast_syntax(self):
        expr = parse_expr("u16(x + 1)")
        assert isinstance(expr, ast.Cast)
        assert expr.target.name == "u16"

    def test_len_becomes_arraylen(self):
        expr = parse_expr("len(buf)")
        assert isinstance(expr, ast.ArrayLen)

    def test_len_arity_checked(self):
        with pytest.raises(ParseError):
            parse_expr("len(a, b)")

    def test_string_and_char(self):
        assert isinstance(parse_expr('"hi"'), ast.StringLit)
        lit = parse_expr("'x'")
        assert isinstance(lit, ast.NumberLit) and lit.value == 120

    def test_bool_literals(self):
        assert parse_expr("true").value is True
        assert parse_expr("false").value is False

    def test_missing_operand(self):
        with pytest.raises(ParseError):
            parse_expr("1 +")


class TestStatements:
    def test_var_decl(self):
        stmt = parse_stmt("var x: u8 = 3;")
        assert isinstance(stmt, ast.VarDecl)
        assert stmt.type_name.name == "u8"

    def test_array_decl(self):
        stmt = parse_stmt("var a: u8[10];")
        assert isinstance(stmt.type_name, ast.ArrayTypeName)
        assert stmt.type_name.size == 10

    def test_unsized_array_decl(self):
        stmt = parse_stmt('var s: u8[] = "abc";')
        assert stmt.type_name.size is None

    def test_assign_to_name_and_index(self):
        assert isinstance(parse_stmt("x = 1;"), ast.Assign)
        stmt = parse_stmt("a[i] = 1;")
        assert isinstance(stmt.target, ast.Index)

    def test_assign_to_literal_rejected(self):
        with pytest.raises(ParseError):
            parse_stmt("3 = x;")

    def test_if_else_chain(self):
        stmt = parse_stmt("if (a) { } else if (b) { } else { }")
        assert isinstance(stmt, ast.If)
        nested = stmt.else_body.statements[0]
        assert isinstance(nested, ast.If)
        assert nested.else_body is not None

    def test_while(self):
        stmt = parse_stmt("while (x) { x = x - 1; }")
        assert isinstance(stmt, ast.While)
        assert len(stmt.body.statements) == 1

    def test_for_full(self):
        stmt = parse_stmt("for (var i: u32 = 0; i < 10; i = i + 1) { }")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.VarDecl)
        assert isinstance(stmt.step, ast.Assign)

    def test_for_empty_parts(self):
        stmt = parse_stmt("for (;;) { break; }")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_break_continue_return(self):
        assert isinstance(parse_stmt("while (true) { break; }").body
                          .statements[0], ast.Break)
        assert isinstance(parse_stmt("while (true) { continue; }").body
                          .statements[0], ast.Continue)
        ret = parse_stmt("return 3;")
        assert isinstance(ret, ast.Return) and ret.value is not None
        assert parse_stmt("return;").value is None

    def test_expression_statement(self):
        stmt = parse_stmt("output(3);")
        assert isinstance(stmt, ast.ExprStmt)

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_stmt("x = 1")

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse("fn main() { ")


class TestEnclose:
    def test_scalar_outputs(self):
        stmt = parse_stmt("enclose (a, b) { }")
        assert isinstance(stmt, ast.Enclose)
        assert [o.name for o in stmt.outputs] == ["a", "b"]
        assert not stmt.outputs[0].whole

    def test_whole_array_output(self):
        stmt = parse_stmt("enclose (arr[..]) { }")
        assert stmt.outputs[0].whole
        assert stmt.outputs[0].length is None

    def test_bounded_array_output(self):
        stmt = parse_stmt("enclose (arr[.. n]) { }")
        assert not stmt.outputs[0].whole
        assert isinstance(stmt.outputs[0].length, ast.Name)

    def test_empty_outputs(self):
        stmt = parse_stmt("enclose () { }")
        assert stmt.outputs == []


class TestTopLevel:
    def test_function_signatures(self):
        program = parse("fn f(a: u8, b: u32[]): u32 { return 0; }")
        func = program.functions[0]
        assert func.name == "f"
        assert [p.name for p in func.params] == ["a", "b"]
        assert func.return_type.name == "u32"

    def test_void_function(self):
        program = parse("fn f() { }")
        assert program.functions[0].return_type is None

    def test_globals(self):
        program = parse("var g: u32 = 5; fn main() { }")
        assert len(program.globals) == 1
        assert program.globals[0].decl.name == "g"

    def test_junk_at_top_level(self):
        with pytest.raises(ParseError):
            parse("if (1) { }")

    def test_error_positions(self):
        with pytest.raises(ParseError) as err:
            parse("fn main() {\n  var x u8;\n}")
        assert err.value.line == 2
