"""Tests for the FlowLang pretty-printer (parse -> print -> parse)."""

import pytest

from repro.apps.countpunct import FLOWLANG_SOURCE
from repro.apps.flowlang_sources import FIGURE6_PROGRAMS
from repro.apps.interp import INTERPRETER_SOURCE
from repro.apps.scheduler.flowlang import FLOWLANG_SOURCE as SCHED_SOURCE
from repro.lang import compile_source, measure
from repro.lang.parser import parse
from repro.lang.printer import expr_text, program_text

CORPUS = dict(FIGURE6_PROGRAMS)
CORPUS["interpreter"] = INTERPRETER_SOURCE
CORPUS["scheduler"] = SCHED_SOURCE


def round_trip(source):
    first = parse(source)
    printed = program_text(first)
    second = parse(printed)
    return first, printed, second


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(CORPUS))
    def test_corpus_round_trips(self, name):
        first, printed, second = round_trip(CORPUS[name])
        # Node.__repr__ covers all structural fields and omits
        # positions, so repr equality is structural equality.
        assert repr(first) == repr(second), printed

    def test_printed_output_is_stable(self):
        # Printing is idempotent: print(parse(print(x))) == print(x).
        _, printed, second = round_trip(FLOWLANG_SOURCE)
        assert program_text(second) == printed

    def test_printed_program_still_measures_identically(self):
        printed = program_text(parse(FLOWLANG_SOURCE))
        original = measure(FLOWLANG_SOURCE, secret_input=b"........????")
        reprinted = measure(printed, secret_input=b"........????")
        assert reprinted.bits == original.bits == 9
        assert reprinted.output_bytes == original.output_bytes


class TestRendering:
    def test_expression_forms(self):
        program = parse(
            "fn main() { var x: u32 = ((1 + 2) * 3) << u32(4);"
            " var b: bool = !(x == 9) && true; }")
        printed = program_text(program)
        assert "(1 + 2)" in printed
        assert "u32(4)" in printed
        assert "&&" in printed

    def test_string_escapes(self):
        program = parse('fn main() { var s: u8[] = "a\\"b\\n\\x01"; }')
        printed = program_text(program)
        assert '\\"' in printed
        assert "\\n" in printed
        assert "\\x01" in printed
        assert repr(parse(printed)) == repr(program)

    def test_enclose_output_forms(self):
        source = ("fn f(a: u8[], n: u32) { var x: u8 = 0;"
                  " enclose (x, a[.. n]) { x = 1; } }"
                  "fn main() { var b: u8[4]; f(b, 4); }")
        printed = program_text(parse(source))
        assert "enclose (x, a[.. n])" in printed
        assert repr(parse(printed)) == repr(parse(source))

    def test_whole_array_output(self):
        source = ("fn main() { var a: u8[4]; enclose (a[..]) "
                  "{ a[0] = 1; } }")
        printed = program_text(parse(source))
        assert "a[..]" in printed

    def test_globals_and_signatures(self):
        source = ('var g: u32 = 7; var tab: u8[] = "xy";'
                  "fn f(a: u8, b: u32[]): i16 { return i16(0); }"
                  "fn main() { }")
        printed = program_text(parse(source))
        assert "var g: u32 = 7;" in printed
        assert "fn f(a: u8, b: u32[]): i16 {" in printed
        assert repr(parse(printed)) == repr(parse(source))

    def test_for_and_control(self):
        source = ("fn main() { for (var i: u32 = 0; i < 3; i = i + 1)"
                  " { if (i == 1) { continue; } break; } return; }")
        printed = program_text(parse(source))
        assert "for (var i: u32 = 0; (i < 3); i = (i + 1)) {" in printed
        assert repr(parse(printed)) == repr(parse(source))

    def test_empty_for_parts(self):
        source = "fn main() { for (;;) { break; } }"
        printed = program_text(parse(source))
        assert repr(parse(printed)) == repr(parse(source))
