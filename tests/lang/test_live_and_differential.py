"""Live per-output measurement (§8.1) and differential VM semantics.

The differential tests pit the FlowLang VM's concrete arithmetic
against an independent Python model on randomized expressions -- the
VM must be a faithful fixed-width machine regardless of tracking.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.countpunct import FLOWLANG_SOURCE, PAPER_INPUT
from repro.lang import compile_source, measure, measure_live


class TestLiveMeasurement:
    def test_series_is_monotone_and_ends_at_final(self):
        result, series = measure_live(FLOWLANG_SOURCE,
                                      secret_input=PAPER_INPUT)
        assert len(series) == len(result.outputs)
        assert series == sorted(series)  # information only accumulates
        assert series[-1] <= result.bits
        assert result.bits == 9

    def test_battleship_style_live_observation(self):
        # The §8.1 usage: watch the per-reply flows tick up in real
        # time.  One output per loop iteration; each print leaks at
        # most one more bit than the last until the 9-bit cap.
        _, series = measure_live(FLOWLANG_SOURCE,
                                 secret_input=b"...?")
        deltas = [b - a for a, b in zip(series, series[1:])]
        assert all(d >= 0 for d in deltas)

    def test_no_outputs_no_snapshots(self):
        source = "fn main() { var x: u8 = secret_u8(); }"
        result, series = measure_live(source, secret_input=b"\x01")
        assert series == []
        assert result.bits == 0


OPS = ["+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"]


def reference(op, a, b, width, signed):
    mask = (1 << width) - 1

    def to_signed(x):
        sign = 1 << (width - 1)
        return (x & (sign - 1)) - (x & sign)

    if op == "+":
        return (a + b) & mask
    if op == "-":
        return (a - b) & mask
    if op == "*":
        return (a * b) & mask
    if op == "/":
        if b == 0:
            return None
        if signed:
            sa, sb = to_signed(a), to_signed(b)
            q = abs(sa) // abs(sb)
            if (sa < 0) != (sb < 0):
                q = -q
            return q & mask
        return (a // b) & mask
    if op == "%":
        if b == 0:
            return None
        if signed:
            sa, sb = to_signed(a), to_signed(b)
            r = abs(sa) % abs(sb)
            return (-r if sa < 0 else r) & mask
        return (a % b) & mask
    if op == "&":
        return a & b
    if op == "|":
        return a | b
    if op == "^":
        return a ^ b
    if op == "<<":
        return (a << b) & mask if b < 64 else 0
    if op == ">>":
        if signed:
            return (to_signed(a) >> min(b, 63)) & mask
        return a >> b if b < 64 else 0
    raise AssertionError(op)


class TestDifferentialArithmetic:
    @settings(max_examples=150, deadline=None)
    @given(op=st.sampled_from(OPS),
           a=st.integers(0, 255), b=st.integers(0, 255),
           type_name=st.sampled_from(["u8", "i8", "u16", "i16", "u32",
                                      "i32"]))
    def test_vm_matches_reference(self, op, a, b, type_name):
        width = int(type_name[1:])
        signed = type_name.startswith("i")
        mask = (1 << width) - 1
        a &= mask
        b &= mask
        if op in ("<<", ">>"):
            b &= 31  # shift amounts are u32
            expr = "a %s u32(%d)" % (op, b)
        else:
            expr = "a %s b" % op
        source = """
        fn main() {
            var a: %(t)s = %(t)s(%(a)d);
            var b: %(t)s = %(t)s(%(b)d);
            output(u32(%(expr)s));
        }
        """ % {"t": type_name, "a": a, "b": b, "expr": expr}
        expected = reference(op, a, b, width, signed)
        from repro.errors import VMError
        if expected is None:
            with pytest.raises(VMError):
                measure(source)
            return
        got = measure(source).outputs[0]
        # output(u32(x)) sign-extends signed results to 32 bits.
        if signed and expected & (1 << (width - 1)):
            want = (expected | (0xFFFFFFFF & ~mask)) & 0xFFFFFFFF
        else:
            want = expected
        assert got == want, (source, got, want)
