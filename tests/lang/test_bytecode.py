"""Tests for bytecode structure and the disassembler."""

import pytest

from repro.lang import compile_source
from repro.lang.bytecode import Op


def compiled(source):
    return compile_source(source)


class TestCompilationShape:
    def test_every_function_ends_in_ret(self):
        program = compiled("fn f() { } fn g(): u32 { return 1; }"
                           "fn main() { f(); output(g()); }")
        for function in program.functions.values():
            assert function.code[-1].op == Op.RET

    def test_void_fallthrough_ret_has_no_value(self):
        program = compiled("fn main() { }")
        ret = program.functions["main"].code[-1]
        assert ret.arg is False

    def test_nonvoid_fallthrough_pushes_zero(self):
        program = compiled("fn f(): u32 { } fn main() { output(f()); }")
        code = program.functions["f"].code
        assert code[-2].op == Op.CONST
        assert code[-1].op == Op.RET and code[-1].arg is True

    def test_jump_targets_in_range(self):
        program = compiled("""
        fn main() {
            var i: u32 = 0;
            while (i < 10) {
                if (i % 2 == 0) { output(i); } else { continue; }
                i = i + 1;
                if (i == 7) { break; }
            }
        }
        """)
        code = program.functions["main"].code
        for instr in code:
            if instr.op in (Op.JMP, Op.JZ):
                assert isinstance(instr.arg, int)
                assert 0 <= instr.arg <= len(code)

    def test_every_instruction_has_location(self):
        program = compiled("fn main() { var x: u8 = 1; output(x); }")
        for instr in program.functions["main"].code:
            assert instr.loc is not None
            assert instr.loc.unit == "<source>"

    def test_locations_unique_per_instruction(self):
        program = compiled("fn main() { output(1 + 2 + 3); }")
        locations = [str(i.loc) for i in program.functions["main"].code]
        assert len(set(locations)) == len(locations)

    def test_region_table(self):
        program = compiled("""
        fn main() {
            var a: u8 = 0;
            var buf: u8[16];
            var n: u32 = 4;
            enclose (a, buf[.. n]) { a = 1; }
        }
        """)
        assert len(program.regions) == 1
        (region,) = program.regions.values()
        kinds = [(o.kind, o.dynamic_length) for o in region.outputs]
        assert kinds == [("scalar", False), ("array", True)]

    def test_enclose_compiles_enter_leave_pair(self):
        program = compiled(
            "fn main() { var a: u8 = 0; enclose (a) { a = 1; } }")
        ops = [i.op for i in program.functions["main"].code]
        assert ops.count(Op.ENTER) == 1
        assert ops.count(Op.LEAVE) == 1
        assert ops.index(Op.ENTER) < ops.index(Op.LEAVE)


class TestDisassembler:
    def test_function_listing(self):
        program = compiled("fn main() { output(7); }")
        text = program.functions["main"].disassemble()
        assert "fn main" in text
        assert "CONST" in text
        assert "CALLB" in text

    def test_program_listing_covers_all_functions(self):
        program = compiled("fn helper() { } fn main() { helper(); }")
        text = program.disassemble()
        assert "fn helper" in text
        assert "fn main" in text


class TestCompileErrors:
    def test_break_out_of_region_rejected(self):
        from repro.errors import CompileError
        with pytest.raises(CompileError):
            compiled("""
            fn main() {
                var a: u8 = 0;
                while (true) {
                    enclose (a) { break; }
                }
            }
            """)

    def test_return_inside_region_rejected(self):
        from repro.errors import CompileError
        with pytest.raises(CompileError):
            compiled("fn f(): u8 { var a: u8 = 0;"
                     " enclose (a) { return 1; } }")

    def test_loop_fully_inside_region_allowed(self):
        compiled("""
        fn main() {
            var a: u8 = 0;
            enclose (a) {
                var i: u32 = 0;
                while (i < 3) {
                    if (i == 1) { continue; }
                    i = i + 1;
                    if (i == 2) { break; }
                }
                a = u8(i & 0xFF);
            }
        }
        """)

    def test_nonliteral_global_init_rejected(self):
        from repro.errors import CompileError
        with pytest.raises(CompileError):
            compiled("var g: u32 = 1 + 2; fn main() { }")
