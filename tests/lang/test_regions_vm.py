"""Deep tests of the VM's enclosure-region machinery.

Covers the paths the simpler flow tests don't reach: global and array
outputs, regions spanning function calls, strict checking with arrays,
dynamic lengths, and cross-frontend agreement on randomized inputs of
the Figure 2 program.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.countpunct import measure_flowlang, measure_python
from repro.errors import RegionError, VMError
from repro.lang import compile_source, measure


class TestGlobalOutputs:
    def test_global_scalar_region_output(self):
        source = """
        var total: u32 = 0;
        fn main() {
            var x: u8 = secret_u8();
            enclose (total) {
                if (x > 9) { total = 1; }
            }
            output(total);
        }
        """
        assert measure(source, secret_input=b"\xFF").bits == 1

    def test_global_array_region_output(self):
        source = """
        var flags: bool[4];
        fn main() {
            var x: u8 = secret_u8();
            enclose (flags[..]) {
                if (x > 10) { flags[0] = true; }
                if (x > 20) { flags[1] = true; }
            }
            output(flags[0]);
            output(flags[1]);
        }
        """
        assert measure(source, secret_input=b"\x15").bits == 2

    def test_undeclared_global_write_strict(self):
        source = """
        var sneaky: u32 = 0;
        fn main() {
            var x: u8 = secret_u8();
            var ok: u8 = 0;
            enclose (ok) {
                if (x > 1) { ok = 1; sneaky = 1; }
            }
            output(sneaky & 1);
        }
        """
        with pytest.raises(RegionError):
            measure(source, secret_input=b"\xFF", region_check="strict")


class TestInterproceduralRegions:
    def test_region_spans_callee_writes(self):
        # The region is active while a callee writes the declared
        # global: the write is legal and its influence is captured.
        source = """
        var count: u32 = 0;
        fn bump() { count = count + 1; }
        fn main() {
            var x: u8 = secret_u8();
            enclose (count) {
                if (x > 100) { bump(); }
                if (x > 200) { bump(); }
            }
            output(count);
        }
        """
        result = measure(source, secret_input=b"\xF0")  # 240: both bumps
        assert result.bits == 2
        assert result.outputs == [2]
        assert result.report.warnings == []

    def test_callee_locals_exempt_from_checking(self):
        source = """
        var out: u32 = 0;
        fn helper(): u32 {
            var scratch: u32 = 40;
            scratch = scratch + 2;
            return scratch;
        }
        fn main() {
            var x: u8 = secret_u8();
            enclose (out) {
                if (x == 7) { out = helper(); }
            }
            output(out);
        }
        """
        result = measure(source, secret_input=b"\x07",
                         region_check="strict")
        assert result.outputs == [42]
        assert result.bits == 1


class TestDynamicLengths:
    def test_partial_array_annotation(self):
        source = """
        fn main() {
            var buf: u8[100];
            var n: u32 = 3;
            var x: u8 = secret_u8();
            enclose (buf[.. n]) {
                var i: u32 = 0;
                while (i < n) {
                    if (x > u8(i & 0xFF) * 50) { buf[i] = 1; }
                    i = i + 1;
                }
            }
            output_bytes(buf, 100);
        }
        """
        # Three comparisons feed the region; only 3 bits can escape,
        # although all 100 bytes are output.
        assert measure(source, secret_input=b"\x60").bits == 3

    def test_secret_length_rejected(self):
        source = """
        fn main() {
            var buf: u8[16];
            var n: u32 = u32(secret_u8());
            enclose (buf[.. n]) { buf[0] = 1; }
        }
        """
        with pytest.raises(VMError):
            measure(source, secret_input=b"\x04")


class TestCrossFrontendCountPunct:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.sampled_from(list(b".?ax")), max_size=24)
           .map(bytes))
    def test_frontends_agree_on_random_inputs(self, text):
        flowlang = measure_flowlang(text)
        python = measure_python(text)
        assert flowlang.bits == python.bits, text

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.sampled_from(list(b".?")), min_size=1,
                    max_size=30).map(bytes))
    def test_output_matches_specification(self, text):
        dots = text.count(b".")
        qms = text.count(b"?")
        common, count = (b".", dots) if dots > qms else (b"?", qms)
        result = measure_flowlang(text)
        assert result.output_bytes == common * (count & 0xFF)
