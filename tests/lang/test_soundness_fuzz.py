"""Whole-system soundness fuzzing.

The strongest checkable consequence of the paper's soundness definition
(Section 3.1): "if a sound tool ever reports a flow of 0 bits, then the
public output for that execution is the only one that can possibly be
produced with any other secret inputs" -- zero flow means
noninterference.

These tests generate random FlowLang programs over a single secret byte
(arithmetic, masking, branches, bounded loops, enclosure regions, array
lookups), measure each input in the secret's domain, and verify:

* determinism: same input, same output;
* zero-flow soundness: if any input measures 0 bits, *every* input
  produces the identical output trace;
* a quantitative refinement: the number of distinct outputs across the
  domain never exceeds 2**max_i k(i) (if even the best-informed run is
  bounded by k bits, the channel cannot have more than 2**k messages
  ... for the max over the inputs, which every consistent code must
  respect).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import compile_source, measure


class ProgramGenerator:
    """Generates small FlowLang programs driven by one secret byte."""

    def __init__(self, rng):
        self.rng = rng

    def expression(self, depth=2):
        """An expression over u8 variables s (secret) and t (temp)."""
        rng = self.rng
        if depth == 0 or rng.random() < 0.3:
            return rng.choice(["s", "t", str(rng.randrange(256))])
        op = rng.choice(["+", "-", "&", "|", "^"])
        return "(%s %s %s)" % (self.expression(depth - 1), op,
                               self.expression(depth - 1))

    def condition(self):
        op = self.rng.choice(["==", "!=", "<", ">", "<=", ">="])
        return "(%s %s %s)" % (self.expression(1), op,
                               str(self.rng.randrange(256)))

    def statement(self, depth):
        rng = self.rng
        roll = rng.random()
        if depth <= 0 or roll < 0.35:
            return "t = %s;" % self.expression()
        if roll < 0.55:
            return ("if %s { %s } else { %s }"
                    % (self.condition(), self.statement(depth - 1),
                       self.statement(depth - 1)))
        if roll < 0.70:
            body = self.statement(depth - 1)
            return ("k = 0; while (k < %d) { %s k = k + 1; }"
                    % (rng.randrange(1, 4), body))
        if roll < 0.85:
            return ("enclose (t) { %s }"
                    % self.statement(depth - 1))
        return "t = tab[u32(%s & 0x07)];" % self.expression(1)

    def program(self, statements=3):
        body = "\n    ".join(self.statement(2)
                             for _ in range(statements))
        emit = self.rng.choice(
            ["output(t);",
             "output(t & 0x%02X);" % self.rng.randrange(1, 256),
             "if (t > 128) { output(1); } else { output(0); }"])
        return '''
fn main() {
    var tab: u8[] = "qwertyui";
    var s: u8 = secret_u8();
    var t: u8 = 0;
    var k: u8 = 0;
    %s
    %s
}
''' % (body, emit)


def measure_domain(compiled, domain):
    """Measure every input in ``domain``; returns [(bits, outputs)]."""
    results = []
    for value in domain:
        run = measure(compiled, secret_input=bytes([value]),
                      region_check="off")
        results.append((run.bits, tuple(run.outputs)))
    return results


DOMAIN = list(range(0, 256, 17)) + [1, 2, 255]


@pytest.mark.parametrize("seed", range(30))
def test_zero_flow_implies_noninterference(seed):
    rng = random.Random(seed)
    source = ProgramGenerator(rng).program()
    compiled = compile_source(source)
    results = measure_domain(compiled, DOMAIN)
    outputs = {out for _, out in results}
    if any(bits == 0 for bits, _ in results):
        assert len(outputs) == 1, (
            "seed %d: zero flow reported but %d distinct outputs:\n%s"
            % (seed, len(outputs), source))


@pytest.mark.parametrize("seed", range(30))
def test_channel_capacity_bound(seed):
    rng = random.Random(1000 + seed)
    source = ProgramGenerator(rng).program()
    compiled = compile_source(source)
    results = measure_domain(compiled, DOMAIN)
    outputs = {out for _, out in results}
    max_bits = max(bits for bits, _ in results)
    assert len(outputs) <= 2 ** max_bits, (
        "seed %d: %d outputs exceed 2^%d:\n%s"
        % (seed, len(outputs), max_bits, source))


@pytest.mark.parametrize("seed", range(15))
def test_determinism(seed):
    rng = random.Random(2000 + seed)
    source = ProgramGenerator(rng).program()
    compiled = compile_source(source)
    for value in (0, 100, 255):
        first = measure(compiled, secret_input=bytes([value]),
                        region_check="off")
        second = measure(compiled, secret_input=bytes([value]),
                         region_check="off")
        assert first.outputs == second.outputs
        assert first.bits == second.bits
