"""Tests for the compiled-program cache (batch engine fast path)."""

import pytest

from repro import obs
from repro.lang import compile_cached, measure
from repro.lang import runner

SOURCE = "fn main() { output(secret_u8() & 0x0F); }"
OTHER = "fn main() { output(secret_u8() & 0x03); }"


@pytest.fixture(autouse=True)
def fresh_cache():
    runner._COMPILE_CACHE.clear()
    yield
    runner._COMPILE_CACHE.clear()


@pytest.fixture
def metrics():
    live = obs.enable()
    try:
        yield live
    finally:
        obs.disable()


class TestCompileCache:
    def test_repeat_compile_returns_same_object(self, metrics):
        first = compile_cached(SOURCE)
        second = compile_cached(SOURCE)
        assert second is first
        assert metrics.snapshot()["lang.compile_cache_hits"] == 1

    def test_different_source_misses(self, metrics):
        assert compile_cached(SOURCE) is not compile_cached(OTHER)
        assert metrics.snapshot()["lang.compile_cache_hits"] == 0

    def test_filename_is_part_of_the_key(self, metrics):
        a = compile_cached(SOURCE, filename="a.fl")
        b = compile_cached(SOURCE, filename="b.fl")
        assert a is not b
        assert metrics.snapshot()["lang.compile_cache_hits"] == 0

    def test_measure_goes_through_the_cache(self, metrics):
        first = measure(SOURCE, secret_input=b"\xff")
        second = measure(SOURCE, secret_input=b"\x0a")
        assert metrics.snapshot()["lang.compile_cache_hits"] == 1
        assert first.bits == second.bits == 4

    def test_cached_program_measures_identically(self):
        fresh = measure(SOURCE, secret_input=b"\x5a")
        cached = measure(SOURCE, secret_input=b"\x5a")
        assert cached.bits == fresh.bits
        assert cached.output_bytes == fresh.output_bytes

    def test_cache_is_bounded_lru(self):
        limit = runner._COMPILE_CACHE_LIMIT
        for index in range(limit + 5):
            compile_cached("fn main() { output(%d); }" % index)
        assert len(runner._COMPILE_CACHE) == limit
        # The oldest entries were evicted; the newest survive.
        compiled = compile_cached("fn main() { output(%d); }"
                                  % (limit + 4))
        assert any(entry is compiled
                   for entry in runner._COMPILE_CACHE.values())

    def test_hit_refreshes_lru_position(self):
        keep = compile_cached("fn main() { output(1); }")
        for index in range(runner._COMPILE_CACHE_LIMIT - 1):
            compile_cached("fn filler%d() {} fn main() { }" % index)
        assert compile_cached("fn main() { output(1); }") is keep
        # One more insert evicts the oldest *filler*, not the fresh hit.
        compile_cached("fn main() { output(2); }")
        assert compile_cached("fn main() { output(1); }") is keep
